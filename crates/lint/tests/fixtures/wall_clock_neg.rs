// Negative fixture for no-wall-clock: pure code, a local that merely
// shares the `env` name, test-only clock use, and a suppression.
use std::time::Duration;

pub struct Budget {
    pub deadline: Duration,
}

// Clean: timings are passed in by the caller, not read from a clock.
pub fn within_budget(elapsed: Duration, budget: &Budget) -> bool {
    elapsed <= budget.deadline
}

// Clean: a binding named `env` is not an environment read.
pub fn render(env: &Budget) -> String {
    format!("{:?}", env.deadline)
}

// Clean: an unqualified call to a local named `sleep` is not
// `thread::sleep`.
pub fn settle(budget: &Budget) -> Duration {
    fn sleep(d: Duration) -> Duration {
        d
    }
    sleep(budget.deadline)
}

// Suppressed: one sanctioned clock read, isolated and justified.
pub fn trace_epoch() -> u64 {
    // webre::allow(no-wall-clock): trace-only; value never reaches output
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn timing_in_tests_is_fine() {
        let start = Instant::now();
        assert!(start.elapsed().as_secs() < 60);
    }
}
