// Negative fixture for nondet-iter: hash iteration that is fine —
// sorted afterward, collected into ordered-by-key maps, reduced with
// order-insensitive terminals, or explicitly suppressed.
use std::collections::{BTreeMap, BTreeSet, HashMap};

pub struct Tally {
    votes: HashMap<String, usize>,
}

impl Tally {
    // Clean: collected then sorted before anyone sees the order.
    pub fn ranked(&self) -> Vec<(String, usize)> {
        let mut ranked: Vec<(String, usize)> = self
            .votes
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked
    }

    // Clean: a BTreeMap re-establishes a deterministic order.
    pub fn as_sorted_map(&self) -> BTreeMap<String, usize> {
        self.votes.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    // Clean: order-insensitive terminal.
    pub fn heaviest(&self) -> usize {
        self.votes.values().copied().max().unwrap_or(0)
    }

    // Clean: inserting into a BTreeSet inside the loop.
    pub fn vocabulary(&self) -> BTreeSet<String> {
        let mut vocab = BTreeSet::new();
        for key in self.votes.keys() {
            vocab.insert(key.clone());
        }
        vocab
    }

    // Clean: sink sorted after the loop closes.
    pub fn labels(&self) -> Vec<String> {
        let mut labels = Vec::new();
        for key in self.votes.keys() {
            labels.push(key.clone());
        }
        labels.sort();
        labels
    }

    // Suppressed: the scratch list is consumed by an order-insensitive
    // fold, so iteration order never reaches an observable output.
    pub fn checksum(&self) -> usize {
        let mut scratch = Vec::new();
        // webre::allow(nondet-iter): scratch is summed; order irrelevant
        for (key, count) in &self.votes {
            scratch.push(key.len() * count);
        }
        scratch.iter().sum()
    }
}
