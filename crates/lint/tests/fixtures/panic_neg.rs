// Negative fixture for panic-in-hot-path: degraded-response idioms,
// benign indexing shapes, test-only asserts, and a suppression.
pub fn parse_header(line: &str) -> Option<(String, String)> {
    let mut parts = line.splitn(2, ':');
    let name = parts.next()?.to_owned();
    let value = parts.next().unwrap_or("").to_owned();
    Some((name, value))
}

// Clean: plain-variable indexing over an invariant-maintained arena.
pub fn slot(slots: &[u32], i: usize) -> u32 {
    slots[i]
}

// Clean: modulo keeps the index in range, and ranges are slicing.
pub fn wrap(ring: &[u8], i: usize) -> u8 {
    ring[i % ring.len()]
}

pub fn head(buf: &[u8]) -> &[u8] {
    &buf[0..4.min(buf.len())]
}

// Clean: the index arithmetic is dominated by a bound check, and the
// dataflow pass carries that fact to the access.
pub fn delim_split(buf: &[u8], i: usize) -> u8 {
    if i + 1 < buf.len() {
        return buf[i + 1];
    }
    0
}

// Clean: same fact genned from the reversed comparison in a `while`.
pub fn scan(buf: &[u8]) -> u32 {
    let mut i = 0;
    let mut total = 0u32;
    while buf.len() > i + 1 {
        total += u32::from(buf[i + 1]);
        i += 2;
    }
    total
}

// Suppressed: the caller contract guarantees non-empty input.
pub fn checked_first(buf: &[u8]) -> u8 {
    // webre::allow(panic-in-hot-path): caller guarantees non-empty input
    buf[0]
}

#[cfg(test)]
mod tests {
    #[test]
    fn asserts_are_fine_in_tests() {
        let buf = [7u8];
        assert_eq!(super::slot(&[7], 0), 7);
        assert_eq!(buf[0], 7);
        super::head(&buf).first().unwrap();
    }
}
