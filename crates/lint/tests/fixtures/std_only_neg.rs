// Negative fixture for std-only: std, workspace crates, sibling
// modules, and one justified suppression.
use std::collections::HashMap;
use std::io::{self, Read};
use core::fmt;
use webre_substrate::json;
use webre_tree::Tree;
use crate::config::Settings;
use super::shared;

mod helper;
use helper::Normalizer;

// webre::allow(std-only): vendored shim, gated behind a cargo feature
use vendored_ffi::RawHandle;

pub struct Settings {
    pub table: HashMap<String, String>,
}
