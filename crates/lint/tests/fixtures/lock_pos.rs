// Positive fixture for lock-order: the classic ABBA shape — two
// functions taking the same pair of mutexes in opposite orders.
// (Lock API modeled on webre_substrate::sync, whose guards need no
// unwrap; this file is lint data, not compiled.)
use webre_substrate::sync::Mutex;

pub struct Shared {
    accounts: Mutex<Vec<u64>>,
    audit_log: Mutex<Vec<String>>,
}

impl Shared {
    pub fn transfer(&self) {
        let accounts = self.accounts.lock();
        let mut log = self.audit_log.lock();
        log.push(format!("{} accounts", accounts.len()));
    }

    pub fn compact_log(&self) {
        let mut log = self.audit_log.lock();
        let accounts = self.accounts.lock();
        log.truncate(accounts.len());
    }
}
