// Regression fixture for lock-order guard extents: block-scoped
// guards and mid-function drops end the guard before the next
// acquisition, so no ordering edge exists. The pre-CFG engine
// extended every guard to end of function and reported a false ABBA
// pair here.
use webre_substrate::sync::Mutex;

pub struct Scoped {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Scoped {
    // The alpha guard dies at its block's close brace.
    pub fn forward(&self) -> u64 {
        let first = {
            let a = self.alpha.lock();
            *a
        };
        let b = self.beta.lock();
        first + *b
    }

    // Reversed lexical order, same block scoping: still no edge.
    pub fn backward(&self) -> u64 {
        let first = {
            let b = self.beta.lock();
            *b
        };
        let a = self.alpha.lock();
        first + *a
    }

    // Mid-function `drop` on the straight-line path ends the guard.
    pub fn serial(&self) -> u64 {
        let a = self.alpha.lock();
        let x = *a;
        drop(a);
        let b = self.beta.lock();
        x + *b
    }

    pub fn serial_rev(&self) -> u64 {
        let b = self.beta.lock();
        let x = *b;
        drop(b);
        let a = self.alpha.lock();
        x + *a
    }
}
