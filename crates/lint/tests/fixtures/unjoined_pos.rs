// Positive fixture for unjoined-thread: JoinHandles that no path ever
// joins, stores, or otherwise consumes.
use std::thread;

// Finding 1: spawned, bound, and forgotten — the fn returns while the
// worker is still running and nothing can observe its panic.
pub fn fire_and_forget(jobs: Vec<u64>) -> usize {
    let worker = thread::spawn(move || jobs.iter().sum::<u64>());
    42
}

// Finding 2: the handle is unjoined on the early-return path *and* the
// fall-through path — unjoined on every path, so it is reported.
pub fn forgets_everywhere(n: u64) -> u64 {
    let h = thread::spawn(move || n * 2);
    if n > 100 {
        return 0;
    }
    n
}
