// Positive fixture for dropped-result: Result-returning calls whose
// outcome is silently thrown away.
use std::io::Write;
use std::net::TcpStream;

pub fn persist(data: &str) -> Result<(), std::io::Error> {
    std::fs::write("out.txt", data)
}

pub fn fire_and_forget(stream: &mut TcpStream, data: &str) {
    // Finding 1: `let _ =` discard of a std Result method.
    let _ = stream.write_all(data.as_bytes());
    // Finding 2: bare-statement discard of a std Result method.
    stream.flush();
    // Finding 3: socket option setter, Result ignored.
    stream.set_nodelay(true);
}

pub fn save_quietly(data: &str) {
    // Finding 4: discard of a local fn whose signature returns Result.
    let _ = persist(data);
    // Finding 5: same, as a bare statement.
    persist(data);
}
