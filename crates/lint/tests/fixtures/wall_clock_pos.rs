// Positive fixture for no-wall-clock: clock and environment reads in
// what would be pure-pipeline code.
use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub fn stamp() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

pub fn timed_parse(input: &str) -> (usize, u128) {
    let start = Instant::now();
    let n = input.split_whitespace().count();
    (n, start.elapsed().as_nanos())
}

pub fn backoff() {
    // Finding: pure code must not wait.
    std::thread::sleep(std::time::Duration::from_millis(10));
}

pub fn configured_limit() -> usize {
    std::env::var("WEBRE_LIMIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}
