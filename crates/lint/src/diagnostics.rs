//! Lint findings and their two renderings: clickable `file:line` text
//! and stable JSON.
//!
//! Both renderings emit findings in the same total order —
//! `(path, line, rule, message)` — so repeated runs over the same tree
//! produce byte-identical output and the CI gate can diff it.

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule ID, e.g. `nondet-iter`.
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    pub message: String,
}

impl Diagnostic {
    /// `path:line: [rule] message` — the clickable text form.
    pub fn render_text(&self) -> String {
        format!("{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// Sorts into the canonical emission order and drops exact duplicates
/// (a rule may hit the same line via two detection paths).
pub fn canonicalize(diagnostics: &mut Vec<Diagnostic>) {
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.message.as_str())
            .cmp(&(b.path.as_str(), b.line, b.rule, b.message.as_str()))
    });
    diagnostics.dedup();
}

/// Renders the full finding list as text, one per line.
pub fn render_text(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.render_text());
        out.push('\n');
    }
    out
}

/// Renders the finding list as a JSON array, one object per line,
/// already in canonical order — stable across runs by construction.
pub fn render_json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "  {{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
            json_string(d.rule),
            json_string(&d.path),
            d.line,
            json_string(&d.message)
        ));
    }
    out.push_str(if diagnostics.is_empty() { "]\n" } else { "\n]\n" });
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(rule: &'static str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            rule,
            path: path.to_owned(),
            line,
            message: format!("finding in {path}"),
        }
    }

    #[test]
    fn canonical_order_is_path_line_rule() {
        let mut list = vec![d("b-rule", "b.rs", 2), d("a-rule", "b.rs", 2), d("z", "a.rs", 9)];
        canonicalize(&mut list);
        assert_eq!(list[0].path, "a.rs");
        assert_eq!(list[1].rule, "a-rule");
        assert_eq!(list[2].rule, "b-rule");
    }

    #[test]
    fn duplicates_collapse() {
        let mut list = vec![d("r", "a.rs", 1), d("r", "a.rs", 1)];
        canonicalize(&mut list);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn json_is_escaped_and_stable() {
        let mut list = vec![Diagnostic {
            rule: "r",
            path: "a\\b.rs".to_owned(),
            line: 3,
            message: "say \"hi\"\n".to_owned(),
        }];
        canonicalize(&mut list);
        let json = render_json(&list);
        assert!(json.contains("\"a\\\\b.rs\""), "{json}");
        assert!(json.contains("\\\"hi\\\"\\n"), "{json}");
        assert_eq!(json, render_json(&list), "rendering must be pure");
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        assert_eq!(render_json(&[]), "[]\n");
    }
}
