//! A generic worklist dataflow solver over [`Cfg`]s.
//!
//! Analyses implement [`Analysis`]: a fact type forming a small
//! lattice, a merge (the lattice join/meet), a per-node transfer
//! function, and optionally a per-edge transfer so branch edges can
//! refine facts (`Then`/`Else` sanitization) and `Try` edges can
//! forward the *input* fact (a `?`-failing statement never completed
//! its binding).
//!
//! The solver iterates to a fixpoint with a simple FIFO worklist.
//! Termination relies on facts being drawn from a finite lattice and
//! `merge` being monotone — true for the bitset and small-map facts the
//! rules use.

use crate::cfg::{Cfg, EdgeKind};

/// Direction of propagation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow entry → exit; `IN[n]` merges predecessors' `OUT`.
    Forward,
    /// Facts flow exit → entry; `IN[n]` merges successors' `OUT`
    /// (with `IN`/`OUT` read in the direction of travel).
    Backward,
}

/// One dataflow analysis over a CFG.
pub trait Analysis {
    type Fact: Clone + PartialEq;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    /// The fact entering the graph (at entry for forward analyses, at
    /// exit for backward ones).
    fn boundary(&self) -> Self::Fact;

    /// The initial fact at every other node before propagation — the
    /// lattice element `merge` treats as neutral (⊥ for may/union
    /// analyses, ⊤/universe for must/intersection analyses).
    fn init(&self) -> Self::Fact;

    /// Lattice join/meet: fold `from` into `into`.
    fn merge(&self, into: &mut Self::Fact, from: &Self::Fact);

    /// Per-node transfer: the fact after executing `node` given the
    /// fact before it.
    fn transfer(&self, cfg: &Cfg, node: usize, fact: &Self::Fact) -> Self::Fact;

    /// Per-edge transfer: the fact carried along `from → to`. Receives
    /// both the node's input and output facts; the default forwards the
    /// output unchanged. Override to make `Try` edges carry `infact`
    /// (binding never happened) or to kill facts on `Then`/`Else`
    /// edges (comparison-guard sanitization).
    fn edge(
        &self,
        _cfg: &Cfg,
        _from: usize,
        _to: usize,
        _kind: EdgeKind,
        _infact: &Self::Fact,
        outfact: &Self::Fact,
    ) -> Self::Fact {
        outfact.clone()
    }
}

/// The fixpoint: per-node input and output facts, indexed by CFG node.
pub struct Solution<F> {
    /// Fact before the node (in propagation direction).
    pub input: Vec<F>,
    /// Fact after the node's transfer.
    pub output: Vec<F>,
}

/// Runs `analysis` over `cfg` to fixpoint.
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    let n = cfg.nodes.len();
    let forward = analysis.direction() == Direction::Forward;
    let boundary_node = if forward { cfg.entry } else { cfg.exit };

    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.init()).collect();
    input[boundary_node] = analysis.boundary();
    let mut output: Vec<A::Fact> = (0..n)
        .map(|i| analysis.transfer(cfg, i, &input[i]))
        .collect();

    // Incoming edges in the direction of travel, per node, with kinds.
    let mut incoming: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); n];
    for from in 0..n {
        for &(to, kind) in &cfg.nodes[from].succs {
            if forward {
                incoming[to].push((from, kind));
            } else {
                incoming[from].push((to, kind));
            }
        }
    }

    let mut work: std::collections::VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    while let Some(node) = work.pop_front() {
        queued[node] = false;
        if node != boundary_node {
            let mut merged = analysis.init();
            let mut first = true;
            for &(pred, kind) in &incoming[node] {
                let carried =
                    analysis.edge(cfg, pred, node, kind, &input[pred], &output[pred]);
                if first {
                    merged = carried;
                    first = false;
                } else {
                    analysis.merge(&mut merged, &carried);
                }
            }
            if first {
                // Unreachable node: keep the neutral init fact.
                merged = analysis.init();
            }
            if merged != input[node] {
                input[node] = merged;
            }
        }
        let out = analysis.transfer(cfg, node, &input[node]);
        if out != output[node] {
            output[node] = out;
            // Requeue everything this node feeds (direction-aware).
            let feeds: Vec<usize> = if forward {
                cfg.nodes[node].succs.iter().map(|&(t, _)| t).collect()
            } else {
                cfg.nodes[node].preds.clone()
            };
            for next in feeds {
                if !queued[next] {
                    queued[next] = true;
                    work.push_back(next);
                }
            }
        }
    }
    Solution { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeKind;
    use crate::parser::SourceFile;
    use std::collections::BTreeSet;

    fn build(body: &str) -> (SourceFile, Cfg) {
        let src = format!("fn f() -> Result<(), ()> {{\n{body}\n}}\n");
        let file = SourceFile::parse("x.rs", &src);
        let item = file.fns[0].clone();
        let cfg = Cfg::build(&file, &item);
        (file, cfg)
    }

    /// Gen/kill over node indices: node index N gens fact N. Reaches
    /// exit = union over all paths.
    struct GenSelf;

    impl Analysis for GenSelf {
        type Fact = BTreeSet<usize>;

        fn boundary(&self) -> Self::Fact {
            BTreeSet::new()
        }

        fn init(&self) -> Self::Fact {
            BTreeSet::new()
        }

        fn merge(&self, into: &mut Self::Fact, from: &Self::Fact) {
            into.extend(from.iter().copied());
        }

        fn transfer(&self, _cfg: &Cfg, node: usize, fact: &Self::Fact) -> Self::Fact {
            let mut out = fact.clone();
            out.insert(node);
            out
        }
    }

    #[test]
    fn forward_union_reaches_exit_over_all_paths() {
        let (_, cfg) = build("if c { a(); } else { b(); }\ntail();");
        let sol = solve(&cfg, &GenSelf);
        // Every node is in the exit's output.
        assert_eq!(sol.output[cfg.exit].len(), cfg.nodes.len());
    }

    #[test]
    fn loops_reach_fixpoint() {
        let (_, cfg) = build("while c() {\n  step();\n}\ndone();");
        let sol = solve(&cfg, &GenSelf);
        assert_eq!(sol.output[cfg.exit].len(), cfg.nodes.len());
    }

    /// Backward analysis: nodes from which exit is reachable (all of
    /// them, in a well-formed CFG without infinite loops).
    struct ReachesExit;

    impl Analysis for ReachesExit {
        type Fact = bool;

        fn direction(&self) -> Direction {
            Direction::Backward
        }

        fn boundary(&self) -> Self::Fact {
            true
        }

        fn init(&self) -> Self::Fact {
            false
        }

        fn merge(&self, into: &mut Self::Fact, from: &Self::Fact) {
            *into = *into || *from;
        }

        fn transfer(&self, _cfg: &Cfg, _node: usize, fact: &Self::Fact) -> Self::Fact {
            *fact
        }
    }

    #[test]
    fn backward_reachability_marks_live_code() {
        let (_, cfg) = build("step();\nloop {\n  spin();\n}\ndead();");
        let sol = solve(&cfg, &ReachesExit);
        // The statement before the infinite loop cannot reach exit;
        // the dead tail after it (no preds) also cannot... but entry
        // itself cannot either. The exit node trivially can.
        assert!(sol.output[cfg.exit]);
        let first_stmt = cfg
            .indices()
            .find(|&n| cfg.nodes[n].kind == NodeKind::Stmt)
            .unwrap();
        assert!(
            !sol.output[first_stmt],
            "code flowing into an infinite loop never reaches exit"
        );
    }

    #[test]
    fn try_edges_can_carry_input_facts() {
        struct GenButNotOnTry;
        impl Analysis for GenButNotOnTry {
            type Fact = BTreeSet<usize>;
            fn boundary(&self) -> Self::Fact {
                BTreeSet::new()
            }
            fn init(&self) -> Self::Fact {
                BTreeSet::new()
            }
            fn merge(&self, into: &mut Self::Fact, from: &Self::Fact) {
                into.extend(from.iter().copied());
            }
            fn transfer(&self, _cfg: &Cfg, node: usize, fact: &Self::Fact) -> Self::Fact {
                let mut out = fact.clone();
                out.insert(node);
                out
            }
            fn edge(
                &self,
                _cfg: &Cfg,
                _from: usize,
                _to: usize,
                kind: EdgeKind,
                infact: &Self::Fact,
                outfact: &Self::Fact,
            ) -> Self::Fact {
                if kind == EdgeKind::Try {
                    infact.clone()
                } else {
                    outfact.clone()
                }
            }
        }
        let (_, cfg) = build("let h = fallible()?;\nOk(())");
        let sol = solve(&cfg, &GenButNotOnTry);
        let stmt = cfg
            .indices()
            .find(|&n| cfg.nodes[n].kind == NodeKind::Stmt)
            .unwrap();
        // Exit merges the Try edge (without stmt's gen) and the normal
        // path (with it) — so the exit INPUT contains stmt only via the
        // fallthrough path, proving both edges were taken. The Try
        // path's contribution equals entry's fact.
        assert!(sol.input[cfg.exit].contains(&stmt));
        // And the stmt's input (before gen) must not contain itself.
        assert!(!sol.input[stmt].contains(&stmt));
    }
}
