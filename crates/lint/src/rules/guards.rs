//! Shared guard-liveness machinery for `lock-order` and
//! `lock-across-blocking`.
//!
//! Finds lock acquisitions in a function body (direct `.lock()` /
//! `.read()` / `.write()` on known lock receivers, plus `self.m()`
//! helpers that unanimously return guard types per the call graph) and
//! tracks guard liveness over the CFG:
//!
//! - a `let`-bound guard is **gen**ned at its acquisition node and
//!   **kill**ed by `drop(guard)`, by being moved as a bare call
//!   argument (the condvar `wait(guard)` idiom — the callee releases
//!   it), by a `return`, or structurally when control leaves the
//!   binding's lexical block (the scope-end kill point);
//! - a temporary guard (`self.lock().field...`) lives exactly for its
//!   statement, groups included, which is how Rust extends such
//!   temporaries to the end of the enclosing statement.
//!
//! The same ordered walk that drives the dataflow transfer also drives
//! reporting, so "guard live at this token" means the same thing in
//! both places.

use super::Context;
use crate::callgraph::{BlockEvent, FnRef};
use crate::cfg::Cfg;
use crate::dataflow::{Analysis, Direction};
use crate::lexer::TokenKind;
use crate::parser::{FnItem, LockKind, SourceFile};
use std::collections::BTreeMap;

/// One lock acquisition.
#[derive(Clone, Debug)]
pub(crate) struct Acq {
    /// Token index of the acquiring method ident.
    pub token: usize,
    pub line: u32,
    /// Lock identity: dotted receiver path (`self.` stripped) or
    /// `helper()` for guard-returning helpers.
    pub lock: String,
    /// `let`-bound guard name; `None` for temporaries.
    pub binding: Option<String>,
    /// Lexical block the binding is scoped to (guards die at its end).
    pub scope: (usize, usize),
    /// Temporaries: exclusive token index of the statement end.
    pub extent: usize,
}

/// Locals holding a lock directly: `let m = Mutex::new(..)` or an
/// annotation mentioning `Mutex`/`RwLock`.
pub(crate) fn local_locks(file: &SourceFile, item: &FnItem) -> BTreeMap<String, LockKind> {
    let mut out = BTreeMap::new();
    let (open, close) = item.body;
    let mut k = open + 1;
    while k < close {
        if file.tokens[k].is_ident("let") {
            let mut p = k + 1;
            if file.tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
                p += 1;
            }
            if let Some(name) = file.tokens.get(p) {
                if name.kind == TokenKind::Ident && name.text != "_" {
                    let end = super::stmt_end(file, p);
                    let lock =
                        file.tokens[p + 1..end.min(close)]
                            .iter()
                            .find_map(|t| match t.text.as_str() {
                                "Mutex" => Some(LockKind::Mutex),
                                "RwLock" => Some(LockKind::RwLock),
                                _ => None,
                            });
                    if let Some(lock) = lock {
                        out.insert(name.text.clone(), lock);
                    }
                }
            }
        }
        k += 1;
    }
    out
}

/// Dotted receiver path ending at token `p`, or `None` for complex
/// receivers (`make_lock().lock()`).
pub(crate) fn receiver_path(file: &SourceFile, p: usize) -> Option<String> {
    let tok = file.tokens.get(p)?;
    if tok.kind != TokenKind::Ident {
        return None;
    }
    let mut segments = vec![tok.text.clone()];
    let mut j = p;
    while j >= 2 && file.tokens[j - 1].is_punct('.') {
        let prev = &file.tokens[j - 2];
        if prev.kind != TokenKind::Ident {
            return None; // `foo().lock()` — unresolvable
        }
        segments.push(prev.text.clone());
        j -= 2;
    }
    segments.reverse();
    if segments.first().is_some_and(|s| s == "self") {
        segments.remove(0);
    }
    if segments.is_empty() {
        return None;
    }
    Some(segments.join("."))
}

/// All resolvable lock acquisitions in `item`'s body.
pub(crate) fn acquisitions(
    file: &SourceFile,
    ctx: &Context,
    item: &FnItem,
    cfg: &Cfg,
    caller: Option<FnRef>,
) -> Vec<Acq> {
    let lock_locals = local_locks(file, item);
    let (open, close) = item.body;
    let mut out = Vec::new();
    for i in open + 1..close {
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident
            || i < 2
            || !file.tokens[i - 1].is_punct('.')
            || !file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        // All lock acquisitions in this workspace are zero-argument;
        // `.read(buf)`/`.write(buf)` with arguments are I/O.
        if file.close(i + 1) != i + 2 {
            continue;
        }
        let method = tok.text.as_str();
        let lock = match method {
            "lock" => receiver_path(file, i - 2),
            "read" | "write" => {
                let path = receiver_path(file, i - 2);
                let known = path.as_ref().is_some_and(|p| {
                    let last = p.rsplit('.').next().unwrap_or(p);
                    lock_locals
                        .get(last)
                        .copied()
                        .or_else(|| ctx.lock_fields.get(last).copied())
                        == Some(LockKind::RwLock)
                });
                if known {
                    path
                } else if file.tokens[i - 2].is_ident("self")
                    && ctx.callgraph.unanimously_guard_returning(
                        method,
                        item.impl_type.as_deref(),
                        caller,
                    )
                {
                    // `self.read()` / `self.write()` helper methods
                    // (poison-recovering wrappers) that return guards.
                    Some(format!("{method}()"))
                } else {
                    None
                }
            }
            _ => {
                // Any other `self.m()` helper unanimously returning a
                // guard type counts as acquiring its underlying lock.
                if file.tokens[i - 2].is_ident("self")
                    && ctx.callgraph.unanimously_guard_returning(
                        method,
                        item.impl_type.as_deref(),
                        caller,
                    )
                {
                    Some(format!("{method}()"))
                } else {
                    None
                }
            }
        };
        let Some(lock) = lock else { continue };
        let s0 = super::stmt_start(file, i);
        // Start of the receiver chain (`self.shards.lock` → `self`).
        let mut chain = i;
        while chain >= 2
            && file.tokens[chain - 1].is_punct('.')
            && file.tokens[chain - 2].kind == TokenKind::Ident
        {
            chain -= 2;
        }
        out.push(Acq {
            token: i,
            line: tok.line,
            lock,
            binding: let_binding(file, s0, chain, i),
            scope: cfg.enclosing_block(s0),
            extent: temp_extent(file, s0, i),
        });
    }
    out
}

/// The `let`-bound guard name for the acquisition at `call`, if the
/// guard really is the statement's own value: the receiver chain must
/// start right after the `=`, and only pass-through adapters
/// (`unwrap`, `expect`, `unwrap_or_else`, `map_err`, `?`) may follow
/// the call. `let hit = self.read().x.is_some()` binds a bool, not a
/// guard — its guard is a temporary.
fn let_binding(file: &SourceFile, s0: usize, chain: usize, call: usize) -> Option<String> {
    if !file.tokens.get(s0)?.is_ident("let") {
        return None;
    }
    let mut p = s0 + 1;
    if file.tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
        p += 1;
    }
    let name = file.tokens.get(p)?;
    if name.kind != TokenKind::Ident || name.text == "_" {
        return None;
    }
    if chain == 0 || !file.tokens[chain - 1].is_punct('=') {
        return None;
    }
    let mut q = file.close(call + 1) + 1;
    loop {
        let t = file.tokens.get(q)?;
        if t.is_punct('?') {
            q += 1;
        } else if t.is_punct(';') {
            return Some(name.text.clone());
        } else if t.is_punct('.')
            && file.tokens.get(q + 1).is_some_and(|t| {
                t.is_any_ident(&["unwrap", "expect", "unwrap_or_else", "map_err"])
            })
            && file.tokens.get(q + 2).is_some_and(|t| t.is_punct('('))
        {
            q = file.close(q + 2) + 1;
        } else {
            return None;
        }
    }
}

/// Exclusive token index where the temporary produced by the
/// acquisition at `call` dies. Plain `if`/`while` conditions are their
/// own temporary scope — the guard drops before the block runs — while
/// `if let`/`while let` scrutinees and `match` scrutinees live to the
/// end of the whole statement (edition-2021 semantics), `else` chains
/// included.
fn temp_extent(file: &SourceFile, s0: usize, call: usize) -> usize {
    let n = file.tokens.len();
    let mut depth = 0i32;
    let mut j = call;
    while j > s0 {
        let t = &file.tokens[j - 1];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                ")" | "]" | "}" => depth += 1,
                "(" | "[" | "{" => depth = (depth - 1).max(0),
                _ => {}
            }
        }
        if depth == 0
            && t.is_any_ident(&["if", "while"])
            && !file.tokens.get(j).is_some_and(|next| next.is_ident("let"))
        {
            // Inside a plain condition: dies at the block's `{`.
            let mut k = call;
            while k < n {
                let t = &file.tokens[k];
                if t.is_punct('(') || t.is_punct('[') {
                    k = file.close(k) + 1;
                    continue;
                }
                if t.is_punct('{') {
                    return k;
                }
                k += 1;
            }
            return n;
        }
        j -= 1;
    }
    let mut k = call;
    while k < n {
        let t = &file.tokens[k];
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" | "[" => {
                    k = file.close(k) + 1;
                    continue;
                }
                "{" => {
                    let after = file.close(k) + 1;
                    if file.tokens.get(after).is_some_and(|t| t.is_ident("else")) {
                        k = after + 1;
                        continue;
                    }
                    return after;
                }
                ";" | ")" | "]" | "}" => return k,
                _ => {}
            }
        }
        k += 1;
    }
    n
}

/// A hit reported by the ordered walk.
pub(crate) enum Hit<'a> {
    /// `acqs[acquired]` taken while `acqs[held]` is live.
    AcqWhileHeld { held: usize, acquired: usize },
    /// A blocking event while `acqs[held]` is live.
    Blocking { held: usize, event: &'a BlockEvent },
}

/// Walks one node's token span in order, applying structural scope
/// kills, gens, kills and (optionally) reporting into `sink`.
fn walk_node<'e>(
    file: &SourceFile,
    cfg: &Cfg,
    node: usize,
    acqs: &[Acq],
    events: &'e [BlockEvent],
    live: &mut BTreeMap<String, usize>,
    mut sink: Option<&mut dyn FnMut(Hit<'e>)>,
) {
    // Scope-end kill: a guard cannot outlive its binding's block.
    live.retain(|_, ai| cfg.block_contains(acqs[*ai].scope, node));
    let (lo, hi) = cfg.nodes[node].span;
    let hi = hi.min(file.tokens.len());
    let is_return = file.tokens.get(lo).is_some_and(|t| t.is_ident("return"));
    for i in lo..hi {
        // Blocking event at this token?
        if let Some(event) = events.iter().find(|e| e.token == i) {
            let consumed: Vec<String> = live
                .keys()
                .filter(|name| bare_arg_in(file, event.args, name))
                .cloned()
                .collect();
            if let Some(sink) = sink.as_deref_mut() {
                for (name, &held) in live.iter() {
                    if !consumed.contains(name) {
                        sink(Hit::Blocking { held, event });
                    }
                }
            }
            for name in consumed {
                live.remove(&name);
            }
        }
        // Acquisition at this token?
        if let Some(ai) = acqs.iter().position(|a| a.token == i) {
            if let Some(sink) = sink.as_deref_mut() {
                for &held in live.values() {
                    sink(Hit::AcqWhileHeld { held, acquired: ai });
                }
            }
            if let Some(name) = &acqs[ai].binding {
                live.insert(name.clone(), ai);
            }
            continue;
        }
        let tok = &file.tokens[i];
        // `drop(guard)`.
        if tok.is_ident("drop")
            && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && file
                .tokens
                .get(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Ident)
            && file.tokens.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            live.remove(&file.tokens[i + 2].text);
            continue;
        }
        // Bare move as a call argument: `f(guard)` / `f(x, guard)`.
        if tok.kind == TokenKind::Ident
            && live.contains_key(&tok.text)
            && i > 0
            && (file.tokens[i - 1].is_punct('(') || file.tokens[i - 1].is_punct(','))
            && file
                .tokens
                .get(i + 1)
                .is_some_and(|t| t.is_punct(')') || t.is_punct(','))
        {
            live.remove(&tok.text);
            continue;
        }
        // `return guard;` moves the guard out.
        if is_return && tok.kind == TokenKind::Ident && live.contains_key(&tok.text) {
            live.remove(&tok.text);
        }
    }
}

/// True when `name` occurs as a bare top-level token inside `args`.
fn bare_arg_in(file: &SourceFile, args: (usize, usize), name: &str) -> bool {
    let (lo, hi) = args;
    let hi = hi.min(file.tokens.len());
    (lo..hi).any(|i| {
        file.tokens[i].is_ident(name)
            && (i == lo
                || file.tokens[i - 1].is_punct('(')
                || file.tokens[i - 1].is_punct(','))
            && file
                .tokens
                .get(i + 1)
                .is_some_and(|t| t.is_punct(')') || t.is_punct(','))
    })
}

/// Guard liveness as a forward may-analysis: fact = live `let`-bound
/// guards (name → acquisition index).
struct Liveness<'a> {
    file: &'a SourceFile,
    acqs: &'a [Acq],
    events: &'a [BlockEvent],
}

impl Analysis for Liveness<'_> {
    type Fact = BTreeMap<String, usize>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn init(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn merge(&self, into: &mut Self::Fact, from: &Self::Fact) {
        for (k, v) in from {
            into.entry(k.clone()).or_insert(*v);
        }
    }

    fn transfer(&self, cfg: &Cfg, node: usize, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        walk_node(self.file, cfg, node, self.acqs, self.events, &mut out, None);
        out
    }
}

/// The flow result over one function.
pub(crate) struct FlowHits<'a> {
    /// `(held, acquired)` acquisition-order pairs.
    pub pairs: Vec<(usize, usize)>,
    /// `(held, event)` guard-across-blocking hits.
    pub blocking: Vec<(usize, &'a BlockEvent)>,
}

/// Runs liveness over `cfg` and reports ordered hits, including the
/// statement-extent overlaps of temporary (unbound) guards.
pub(crate) fn guard_flow<'a>(
    file: &SourceFile,
    cfg: &Cfg,
    acqs: &[Acq],
    events: &'a [BlockEvent],
) -> FlowHits<'a> {
    let analysis = Liveness { file, acqs, events };
    let solution = crate::dataflow::solve(cfg, &analysis);
    let mut pairs = Vec::new();
    let mut blocking: Vec<(usize, &BlockEvent)> = Vec::new();
    for node in cfg.indices() {
        let mut live = solution.input[node].clone();
        let mut sink = |hit: Hit<'a>| match hit {
            Hit::AcqWhileHeld { held, acquired } => pairs.push((held, acquired)),
            Hit::Blocking { held, event } => blocking.push((held, event)),
        };
        walk_node(
            file,
            cfg,
            node,
            acqs,
            events,
            &mut live,
            Some(&mut sink),
        );
    }
    // Temporary guards: alive for their statement's extent.
    for (ai, a) in acqs.iter().enumerate() {
        if a.binding.is_some() {
            continue;
        }
        for (bi, b) in acqs.iter().enumerate() {
            if ai != bi && a.token < b.token && b.token < a.extent {
                pairs.push((ai, bi));
            }
        }
        for event in events {
            if a.token < event.token && event.token < a.extent {
                blocking.push((ai, event));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    blocking.sort_by_key(|(h, e)| (*h, e.token));
    blocking.dedup_by_key(|(h, e)| (*h, e.token));
    FlowHits { pairs, blocking }
}
