//! `lock-across-blocking`: no lock guard may be held across blocking
//! I/O on the serving path.
//!
//! A guard held across a `read`/`write`/`accept`/fsync (or across a
//! call into a workspace function that unanimously may-block) turns
//! one slow client or one slow disk into a stall for every thread
//! queued on that lock. The rule runs guard liveness over the
//! function's CFG (see [`super::guards`]), so `drop(guard)` before the
//! I/O, a block scope that ends first, or moving the guard *into* the
//! blocking call (the condvar `wait(guard)` idiom — the callee
//! releases it) all make the path clean; only paths on which the guard
//! is genuinely still live are reported.

use super::guards;
use super::{in_scope, Context, Rule};
use crate::callgraph::FnRef;
use crate::cfg::Cfg;
use crate::diagnostics::Diagnostic;
use crate::parser::SourceFile;
use std::collections::BTreeSet;

/// Serving-path crates where a stalled lock is an availability bug.
const PREFIXES: &[&str] = &["crates/serve/src", "crates/substrate/src"];

pub struct LockAcrossBlocking;

impl Rule for LockAcrossBlocking {
    fn id(&self) -> &'static str {
        "lock-across-blocking"
    }

    fn description(&self) -> &'static str {
        "no lock guard held across blocking I/O (CFG liveness + call-graph may-block)"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, ctx, PREFIXES) {
            return;
        }
        let file_idx = ctx.callgraph.file_index(&file.rel_path);
        for (idx, item) in file.fns.iter().enumerate() {
            if item.is_test || file.in_test(item.body.0) {
                continue;
            }
            let caller = file_idx.map(|f| FnRef { file: f, idx });
            let cfg = Cfg::build(file, item);
            let acqs = guards::acquisitions(file, ctx, item, &cfg, caller);
            if acqs.is_empty() {
                continue;
            }
            let events = ctx.callgraph.blocking_events(
                file,
                item.body.0,
                item.body.1,
                item.impl_type.as_deref(),
                caller,
            );
            if events.is_empty() {
                continue;
            }
            let hits = guards::guard_flow(file, &cfg, &acqs, &events);
            let mut seen = BTreeSet::new();
            for (held, event) in hits.blocking {
                let acq = &acqs[held];
                if !seen.insert((event.line, acq.lock.clone(), event.what.clone())) {
                    continue;
                }
                let who = match &acq.binding {
                    Some(name) => format!("guard `{name}`"),
                    None => "temporary guard".to_owned(),
                };
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: event.line,
                    message: format!(
                        "{who} on `{lock}` (acquired at line {at}) is held across \
                         blocking `{what}`; drop the guard first or move the I/O \
                         out of the critical section",
                        lock = acq.lock,
                        at = acq.line,
                        what = event.what,
                    ),
                });
            }
        }
    }
}
