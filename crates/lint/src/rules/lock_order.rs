//! **lock-order**: inconsistent mutex-acquisition order across the
//! serving layer and `substrate::sync`.
//!
//! Builds a workspace-wide acquisition graph: an edge `A → B` is
//! recorded whenever lock `B` is acquired while a guard on `A` is still
//! live in the same function (a `let`-bound guard lives to the end of
//! the function or an explicit `drop(guard)`; a temporary guard lives
//! to the end of its statement). An edge is flagged when the reverse
//! order is also reachable in the graph — the classic ABBA deadlock
//! shape. Lock identity is the receiver path (`self.` stripped), which
//! is exact for the workspace's field-held locks; unresolvable
//! receivers (call results, chained accessors) are skipped, degrading
//! toward silence.

use super::{in_scope, stmt_end, stmt_start, Context, Rule};
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::{FnItem, LockKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

pub struct LockOrder;

/// Where locks are actually taken in this workspace.
const LOCK_PREFIXES: &[&str] = &["crates/serve/src", "crates/substrate/src/sync.rs"];

/// One lock acquisition inside a function body.
struct Acquisition {
    /// Lock identity: dotted receiver path with leading `self.` removed.
    lock: String,
    /// Token index of the acquiring method ident.
    pos: usize,
    /// Exclusive token index where the guard is no longer live.
    live_until: usize,
    line: u32,
}

/// One ordered edge with a representative source location.
struct Edge {
    from: String,
    to: String,
    path: String,
    line: u32,
}

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "inconsistent lock-acquisition order (potential ABBA deadlock)"
    }

    fn check_workspace(&self, files: &[SourceFile], ctx: &Context, out: &mut Vec<Diagnostic>) {
        let mut edges: Vec<Edge> = Vec::new();
        for file in files {
            if !in_scope(file, ctx, LOCK_PREFIXES) {
                continue;
            }
            for item in &file.fns {
                if item.is_test || file.in_test(item.body.0) {
                    continue;
                }
                let acqs = acquisitions(file, ctx, item);
                for a in &acqs {
                    for b in &acqs {
                        if a.pos < b.pos && b.pos < a.live_until && a.lock != b.lock {
                            edges.push(Edge {
                                from: a.lock.clone(),
                                to: b.lock.clone(),
                                path: file.rel_path.clone(),
                                line: b.line,
                            });
                        }
                    }
                }
            }
        }
        let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &edges {
            adjacency.entry(&e.from).or_default().insert(&e.to);
        }
        for e in &edges {
            if reaches(&adjacency, &e.to, &e.from) {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: e.path.clone(),
                    line: e.line,
                    message: format!(
                        "lock `{}` is acquired while `{}` is held, but the reverse \
                         order also occurs in the workspace — potential ABBA deadlock; \
                         pick one global order",
                        e.to, e.from
                    ),
                });
            }
        }
    }
}

/// BFS: can `from` reach `goal` through the acquisition graph?
fn reaches(adjacency: &BTreeMap<&str, BTreeSet<&str>>, from: &str, goal: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut queue: Vec<&str> = vec![from];
    while let Some(node) = queue.pop() {
        if node == goal {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = adjacency.get(node) {
            queue.extend(next.iter().copied().filter(|n| !seen.contains(n)));
        }
    }
    false
}

/// All resolvable lock acquisitions in a fn body, with guard extents.
fn acquisitions(file: &SourceFile, ctx: &Context, item: &FnItem) -> Vec<Acquisition> {
    let lock_locals = local_locks(file, item);
    let (open, close) = item.body;
    let mut out = Vec::new();
    for i in open + 1..close {
        let tok = &file.tokens[i];
        if tok.kind != TokenKind::Ident
            || i < 2
            || !file.tokens[i - 1].is_punct('.')
            || !file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let method = tok.text.as_str();
        if !matches!(method, "lock" | "read" | "write") {
            continue;
        }
        let Some(path) = receiver_path(file, i - 2) else {
            continue;
        };
        let last = path.rsplit('.').next().unwrap_or(&path).to_owned();
        let kind = lock_locals
            .get(&last)
            .copied()
            .or_else(|| ctx.lock_fields.get(&last).copied());
        // `.lock()` is unambiguous; `.read()`/`.write()` collide with
        // io traits, so they only count on a known RwLock receiver.
        let counts = match method {
            "lock" => true,
            _ => kind == Some(LockKind::RwLock),
        };
        if !counts {
            continue;
        }
        let live_until = guard_extent(file, item, i);
        out.push(Acquisition {
            lock: path,
            pos: i,
            live_until,
            line: tok.line,
        });
    }
    out
}

/// Dotted receiver path ending at token `p`, or `None` for complex
/// receivers (`make_lock().lock()`).
fn receiver_path(file: &SourceFile, p: usize) -> Option<String> {
    let tok = file.tokens.get(p)?;
    if tok.kind != TokenKind::Ident {
        return None;
    }
    let mut segments = vec![tok.text.clone()];
    let mut j = p;
    while j >= 2 && file.tokens[j - 1].is_punct('.') {
        let prev = &file.tokens[j - 2];
        if prev.kind != TokenKind::Ident {
            return None; // `foo().lock()` — unresolvable
        }
        segments.push(prev.text.clone());
        j -= 2;
    }
    segments.reverse();
    if segments.first().is_some_and(|s| s == "self") {
        segments.remove(0);
    }
    if segments.is_empty() {
        return None;
    }
    Some(segments.join("."))
}

/// How long the guard produced by the acquisition at `i` stays live.
fn guard_extent(file: &SourceFile, item: &FnItem, i: usize) -> usize {
    let s0 = stmt_start(file, i);
    let close = item.body.1;
    if file.tokens.get(s0).is_some_and(|t| t.is_ident("let")) {
        let mut p = s0 + 1;
        if file.tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
            p += 1;
        }
        if let Some(name) = file.tokens.get(p) {
            if name.kind == TokenKind::Ident && name.text != "_" {
                // Guard lives until an explicit drop or the fn end.
                let guard = name.text.clone();
                let mut j = stmt_end(file, i);
                while j + 3 < close {
                    if file.tokens[j].is_ident("drop")
                        && file.tokens[j + 1].is_punct('(')
                        && file.tokens[j + 2].is_ident(&guard)
                        && file.tokens[j + 3].is_punct(')')
                    {
                        return j;
                    }
                    j += 1;
                }
                return close;
            }
        }
        // `let _ = x.lock()` — guard dropped at end of statement.
    }
    stmt_end(file, i)
}

/// Locals holding a lock directly: `let m = Mutex::new(..)` or an
/// annotation mentioning `Mutex`/`RwLock`.
fn local_locks(file: &SourceFile, item: &FnItem) -> BTreeMap<String, LockKind> {
    let mut out = BTreeMap::new();
    let (open, close) = item.body;
    let mut k = open + 1;
    while k < close {
        if file.tokens[k].is_ident("let") {
            let mut p = k + 1;
            if file.tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
                p += 1;
            }
            if let Some(name) = file.tokens.get(p) {
                if name.kind == TokenKind::Ident && name.text != "_" {
                    let end = stmt_end(file, p);
                    let lock = file.tokens[p + 1..end.min(close)].iter().find_map(|t| {
                        match t.text.as_str() {
                            "Mutex" => Some(LockKind::Mutex),
                            "RwLock" => Some(LockKind::RwLock),
                            _ => None,
                        }
                    });
                    if let Some(lock) = lock {
                        out.insert(name.text.clone(), lock);
                    }
                }
            }
        }
        k += 1;
    }
    out
}
