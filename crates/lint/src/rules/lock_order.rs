//! **lock-order**: inconsistent mutex-acquisition order across the
//! serving layer and `substrate::sync`.
//!
//! Builds a workspace-wide acquisition graph: an edge `A → B` is
//! recorded whenever lock `B` is acquired while a guard on `A` is still
//! live *on some CFG path* in the same function. Guard liveness comes
//! from the shared dataflow machinery in [`super::guards`]: a
//! `let`-bound guard dies at `drop(guard)`, at a bare move, at a
//! `return`, or at the end of its lexical block — so a guard dropped on
//! one branch still orders locks taken on the other, and a
//! block-scoped guard never orders locks taken after its block. An
//! edge is flagged when the reverse order is also reachable in the
//! graph — the classic ABBA deadlock shape. Lock identity is the
//! receiver path (`self.` stripped); unresolvable receivers are
//! skipped, degrading toward silence.

use super::guards;
use super::{in_scope, Context, Rule};
use crate::callgraph::FnRef;
use crate::cfg::Cfg;
use crate::diagnostics::Diagnostic;
use crate::parser::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

pub struct LockOrder;

/// Where locks are actually taken in this workspace.
const LOCK_PREFIXES: &[&str] = &["crates/serve/src", "crates/substrate/src/sync.rs"];

/// One ordered edge with a representative source location.
struct Edge {
    from: String,
    to: String,
    path: String,
    line: u32,
}

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "inconsistent lock-acquisition order (potential ABBA deadlock)"
    }

    fn check_workspace(&self, files: &[SourceFile], ctx: &Context, out: &mut Vec<Diagnostic>) {
        let mut edges: Vec<Edge> = Vec::new();
        for file in files {
            if !in_scope(file, ctx, LOCK_PREFIXES) {
                continue;
            }
            let file_idx = ctx.callgraph.file_index(&file.rel_path);
            for (idx, item) in file.fns.iter().enumerate() {
                if item.is_test || file.in_test(item.body.0) {
                    continue;
                }
                let caller = file_idx.map(|f| FnRef { file: f, idx });
                let cfg = Cfg::build(file, item);
                let acqs = guards::acquisitions(file, ctx, item, &cfg, caller);
                if acqs.len() < 2 {
                    continue;
                }
                let hits = guards::guard_flow(file, &cfg, &acqs, &[]);
                for (held, taken) in hits.pairs {
                    let (a, b) = (&acqs[held], &acqs[taken]);
                    if a.lock != b.lock {
                        edges.push(Edge {
                            from: a.lock.clone(),
                            to: b.lock.clone(),
                            path: file.rel_path.clone(),
                            line: b.line,
                        });
                    }
                }
            }
        }
        let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in &edges {
            adjacency.entry(&e.from).or_default().insert(&e.to);
        }
        for e in &edges {
            if reaches(&adjacency, &e.to, &e.from) {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: e.path.clone(),
                    line: e.line,
                    message: format!(
                        "lock `{}` is acquired while `{}` is held, but the reverse \
                         order also occurs in the workspace — potential ABBA deadlock; \
                         pick one global order",
                        e.to, e.from
                    ),
                });
            }
        }
    }
}

/// BFS: can `from` reach `goal` through the acquisition graph?
fn reaches(adjacency: &BTreeMap<&str, BTreeSet<&str>>, from: &str, goal: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut queue: Vec<&str> = vec![from];
    while let Some(node) = queue.pop() {
        if node == goal {
            return true;
        }
        if !seen.insert(node) {
            continue;
        }
        if let Some(next) = adjacency.get(node) {
            queue.extend(next.iter().copied().filter(|n| !seen.contains(n)));
        }
    }
    false
}
