//! `unbounded-request-alloc`: a length parsed out of request bytes must
//! pass an upper-bound check before it sizes an allocation.
//!
//! `Content-Length: 18446744073709551615` should cost the attacker a
//! 4xx, not the server its address space. The rule is a forward taint
//! analysis over the CFG: `let n = ...parse(...)...` (or
//! `from_str_radix`) gens taint on `n`; re-binding `n` from anything
//! non-parsed kills it; and — the flow-sensitive part — comparison
//! guards sanitize **per branch edge**: after `if n > MAX { return
//! err; }` the else-edge fact no longer carries `n`, so the allocation
//! below is clean, while a path that skips the check keeps the taint
//! and is reported. Sinks are the direct allocation sites
//! (`with_capacity`, `resize`, `reserve`, `vec![v; n]`) plus calls
//! whose matching parameter unanimously reaches an allocation sink per
//! the call-graph summaries.

use super::{in_scope, Context, Rule};
use crate::callgraph::{alloc_sink_size_span, call_args, call_at, call_hint, FnRef};
use crate::cfg::{Cfg, EdgeKind, NodeKind};
use crate::dataflow::{solve, Analysis, Direction};
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::SourceFile;
use std::collections::BTreeMap;

/// Request-handling crates: the only places where integers arrive from
/// the network or from on-disk records.
const PREFIXES: &[&str] = &["crates/serve/src", "crates/substrate/src"];

pub struct UnboundedRequestAlloc;

impl Rule for UnboundedRequestAlloc {
    fn id(&self) -> &'static str {
        "unbounded-request-alloc"
    }

    fn description(&self) -> &'static str {
        "parsed lengths are bounds-checked before sizing allocations (branch-edge taint)"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, ctx, PREFIXES) {
            return;
        }
        let file_idx = ctx.callgraph.file_index(&file.rel_path);
        for (idx, item) in file.fns.iter().enumerate() {
            if item.is_test || file.in_test(item.body.0) {
                continue;
            }
            let (open, close) = item.body;
            let any_parse = (open..close).any(|i| is_parse_call(file, i));
            if !any_parse {
                continue;
            }
            let caller = file_idx.map(|f| FnRef { file: f, idx });
            let cfg = Cfg::build(file, item);
            let analysis = Taint { file };
            let solution = solve(&cfg, &analysis);
            for node in cfg.indices() {
                let tainted = &solution.input[node];
                if tainted.is_empty() {
                    continue;
                }
                let (lo, hi) = cfg.nodes[node].span;
                let hi = hi.min(file.tokens.len());
                for i in lo..hi {
                    // Direct sink: the size expression mentions taint.
                    if let Some((slo, shi)) = alloc_sink_size_span(file, i) {
                        for (name, &src_line) in tainted {
                            let hit = file.tokens[slo..shi.min(file.tokens.len())]
                                .iter()
                                .any(|t| t.is_ident(name));
                            if hit {
                                push(out, self.id(), file, file.tokens[i].line, name, src_line);
                            }
                        }
                        continue;
                    }
                    // Interprocedural sink: argument j of a callee whose
                    // parameter j unanimously reaches an allocation.
                    let Some((callee, paren)) = call_at(file, i) else {
                        continue;
                    };
                    let hint = call_hint(file, i, item.impl_type.as_deref());
                    for (j, &(alo, ahi)) in call_args(file, paren).iter().enumerate() {
                        for (name, &src_line) in tainted {
                            let hit = file.tokens[alo..ahi.min(file.tokens.len())]
                                .iter()
                                .any(|t| t.is_ident(name));
                            if hit
                                && ctx.callgraph.unanimously_allocates_param(
                                    &callee,
                                    hint.as_deref(),
                                    caller,
                                    j,
                                )
                            {
                                push(out, self.id(), file, file.tokens[i].line, name, src_line);
                            }
                        }
                    }
                }
            }
        }
    }
}

fn push(
    out: &mut Vec<Diagnostic>,
    rule: &'static str,
    file: &SourceFile,
    line: u32,
    name: &str,
    src_line: u32,
) {
    out.push(Diagnostic {
        rule,
        path: file.rel_path.clone(),
        line,
        message: format!(
            "`{name}` (parsed from input at line {src_line}) sizes an allocation \
             without an upper-bound check on this path; compare it against a \
             limit first"
        ),
    });
}

/// `.parse(` or `from_str_radix(` at token `i`.
fn is_parse_call(file: &SourceFile, i: usize) -> bool {
    let tok = &file.tokens[i];
    if tok.is_ident("parse") && i > 0 && file.tokens[i - 1].is_punct('.') {
        return file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            || file.tokens.get(i + 1).is_some_and(|t| t.is_punct(':'));
    }
    tok.is_ident("from_str_radix") && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// Fact: tainted binding name → line of the parse that produced it.
struct Taint<'a> {
    file: &'a SourceFile,
}

impl Analysis for Taint<'_> {
    type Fact = BTreeMap<String, u32>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn init(&self) -> Self::Fact {
        BTreeMap::new()
    }

    fn merge(&self, into: &mut Self::Fact, from: &Self::Fact) {
        for (k, v) in from {
            into.entry(k.clone()).or_insert(*v);
        }
    }

    fn transfer(&self, cfg: &Cfg, node: usize, fact: &Self::Fact) -> Self::Fact {
        let mut out = fact.clone();
        let (lo, hi) = cfg.nodes[node].span;
        let hi = hi.min(self.file.tokens.len());
        // Statement-shaped nodes: (re)bindings gen or kill taint.
        let mut p = lo;
        if self.file.tokens.get(p).is_some_and(|t| t.is_ident("let")) {
            p += 1;
            if self.file.tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
                p += 1;
            }
            if let Some(name) = self.file.tokens.get(p) {
                if name.kind == TokenKind::Ident && name.text != "_" {
                    let parsed = (p + 1..hi).any(|i| is_parse_call(self.file, i));
                    if parsed {
                        out.insert(name.text.clone(), name.line);
                    } else {
                        // Shadowing re-binding from a non-parsed value
                        // (e.g. `let n = n.min(MAX);`) launders taint.
                        out.remove(&name.text);
                    }
                }
            }
        } else if self
            .file
            .tokens
            .get(lo)
            .is_some_and(|t| t.kind == TokenKind::Ident)
            && self.file.tokens.get(lo + 1).is_some_and(|t| t.is_punct('='))
            && !self.file.tokens.get(lo + 2).is_some_and(|t| t.is_punct('='))
        {
            let parsed = (lo + 2..hi).any(|i| is_parse_call(self.file, i));
            let name = &self.file.tokens[lo];
            if parsed {
                out.insert(name.text.clone(), name.line);
            } else {
                out.remove(&name.text);
            }
        }
        out
    }

    /// Branch-edge sanitization: a comparison against a limit clears the
    /// taint on the side where the bound is known to hold.
    fn edge(
        &self,
        cfg: &Cfg,
        from: usize,
        _to: usize,
        kind: EdgeKind,
        infact: &Self::Fact,
        outfact: &Self::Fact,
    ) -> Self::Fact {
        let mut fact = outfact.clone();
        if kind == EdgeKind::Try {
            return infact.clone();
        }
        if cfg.nodes[from].kind != NodeKind::Cond
            || (kind != EdgeKind::Then && kind != EdgeKind::Else)
        {
            return fact;
        }
        let (lo, hi) = cfg.nodes[from].span;
        let hi = hi.min(self.file.tokens.len());
        fact.retain(|name, _| {
            for i in lo..hi {
                let tok = &self.file.tokens[i];
                // `n > MAX` / `n >= MAX`: else-edge means n ≤ MAX.
                if tok.is_ident(name) {
                    if let Some(next) = self.file.tokens.get(i + 1) {
                        if next.is_punct('>') && kind == EdgeKind::Else {
                            return false;
                        }
                        if next.is_punct('<') && kind == EdgeKind::Then {
                            return false;
                        }
                    }
                }
                // `MAX > n`: then-edge means n < MAX (and dually).
                if i > 0 && tok.is_ident(name) {
                    let prev = &self.file.tokens[i - 1];
                    let prev_is_cmp_tail = prev.is_punct('=')
                        && i > 1
                        && (self.file.tokens[i - 2].is_punct('>')
                            || self.file.tokens[i - 2].is_punct('<'));
                    let op = if prev_is_cmp_tail {
                        &self.file.tokens[i - 2]
                    } else {
                        prev
                    };
                    if op.is_punct('>') && kind == EdgeKind::Then {
                        return false;
                    }
                    if op.is_punct('<') && kind == EdgeKind::Else {
                        return false;
                    }
                }
            }
            true
        });
        fact
    }
}
