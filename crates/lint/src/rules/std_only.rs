//! **std-only**: `use`/`extern crate` of anything that is neither `std`
//! nor a workspace crate.
//!
//! The workspace's zero-dependency invariant (PR 1 replaced every
//! registry crate with `webre-substrate`) is enforced dynamically by
//! the `Cargo.lock` guard in `scripts/verify.sh`; this rule catches the
//! import at the source line where it happens, before a build even
//! runs. `crates/substrate` itself is exempt — it is the designated
//! shim layer, the one place an external facade would ever be wrapped.

use super::{Context, Rule};
use crate::diagnostics::Diagnostic;
use crate::parser::SourceFile;

pub struct StdOnly;

// `proc_macro` and `test` ship with the toolchain itself — importing
// them is not an external dependency.
const ALLOWED_ROOTS: &[&str] =
    &["std", "core", "alloc", "crate", "self", "super", "proc_macro", "test"];

impl Rule for StdOnly {
    fn id(&self) -> &'static str {
        "std-only"
    }

    fn description(&self) -> &'static str {
        "use/extern crate of a non-std, non-workspace crate outside crates/substrate"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !ctx.scope_everything && file.rel_path.starts_with("crates/substrate") {
            return;
        }
        for decl in &file.uses {
            let root = decl.root.as_str();
            if ALLOWED_ROOTS.contains(&root)
                || ctx.crate_names.contains(root)
                || file.mods.contains(root)
            {
                continue;
            }
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line: decl.line,
                message: format!(
                    "import of external crate `{root}`; the workspace is std-only \
                     (allowed roots: std/core/alloc and workspace crates)"
                ),
            });
        }
    }
}
