//! The rule framework: workspace-wide context, the [`Rule`] trait, and
//! token-walking helpers shared by several rules.
//!
//! Rules are deliberately calibrated against this workspace's idioms:
//! resolution is by name (no type inference), and every ambiguity
//! degrades toward *silence*. A static pass that cries wolf gets
//! suppressed wholesale; one that is quiet but right gets kept in CI.

use crate::callgraph::CallGraph;
use crate::diagnostics::Diagnostic;
use crate::parser::{CollKind, LockKind, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

mod dropped_result;
mod guards;
mod lock_across_blocking;
mod lock_order;
mod nondet_iter;
mod panic_path;
mod std_only;
mod unbounded_alloc;
mod unjoined_thread;
mod wall_clock;

/// Facts collected over the whole file set before rules run.
#[derive(Clone, Debug, Default)]
pub struct Context {
    /// Workspace package names in `use`-path form (`webre_xml`).
    pub crate_names: BTreeSet<String>,
    /// Names of non-test workspace fns whose return type mentions
    /// `Result`.
    pub result_fns: BTreeSet<String>,
    /// Names of workspace fns that do *not* return `Result` — used to
    /// shadow same-named std methods in the dropped-result table.
    pub nonresult_fns: BTreeSet<String>,
    /// Struct name → field name → (collection kind, lock kind).
    pub structs: BTreeMap<String, BTreeMap<String, (CollKind, Option<LockKind>)>>,
    /// Field name → collection kind, only where every struct declaring
    /// that field name agrees (unambiguous cross-struct resolution).
    pub unambiguous_fields: BTreeMap<String, CollKind>,
    /// Field names that hold a lock anywhere in their type.
    pub lock_fields: BTreeMap<String, LockKind>,
    /// Workspace call graph with may-block/may-panic/alloc summaries.
    pub callgraph: CallGraph,
    /// Check every rule on every file, ignoring path scoping.
    pub scope_everything: bool,
}

impl Context {
    /// Builds the context from all parsed files.
    pub fn build(files: &[SourceFile], crate_names: BTreeSet<String>, scope_everything: bool) -> Context {
        let mut ctx = Context {
            crate_names,
            scope_everything,
            callgraph: CallGraph::build(files),
            ..Context::default()
        };
        let mut field_kinds: BTreeMap<String, BTreeSet<CollKind>> = BTreeMap::new();
        for file in files {
            for f in &file.fns {
                if f.is_test {
                    continue;
                }
                if f.returns_result {
                    ctx.result_fns.insert(f.name.clone());
                } else {
                    ctx.nonresult_fns.insert(f.name.clone());
                }
            }
            for s in &file.structs {
                let entry = ctx.structs.entry(s.name.clone()).or_default();
                for field in &s.fields {
                    entry
                        .entry(field.name.clone())
                        .or_insert((field.kind, field.lock));
                    field_kinds
                        .entry(field.name.clone())
                        .or_default()
                        .insert(field.kind);
                    if let Some(lock) = field.lock {
                        ctx.lock_fields.entry(field.name.clone()).or_insert(lock);
                    }
                }
            }
        }
        for (name, kinds) in field_kinds {
            if kinds.len() == 1 {
                if let Some(kind) = kinds.into_iter().next() {
                    ctx.unambiguous_fields.insert(name, kind);
                }
            }
        }
        ctx
    }
}

// CollKind needs an order for the BTreeSet above.
impl PartialOrd for CollKind {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CollKind {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        fn rank(k: &CollKind) -> u8 {
            match k {
                CollKind::Hash => 0,
                CollKind::BTree => 1,
                CollKind::Ordered => 2,
                CollKind::Other => 3,
            }
        }
        rank(self).cmp(&rank(other))
    }
}

/// One lint rule.
pub trait Rule {
    /// Stable rule ID (`nondet-iter`, ...).
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Per-file pass.
    fn check_file(&self, _file: &SourceFile, _ctx: &Context, _out: &mut Vec<Diagnostic>) {}
    /// Whole-workspace pass (for cross-file analyses like lock-order).
    fn check_workspace(&self, _files: &[SourceFile], _ctx: &Context, _out: &mut Vec<Diagnostic>) {}
}

/// Every shipped rule, in stable ID order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(dropped_result::DroppedResult),
        Box::new(lock_across_blocking::LockAcrossBlocking),
        Box::new(lock_order::LockOrder),
        Box::new(wall_clock::WallClock),
        Box::new(nondet_iter::NondetIter),
        Box::new(panic_path::PanicPath),
        Box::new(std_only::StdOnly),
        Box::new(unbounded_alloc::UnboundedRequestAlloc),
        Box::new(unjoined_thread::UnjoinedThread),
    ]
}

/// True when `file` falls under any of `prefixes` (or scoping is off).
pub(crate) fn in_scope(file: &SourceFile, ctx: &Context, prefixes: &[&str]) -> bool {
    ctx.scope_everything || prefixes.iter().any(|p| file.rel_path.starts_with(p))
}

/// Start of the statement containing token `idx`: scans backward,
/// skipping balanced delimiter groups, to the nearest `;`, `{`, or `}`
/// at statement level (or an unmatched enclosing opener).
pub(crate) fn stmt_start(file: &SourceFile, idx: usize) -> usize {
    let mut depth = 0i32;
    let mut j = idx;
    while j > 0 {
        let tok = &file.tokens[j - 1];
        match tok.text.as_str() {
            ")" | "]" | "}" if tok.kind == crate::lexer::TokenKind::Punct => depth += 1,
            "(" | "[" | "{" if tok.kind == crate::lexer::TokenKind::Punct => {
                if depth == 0 {
                    return j; // enclosing opener
                }
                depth -= 1;
                // A balanced `{...}` group inside a statement (closure,
                // match) was skipped; a statement-level `}` boundary
                // would have depth 0 and is handled above.
            }
            ";" if depth == 0 => return j,
            _ => {}
        }
        j -= 1;
    }
    0
}

/// End (exclusive, index of the terminator) of the statement containing
/// `idx`: scans forward, skipping balanced groups, to `;` at statement
/// level or the enclosing close brace.
pub(crate) fn stmt_end(file: &SourceFile, idx: usize) -> usize {
    let n = file.tokens.len();
    let mut j = idx;
    while j < n {
        let tok = &file.tokens[j];
        if tok.kind == crate::lexer::TokenKind::Punct {
            match tok.text.as_str() {
                "(" | "[" => {
                    j = file.close(j) + 1;
                    continue;
                }
                "{" => {
                    // Balanced block inside the statement (closure body,
                    // match expression): skip it.
                    j = file.close(j) + 1;
                    continue;
                }
                ";" => return j,
                ")" | "]" | "}" => return j, // enclosing close
                _ => {}
            }
        }
        j += 1;
    }
    n
}

/// Local bindings (including parameters) of a fn, classified.
pub(crate) fn fn_locals(file: &SourceFile, item: &crate::parser::FnItem) -> BTreeMap<String, CollKind> {
    let mut out = BTreeMap::new();
    // Parameters: first paren group after the fn name (skipping one
    // generic group, which may itself contain `Fn(...)` parens).
    let mut j = item.token + 2;
    let n = file.tokens.len().min(item.body.0);
    if file.tokens.get(j).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 1i32;
        j += 1;
        while j < n && depth > 0 {
            if file.tokens[j].is_punct('<') {
                depth += 1;
            } else if file.tokens[j].is_punct('>') {
                depth -= 1;
            }
            j += 1;
        }
    }
    while j < n && !file.tokens[j].is_punct('(') {
        j += 1;
    }
    if j < n {
        let close = file.close(j);
        let mut k = j + 1;
        while k < close {
            let tok = &file.tokens[k];
            if tok.kind == crate::lexer::TokenKind::Ident
                && file.tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
                && !file.tokens.get(k + 2).is_some_and(|t| t.is_punct(':'))
            {
                let mut end = k + 2;
                while end < close {
                    let x = &file.tokens[end];
                    if x.is_punct(',') {
                        break;
                    }
                    if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
                        end = file.close(end) + 1;
                        continue;
                    }
                    end += 1;
                }
                let (kind, _) = crate::parser::classify_type(&file.tokens[k + 2..end]);
                out.insert(tok.text.clone(), kind);
                k = end + 1;
                continue;
            }
            k += 1;
        }
    }
    // `let` bindings inside the body.
    let (open, closeb) = item.body;
    let mut k = open + 1;
    while k < closeb {
        if file.tokens[k].is_ident("let") {
            let mut p = k + 1;
            if file.tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
                p += 1;
            }
            let Some(name) = file.tokens.get(p) else { break };
            if name.kind == crate::lexer::TokenKind::Ident && name.text != "_" {
                let name_text = name.text.clone();
                let mut kind = CollKind::Other;
                let mut q = p + 1;
                if file.tokens.get(q).is_some_and(|t| t.is_punct(':')) {
                    // Annotated: classify the tokens up to `=` or `;`.
                    let mut end = q + 1;
                    while end < closeb {
                        let x = &file.tokens[end];
                        if x.is_punct('=') || x.is_punct(';') {
                            break;
                        }
                        if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
                            end = file.close(end) + 1;
                            continue;
                        }
                        end += 1;
                    }
                    kind = crate::parser::classify_type(&file.tokens[q + 1..end]).0;
                    q = end;
                }
                if kind == CollKind::Other && file.tokens.get(q).is_some_and(|t| t.is_punct('=')) {
                    // Infer from the constructor: `HashMap::new()`, `Vec::new()`, `vec![...]`.
                    if let Some(head) = file.tokens.get(q + 1) {
                        kind = match head.text.as_str() {
                            "HashMap" | "HashSet" => CollKind::Hash,
                            "BTreeMap" | "BTreeSet" => CollKind::BTree,
                            "Vec" | "VecDeque" | "String" | "vec" => CollKind::Ordered,
                            _ => CollKind::Other,
                        };
                    }
                }
                out.insert(name_text, kind);
            }
        }
        k += 1;
    }
    out
}

/// Resolves the collection kind of the receiver ident at token `p`
/// (the ident directly before a `.method(` call).
pub(crate) fn resolve_receiver(
    file: &SourceFile,
    ctx: &Context,
    locals: &BTreeMap<String, CollKind>,
    impl_type: Option<&str>,
    p: usize,
) -> Option<CollKind> {
    let tok = file.tokens.get(p)?;
    if tok.kind != crate::lexer::TokenKind::Ident {
        return None;
    }
    // A leading `.` marks field access — unless it is half of a range
    // (`0..children`), which is not an access at all.
    let field_access = p >= 2
        && file.tokens[p - 1].is_punct('.')
        && !file.tokens[p - 2].is_punct('.');
    if field_access {
        if file.tokens[p - 2].is_ident("self") {
            if let Some(ty) = impl_type {
                return ctx
                    .structs
                    .get(ty)
                    .and_then(|fields| fields.get(&tok.text))
                    .map(|(kind, _)| *kind);
            }
        }
        return ctx.unambiguous_fields.get(&tok.text).copied();
    }
    locals.get(&tok.text).copied()
}
