//! **nondet-iter**: `HashMap`/`HashSet` iteration flowing into ordered
//! output without an intervening sort.
//!
//! This is the bug class the paper's pipeline is most exposed to: the
//! schema-discovery layer is set/map-heavy, and hash iteration order is
//! nondeterministic per process. The rule flags an iteration only when
//! the elements demonstrably reach an *ordered* sink — a `collect` into
//! `Vec`/`String` (resolved through type annotations, turbofish, or the
//! struct-literal field the binding is stored into), a `push`/`extend`
//! inside a `for` loop over the map, or a `write!` in the loop body —
//! and no `sort*` is applied to the sink afterward in the same
//! function. Order-insensitive terminals (`max_by_key`, `sum`,
//! `count`, ...), collections into `BTreeMap`/`BTreeSet`, and
//! sort-after-collect all pass clean, matching the workspace's
//! existing deterministic idioms.

use super::{fn_locals, resolve_receiver, Context, Rule};
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::{CollKind, SourceFile};
use std::collections::BTreeMap;

pub struct NondetIter;

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
];

/// Iterator terminals whose result does not depend on element order.
const ORDER_INSENSITIVE: &[&str] = &[
    "max", "min", "max_by", "min_by", "max_by_key", "min_by_key", "sum", "product", "count",
    "any", "all", "len",
];

const SORTS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

impl Rule for NondetIter {
    fn id(&self) -> &'static str {
        "nondet-iter"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet iteration feeding ordered output without a sort"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        for item in &file.fns {
            if item.is_test || file.in_test(item.body.0) {
                continue;
            }
            let locals = fn_locals(file, item);
            let impl_type = item.impl_type.as_deref();
            self.check_chains(file, ctx, item, &locals, impl_type, out);
            self.check_for_loops(file, ctx, item, &locals, impl_type, out);
        }
    }
}

impl NondetIter {
    fn check_chains(
        &self,
        file: &SourceFile,
        ctx: &Context,
        item: &crate::parser::FnItem,
        locals: &BTreeMap<String, CollKind>,
        impl_type: Option<&str>,
        out: &mut Vec<Diagnostic>,
    ) {
        let (open, close) = item.body;
        for i in open + 1..close {
            let tok = &file.tokens[i];
            if tok.kind != TokenKind::Ident
                || !ITER_METHODS.contains(&tok.text.as_str())
                || !file.tokens[i - 1].is_punct('.')
                || !file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                continue;
            }
            let receiver = i.checked_sub(2).and_then(|p| {
                resolve_receiver(file, ctx, locals, impl_type, p)
            });
            if receiver != Some(CollKind::Hash) {
                continue;
            }
            let line = tok.line;
            // `sink.extend(map.iter()...)`: the wrapping call is the sink.
            if let Some(flagged) = self.extend_wrap(file, ctx, item, locals, impl_type, i) {
                if flagged {
                    out.push(self.diag(file, line, "hash iteration extends an ordered collection"));
                }
                continue;
            }
            // Walk the method chain after the iteration call.
            let mut j = file.close(i + 1) + 1;
            let mut methods: Vec<(String, usize)> = Vec::new();
            let mut collect_type: Option<CollKind> = None;
            while j + 1 < close && file.tokens[j].is_punct('.') {
                let m = &file.tokens[j + 1];
                if m.kind != TokenKind::Ident {
                    break;
                }
                let mut k = j + 2;
                // Turbofish: `collect::<Vec<_>>(...)`.
                if file.tokens.get(k).is_some_and(|t| t.is_punct(':'))
                    && file.tokens.get(k + 1).is_some_and(|t| t.is_punct(':'))
                    && file.tokens.get(k + 2).is_some_and(|t| t.is_punct('<'))
                {
                    let mut depth = 1i32;
                    let start = k + 3;
                    k += 3;
                    while k < close && depth > 0 {
                        if file.tokens[k].is_punct('<') {
                            depth += 1;
                        } else if file.tokens[k].is_punct('>') {
                            depth -= 1;
                        }
                        k += 1;
                    }
                    if m.text == "collect" {
                        collect_type =
                            Some(crate::parser::classify_type(&file.tokens[start..k]).0);
                    }
                }
                if !file.tokens.get(k).is_some_and(|t| t.is_punct('(')) {
                    break;
                }
                methods.push((m.text.clone(), k));
                j = file.close(k) + 1;
            }
            if methods
                .iter()
                .any(|(m, _)| ORDER_INSENSITIVE.contains(&m.as_str()))
            {
                continue;
            }
            if let Some((_, paren)) = methods.iter().find(|(m, _)| m == "for_each") {
                if self.body_has_ordered_sink(file, *paren, file.close(*paren)) {
                    out.push(self.diag(
                        file,
                        line,
                        "hash iteration drives `for_each` into ordered output",
                    ));
                }
                continue;
            }
            if !methods.iter().any(|(m, _)| m == "collect") {
                continue;
            }
            match collect_type {
                Some(CollKind::Hash) | Some(CollKind::BTree) => continue,
                Some(CollKind::Ordered) => {
                    if !self.binding_sorted_later(file, ctx, item, i) {
                        out.push(self.diag(
                            file,
                            line,
                            "hash iteration collects into an ordered collection without a sort",
                        ));
                    }
                }
                _ => {
                    // Resolve through the binding's annotation or usage.
                    match self.binding_verdict(file, ctx, item, i) {
                        Verdict::Ordered => out.push(self.diag(
                            file,
                            line,
                            "hash iteration collects into ordered storage without a sort",
                        )),
                        Verdict::Clean | Verdict::Unknown => {}
                    }
                }
            }
        }
    }

    /// When the iteration at `i` sits directly inside `X.extend(...)`,
    /// returns whether that should be flagged (`Some`) or `None` when
    /// not an extend-wrap.
    fn extend_wrap(
        &self,
        file: &SourceFile,
        ctx: &Context,
        item: &crate::parser::FnItem,
        locals: &BTreeMap<String, CollKind>,
        impl_type: Option<&str>,
        i: usize,
    ) -> Option<bool> {
        // Receiver path start: `map` in `map.iter()` or `self` in
        // `self.map.iter()`.
        let mut r0 = i - 2;
        if r0 >= 2 && file.tokens[r0 - 1].is_punct('.') && file.tokens[r0 - 2].is_ident("self") {
            r0 -= 2;
        }
        if r0 < 4
            || !file.tokens[r0 - 1].is_punct('(')
            || !file.tokens[r0 - 2].is_ident("extend")
            || !file.tokens[r0 - 3].is_punct('.')
        {
            return None;
        }
        let target = r0 - 4;
        let kind = resolve_receiver(file, ctx, locals, impl_type, target);
        match kind {
            Some(CollKind::Hash) | Some(CollKind::BTree) => Some(false),
            _ => {
                let name = file.tokens[target].text.clone();
                Some(!self.sorted_later(file, item, file.close(r0 - 1), &name))
            }
        }
    }

    /// For a candidate collect at iteration token `i`: true when the
    /// `let` binding receiving it is sorted later in the function.
    fn binding_sorted_later(
        &self,
        file: &SourceFile,
        _ctx: &Context,
        item: &crate::parser::FnItem,
        i: usize,
    ) -> bool {
        let (binding, _) = self.let_binding(file, i);
        match binding {
            Some(name) => self.sorted_later(file, item, super::stmt_end(file, i), &name),
            None => false,
        }
    }

    /// Resolves an un-annotated collect through its binding's usage.
    fn binding_verdict(
        &self,
        file: &SourceFile,
        ctx: &Context,
        item: &crate::parser::FnItem,
        i: usize,
    ) -> Verdict {
        let (binding, annotation) = self.let_binding(file, i);
        match annotation {
            Some(CollKind::Hash) | Some(CollKind::BTree) => return Verdict::Clean,
            Some(CollKind::Ordered) => {
                return match &binding {
                    Some(name)
                        if self.sorted_later(file, item, super::stmt_end(file, i), name) =>
                    {
                        Verdict::Clean
                    }
                    _ => Verdict::Ordered,
                };
            }
            _ => {}
        }
        let Some(name) = binding else {
            return Verdict::Unknown;
        };
        let from = super::stmt_end(file, i);
        if self.sorted_later(file, item, from, &name) {
            return Verdict::Clean;
        }
        // Does the binding land in a struct field whose type is ordered?
        let (_, close) = item.body;
        for u in from..close {
            let tok = &file.tokens[u];
            if tok.kind != TokenKind::Ident || tok.text != name {
                continue;
            }
            let prev = &file.tokens[u - 1];
            let next = file.tokens.get(u + 1);
            let shorthand = (prev.is_punct('{') || prev.is_punct(','))
                && next.is_some_and(|t| t.is_punct(',') || t.is_punct('}'));
            let named_value = prev.is_punct(':')
                && u >= 2
                && file.tokens[u - 2].kind == TokenKind::Ident;
            let field = if shorthand {
                Some(name.clone())
            } else if named_value {
                Some(file.tokens[u - 2].text.clone())
            } else {
                None
            };
            let Some(field) = field else { continue };
            let Some(struct_name) = self.literal_struct(file, u) else {
                continue;
            };
            if let Some(fields) = ctx.structs.get(&struct_name) {
                match fields.get(&field).map(|(k, _)| *k) {
                    Some(CollKind::Ordered) => return Verdict::Ordered,
                    Some(CollKind::Hash) | Some(CollKind::BTree) => return Verdict::Clean,
                    _ => {}
                }
            }
        }
        Verdict::Unknown
    }

    /// The `let` binding name and annotation of the statement containing
    /// token `i`, when it is a simple `let name [: Type] = ...`.
    fn let_binding(&self, file: &SourceFile, i: usize) -> (Option<String>, Option<CollKind>) {
        let s0 = super::stmt_start(file, i);
        if !file.tokens.get(s0).is_some_and(|t| t.is_ident("let")) {
            return (None, None);
        }
        let mut p = s0 + 1;
        if file.tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
            p += 1;
        }
        let name = match file.tokens.get(p) {
            Some(t) if t.kind == TokenKind::Ident && t.text != "_" => t.text.clone(),
            _ => return (None, None),
        };
        let annotation = if file.tokens.get(p + 1).is_some_and(|t| t.is_punct(':')) {
            let mut end = p + 2;
            let n = file.tokens.len();
            while end < n {
                let x = &file.tokens[end];
                if x.is_punct('=') || x.is_punct(';') {
                    break;
                }
                if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
                    end = file.close(end) + 1;
                    continue;
                }
                end += 1;
            }
            Some(crate::parser::classify_type(&file.tokens[p + 2..end]).0)
        } else {
            None
        };
        (Some(name), annotation)
    }

    /// True when `name.sort*(...)` appears in `[from, body end)`.
    fn sorted_later(
        &self,
        file: &SourceFile,
        item: &crate::parser::FnItem,
        from: usize,
        name: &str,
    ) -> bool {
        let (_, close) = item.body;
        for u in from..close {
            let tok = &file.tokens[u];
            if tok.kind == TokenKind::Ident
                && tok.text == name
                && file.tokens.get(u + 1).is_some_and(|t| t.is_punct('.'))
                && file
                    .tokens
                    .get(u + 2)
                    .is_some_and(|t| SORTS.contains(&t.text.as_str()))
            {
                return true;
            }
        }
        false
    }

    /// True when a closure/`for_each` body contains an ordered-output
    /// sink: a `push`/`push_str`/`extend`/`append` method call or a
    /// `write!`/`writeln!` macro.
    fn body_has_ordered_sink(&self, file: &SourceFile, open: usize, close: usize) -> bool {
        for b in open + 1..close {
            let tok = &file.tokens[b];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            // Formatting macros emit in iteration order: `write!` into a
            // buffer, and the print family straight onto an ordered
            // stream (stdout/stderr are the diff surface for the CLI's
            // deterministic-output contract).
            if matches!(
                tok.text.as_str(),
                "write" | "writeln" | "print" | "println" | "eprint" | "eprintln"
            ) && file.tokens.get(b + 1).is_some_and(|t| t.is_punct('!'))
            {
                return true;
            }
            if matches!(tok.text.as_str(), "push" | "push_str" | "append" | "extend")
                && b >= 1
                && file.tokens[b - 1].is_punct('.')
                && file.tokens.get(b + 1).is_some_and(|t| t.is_punct('('))
            {
                return true;
            }
        }
        false
    }

    /// The struct name of the literal whose braces directly enclose `u`.
    fn literal_struct(&self, file: &SourceFile, u: usize) -> Option<String> {
        let mut depth = 0i32;
        let mut j = u;
        while j > 0 {
            let tok = &file.tokens[j - 1];
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    ")" | "]" | "}" => depth += 1,
                    "(" | "[" => {
                        if depth == 0 {
                            return None;
                        }
                        depth -= 1;
                    }
                    "{" => {
                        if depth == 0 {
                            let before = file.tokens.get(j.checked_sub(2)?)?;
                            return (before.kind == TokenKind::Ident)
                                .then(|| before.text.clone());
                        }
                        depth -= 1;
                    }
                    _ => {}
                }
            }
            j -= 1;
        }
        None
    }

    fn check_for_loops(
        &self,
        file: &SourceFile,
        ctx: &Context,
        item: &crate::parser::FnItem,
        locals: &BTreeMap<String, CollKind>,
        impl_type: Option<&str>,
        out: &mut Vec<Diagnostic>,
    ) {
        let (open, close) = item.body;
        let mut i = open + 1;
        while i < close {
            let tok = &file.tokens[i];
            if !(tok.is_ident("for") && !file.in_test(i)) {
                i += 1;
                continue;
            }
            // Loop shape: `for PAT in EXPR {`; `impl Trait for Type` and
            // HRTBs never have `in` before their brace.
            let mut j = i + 1;
            let mut in_pos = None;
            while j < close {
                let t = &file.tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    j = file.close(j) + 1;
                    continue;
                }
                if t.is_punct('{') || t.is_punct(';') {
                    break;
                }
                if t.is_ident("in") {
                    in_pos = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_pos) = in_pos else {
                i += 1;
                continue;
            };
            // Find the loop body brace, skipping groups in the expr.
            let mut b = in_pos + 1;
            while b < close {
                let t = &file.tokens[b];
                if t.is_punct('(') || t.is_punct('[') {
                    b = file.close(b) + 1;
                    continue;
                }
                if t.is_punct('{') {
                    break;
                }
                b += 1;
            }
            if b >= close {
                i += 1;
                continue;
            }
            let expr = (in_pos + 1, b);
            let body = (b, file.close(b));
            if self.expr_is_hash(file, ctx, locals, impl_type, expr) {
                self.check_loop_body(file, ctx, item, locals, impl_type, tok.line, body, out);
            }
            i = b + 1;
        }
    }

    /// True when the `for ... in EXPR` iterates a hash collection
    /// directly (no conversion through a BTree or `collect`).
    fn expr_is_hash(
        &self,
        file: &SourceFile,
        ctx: &Context,
        locals: &BTreeMap<String, CollKind>,
        impl_type: Option<&str>,
        (start, end): (usize, usize),
    ) -> bool {
        let mut saw_hash = false;
        for k in start..end {
            let tok = &file.tokens[k];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            match tok.text.as_str() {
                "collect" | "BTreeMap" | "BTreeSet" => return false,
                _ => {}
            }
            if file.tokens.get(k + 1).is_some_and(|t| t.is_punct('(')) {
                continue; // a call, not a binding reference
            }
            if resolve_receiver(file, ctx, locals, impl_type, k) == Some(CollKind::Hash) {
                saw_hash = true;
            }
        }
        saw_hash
    }

    /// Scans a hash loop's body for ordered sinks; flags unless the sink
    /// is sorted after the loop.
    #[allow(clippy::too_many_arguments)]
    fn check_loop_body(
        &self,
        file: &SourceFile,
        ctx: &Context,
        item: &crate::parser::FnItem,
        locals: &BTreeMap<String, CollKind>,
        impl_type: Option<&str>,
        line: u32,
        (open, close): (usize, usize),
        out: &mut Vec<Diagnostic>,
    ) {
        for b in open + 1..close {
            let tok = &file.tokens[b];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            if (tok.text == "write" || tok.text == "writeln")
                && file.tokens.get(b + 1).is_some_and(|t| t.is_punct('!'))
            {
                out.push(self.diag(
                    file,
                    line,
                    "loop over a hash collection writes output in iteration order",
                ));
                return;
            }
            let is_sink_method = matches!(tok.text.as_str(), "push" | "push_str" | "append" | "extend")
                && b >= 2
                && file.tokens[b - 1].is_punct('.')
                && file.tokens.get(b + 1).is_some_and(|t| t.is_punct('('));
            if !is_sink_method {
                continue;
            }
            let target = b - 2;
            match resolve_receiver(file, ctx, locals, impl_type, target) {
                Some(CollKind::Hash) | Some(CollKind::BTree) => continue,
                _ => {}
            }
            let name = file.tokens[target].text.clone();
            if !self.sorted_later(file, item, close, &name) {
                out.push(self.diag(
                    file,
                    line,
                    "loop over a hash collection pushes into ordered storage without a sort",
                ));
                return;
            }
        }
    }

    fn diag(&self, file: &SourceFile, line: u32, detail: &str) -> Diagnostic {
        Diagnostic {
            rule: self.id(),
            path: file.rel_path.clone(),
            line,
            message: format!(
                "{detail}; HashMap/HashSet iteration order is nondeterministic — use a \
                 BTree collection or sort before emitting"
            ),
        }
    }
}

enum Verdict {
    Ordered,
    Clean,
    Unknown,
}
