//! **dropped-result**: `let _ = call(...)` and bare-statement discards
//! of calls that return `Result`.
//!
//! Whether a call "returns Result" is resolved two ways, both by name:
//! every non-test workspace `fn` whose declared return type mentions
//! `Result`, plus a built-in table of std methods that return `Result`
//! and are routinely (and wrongly) discarded — socket option setters,
//! writer flushes, filesystem operations, and the `write!`/`writeln!`
//! macros. A built-in name is shadowed when the workspace also defines
//! a *non*-Result fn of the same name (e.g. `WorkerPool::join` returns
//! `()`; flagging `pool.join();` on the strength of
//! `JoinHandle::join` would be a false positive). `JoinHandle::join`
//! itself is therefore not in the table: `join` is too overloaded to
//! resolve without types.
//!
//! A `let _ =` discard is an explicit decision; the rule only demands
//! the decision be written down. A trailing comment on the statement's
//! closing line counts as that justification and silences the finding —
//! the webre::allow discipline without the machinery. Bare-statement
//! discards get no such escape: they are almost always accidental.

use super::{Context, Rule};
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::SourceFile;

pub struct DroppedResult;

/// Std methods returning `Result` that show up as fire-and-forget calls.
const RESULT_BUILTINS: &[&str] = &[
    "flush",
    "write",
    "write_all",
    "write_fmt",
    "writeln",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "set_read_timeout",
    "set_write_timeout",
    "set_nodelay",
    "set_nonblocking",
    "set_len",
    "set_permissions",
    "send",
    "recv_timeout",
    "wait",
    "kill",
    "create_dir",
    "create_dir_all",
    "remove_dir",
    "remove_dir_all",
    "remove_file",
    "rename",
    "hard_link",
    "sync_all",
    "sync_data",
    "seek",
    "shutdown",
];

impl Rule for DroppedResult {
    fn id(&self) -> &'static str {
        "dropped-result"
    }

    fn description(&self) -> &'static str {
        "let _ = / bare-semicolon discard of a Result-returning call"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        // `let _ = expr;` discards anywhere in non-test code.
        let n = file.tokens.len();
        for i in 0..n {
            if file.in_test(i) || !file.tokens[i].is_ident("let") {
                continue;
            }
            let underscore = file.tokens.get(i + 1).is_some_and(|t| t.is_ident("_"));
            let assigned = file.tokens.get(i + 2).is_some_and(|t| t.is_punct('='));
            if !(underscore && assigned) {
                continue;
            }
            let end = expr_end(file, i + 3);
            // `let _ =` is an explicit decision to discard; the rule only
            // asks that the decision be written down. A trailing comment
            // on the statement's closing line is that justification —
            // the webre::allow discipline without the machinery.
            let term_line = file.tokens.get(end).map_or(file.tokens[i].line, |t| t.line);
            if file.comments.iter().any(|c| c.line == term_line) {
                continue;
            }
            if let Some(callee) = head_callee(file, i + 3, end) {
                if flags(ctx, &callee) {
                    out.push(Diagnostic {
                        rule: self.id(),
                        path: file.rel_path.clone(),
                        line: file.tokens[i].line,
                        message: format!(
                            "`let _ =` discards the `Result` of `{callee}`; handle the \
                             error or justify the discard with a trailing comment"
                        ),
                    });
                }
            }
        }
        // Bare-statement discards: `conn.flush();`
        for f in &file.fns {
            if f.is_test || file.in_test(f.body.0) {
                continue;
            }
            self.check_body(file, ctx, f.body, out);
        }
    }
}

impl DroppedResult {
    fn check_body(
        &self,
        file: &SourceFile,
        ctx: &Context,
        body: (usize, usize),
        out: &mut Vec<Diagnostic>,
    ) {
        let (open, close) = body;
        let mut start = open + 1;
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut j = open + 1;
        while j < close {
            let tok = &file.tokens[j];
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" | "}" if paren == 0 && bracket == 0 => start = j + 1,
                    ";" if paren == 0 && bracket == 0 => {
                        self.check_stmt(file, ctx, start, j, out);
                        start = j + 1;
                    }
                    _ => {}
                }
            }
            j += 1;
        }
    }

    fn check_stmt(
        &self,
        file: &SourceFile,
        ctx: &Context,
        start: usize,
        end: usize,
        out: &mut Vec<Diagnostic>,
    ) {
        if end <= start || !file.tokens[end - 1].is_punct(')') {
            return;
        }
        let first = &file.tokens[start];
        if first.kind == TokenKind::Ident
            && matches!(
                first.text.as_str(),
                "let" | "return" | "break" | "continue" | "use" | "const" | "static" | "type"
                    | "fn" | "struct" | "enum" | "impl" | "mod" | "macro_rules" | "extern"
            )
        {
            return;
        }
        // Any `=` at statement level means the value is used somewhere
        // (assignment or compound assignment); bare comparisons as
        // statements do not occur in practice, so this stays simple and
        // degrades toward silence.
        let mut depth = 0i32;
        for k in start..end {
            let tok = &file.tokens[k];
            if tok.kind == TokenKind::Punct {
                match tok.text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=" if depth == 0 => return,
                    _ => {}
                }
            }
        }
        if let Some(callee) = head_callee(file, start, end) {
            if flags(ctx, &callee) {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: first.line,
                    message: format!(
                        "statement discards the `Result` of `{callee}`; handle the \
                         error, `?`-propagate it, or justify with a webre::allow comment"
                    ),
                });
            }
        }
    }
}

/// True when discarding `callee`'s return value should be flagged.
fn flags(ctx: &Context, callee: &str) -> bool {
    // `.expect()`/`.unwrap()` have already consumed the Result — the
    // error path is a panic, not a silent drop. (Workspace parsers also
    // define Result-returning fns named `expect`, so check this first.)
    if matches!(callee, "expect" | "unwrap" | "expect_err" | "unwrap_err") {
        return false;
    }
    if ctx.result_fns.contains(callee) {
        // A workspace non-Result fn with the same name makes the callee
        // ambiguous without type resolution — degrade to silence.
        return !ctx.nonresult_fns.contains(callee);
    }
    RESULT_BUILTINS.contains(&callee) && !ctx.nonresult_fns.contains(callee)
}

/// Forward scan to the `;` (or enclosing close) terminating the
/// expression starting at `from`.
fn expr_end(file: &SourceFile, from: usize) -> usize {
    super::stmt_end(file, from)
}

/// The last call made at the top level of `[start, end)` — the method
/// that produced the statement's final value. `foo(bar(x)).baz(y)`
/// yields `baz`; `writeln!(w, "x")` yields `writeln`.
fn head_callee(file: &SourceFile, start: usize, end: usize) -> Option<String> {
    let mut callee: Option<String> = None;
    let mut j = start;
    while j < end.min(file.tokens.len()) {
        let tok = &file.tokens[j];
        if tok.kind == TokenKind::Punct && (tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{'))
        {
            // A call at top level: remember the ident (or macro) before it.
            if tok.is_punct('(') && j > start {
                let prev = &file.tokens[j - 1];
                if prev.kind == TokenKind::Ident {
                    callee = Some(prev.text.clone());
                } else if prev.is_punct('!') && j >= 2 {
                    let name = &file.tokens[j - 2];
                    if name.kind == TokenKind::Ident {
                        callee = Some(name.text.clone());
                    }
                }
            }
            j = file.close(j) + 1;
            continue;
        }
        j += 1;
    }
    callee
}
