//! `unjoined-thread`: a spawned `JoinHandle` must be joined (or at
//! least handed off) on every path.
//!
//! A handle silently dropped detaches the thread: panics vanish,
//! shutdown races the detached work, and `verify.sh`-style gates see a
//! clean exit while a worker is still mutating the corpus. The rule is
//! a forward **must**-analysis over the CFG: a fact is a spawned
//! binding not yet mentioned again; merge is intersection, so a handle
//! joined on *some* path but forgotten on another is still reported
//! ("never joined on any path" means the fact survives to exit on at
//! least every merged path). Any later mention of the binding —
//! `h.join()`, `handles.push(h)`, returning it, storing it in a struct
//! — kills the fact: ambiguity about *how* the handle is consumed
//! degrades to silence. `Try` edges carry the input fact, because a
//! `spawn(...)?` statement that exits early never produced a handle.

use super::{stmt_end, stmt_start, Context, Rule};
use crate::cfg::{Cfg, EdgeKind};
use crate::dataflow::{solve, Analysis, Direction};
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::{FnItem, SourceFile};
use std::collections::BTreeMap;

pub struct UnjoinedThread;

impl Rule for UnjoinedThread {
    fn id(&self) -> &'static str {
        "unjoined-thread"
    }

    fn description(&self) -> &'static str {
        "spawned threads are joined or handed off on every path (CFG must-analysis)"
    }

    fn check_file(&self, file: &SourceFile, _ctx: &Context, out: &mut Vec<Diagnostic>) {
        for item in &file.fns {
            if item.is_test || file.in_test(item.body.0) {
                continue;
            }
            let spawns = spawn_bindings(file, item);
            if spawns.is_empty() {
                continue;
            }
            let cfg = Cfg::build(file, item);
            let analysis = Unjoined {
                file,
                spawns: &spawns,
            };
            let solution = solve(&cfg, &analysis);
            let Some(leaked) = &solution.input[cfg.exit] else {
                continue; // exit unreachable (infinite serve loop)
            };
            for (name, &(line, _)) in leaked {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line,
                    message: format!(
                        "thread handle `{name}` spawned here is never joined (or \
                         otherwise consumed) on any path; join it, store it, or \
                         detach explicitly"
                    ),
                });
            }
        }
    }
}

/// One `let h = ...spawn(...)...;` binding: name → (line, name token).
fn spawn_bindings(file: &SourceFile, item: &FnItem) -> BTreeMap<String, (u32, usize)> {
    let mut out = BTreeMap::new();
    let (open, close) = item.body;
    let mut i = open + 1;
    while i < close {
        let tok = &file.tokens[i];
        if tok.is_ident("let") {
            let mut p = i + 1;
            if file.tokens.get(p).is_some_and(|t| t.is_ident("mut")) {
                p += 1;
            }
            if let Some(name) = file.tokens.get(p) {
                if name.kind == TokenKind::Ident && name.text != "_" {
                    let end = stmt_end(file, p).min(close);
                    let rhs = &file.tokens[p..end];
                    let spawns = rhs.windows(2).any(|w| {
                        w[0].is_ident("spawn") && w[1].is_punct('(')
                    });
                    // Require the thread API to be visible in the
                    // statement so `Command::new(..).spawn()` (a child
                    // process, reaped via its own handle) stays silent.
                    let thread_api = rhs
                        .iter()
                        .any(|t| t.is_ident("thread") || t.is_ident("Builder"));
                    if spawns && thread_api {
                        out.insert(name.text.clone(), (name.line, p));
                    }
                }
            }
        }
        i += 1;
    }
    out
}

/// Fact: `None` = unreachable ⊤; `Some(map)` = bindings spawned but not
/// yet consumed on *every* path reaching this point.
struct Unjoined<'a> {
    file: &'a SourceFile,
    spawns: &'a BTreeMap<String, (u32, usize)>,
}

type Fact = Option<BTreeMap<String, (u32, usize)>>;

impl Analysis for Unjoined<'_> {
    type Fact = Fact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Fact {
        Some(BTreeMap::new())
    }

    fn init(&self) -> Fact {
        None
    }

    fn merge(&self, into: &mut Fact, from: &Fact) {
        match (into.as_mut(), from) {
            (_, None) => {}
            (None, Some(_)) => *into = from.clone(),
            (Some(a), Some(b)) => a.retain(|k, _| b.contains_key(k)),
        }
    }

    fn transfer(&self, cfg: &Cfg, node: usize, fact: &Fact) -> Fact {
        let Some(fact) = fact else { return None };
        let mut out = fact.clone();
        let (lo, hi) = cfg.nodes[node].span;
        let hi = hi.min(self.file.tokens.len());
        for i in lo..hi {
            let tok = &self.file.tokens[i];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            if let Some(&(line, name_tok)) = self.spawns.get(&tok.text) {
                if i == name_tok {
                    // The binding itself: the handle is born here.
                    out.insert(tok.text.clone(), (line, name_tok));
                } else if stmt_start(self.file, i) != stmt_start(self.file, name_tok) {
                    // Any later mention — join, push, move, return —
                    // consumes or hands off the handle.
                    out.remove(&tok.text);
                }
            }
        }
        Some(out)
    }

    fn edge(
        &self,
        _cfg: &Cfg,
        _from: usize,
        _to: usize,
        kind: EdgeKind,
        infact: &Fact,
        outfact: &Fact,
    ) -> Fact {
        if kind == EdgeKind::Try {
            // `let h = spawn(...)?;` failing never bound the handle.
            infact.clone()
        } else {
            outfact.clone()
        }
    }
}
