//! **panic-in-hot-path**: `unwrap`/`expect`/`panic!`-family calls and
//! panic-prone indexing in the serve worker/handler path and the HTTP
//! codec.
//!
//! The serving layer's contract is that a request can never take down a
//! worker: panics inside `handle` are caught and answered `500`, and
//! everything *around* the `catch_unwind` (connection setup, codec,
//! acceptor) must simply not panic. This rule polices that region. The
//! indexing check is intentionally narrow — a literal index (`buf[0]`)
//! or index arithmetic (`buf[i + 1]`) — because those are the shapes
//! that go out of bounds in practice; plain `slots[i]` over an
//! invariant-maintained arena is the dominant false-positive source and
//! is left to code review.
//!
//! Indexing findings are flow-sensitive: a **must**-analysis over the
//! function's CFG tracks dominating bound checks, genned on the `Then`
//! edge of `idx < container.len()` (strict `<` only — `<=` does not
//! exclude `len` itself) and killed when any identifier in the check is
//! reassigned. `buf[i + 1]` under a dominating `i + 1 < buf.len()`
//! stays silent; the same expression on a path that skips the check is
//! reported.

use super::{in_scope, Context, Rule};
use crate::cfg::{Cfg, EdgeKind, NodeKind};
use crate::dataflow::{solve, Analysis, Direction};
use crate::diagnostics::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::parser::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

pub struct PanicPath;

/// The request-serving region: every worker/handler file plus the codec.
const HOT_PREFIXES: &[&str] = &["crates/serve/src", "crates/substrate/src/http.rs"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

impl Rule for PanicPath {
    fn id(&self) -> &'static str {
        "panic-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/unguarded prone indexing in serve worker or HTTP codec code"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, ctx, HOT_PREFIXES) {
            return;
        }
        let checked = checked_index_facts(file);
        let mut push = |line: u32, message: String| {
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line,
                message,
            });
        };
        for (i, tok) in file.tokens.iter().enumerate() {
            if file.in_test(i) {
                continue;
            }
            if tok.kind == TokenKind::Ident {
                let after_dot = i > 0 && file.tokens[i - 1].is_punct('.');
                let called = file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
                if after_dot && called && (tok.text == "unwrap" || tok.text == "expect") {
                    push(
                        tok.line,
                        format!(
                            "`.{}()` can panic in the serve hot path; map the failure \
                             to a degraded response (the 429/500 model) or propagate it",
                            tok.text
                        ),
                    );
                    continue;
                }
                let is_macro = file.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && !after_dot
                    && PANIC_MACROS.contains(&tok.text.as_str());
                if is_macro {
                    push(
                        tok.line,
                        format!(
                            "`{}!` aborts the worker thread in the serve hot path; \
                             return an error response instead",
                            tok.text
                        ),
                    );
                }
                continue;
            }
            // Panic-prone indexing: `expr[0]` or `expr[i + 1]`-style.
            if tok.is_punct('[') && i > 0 {
                let prev = &file.tokens[i - 1];
                let indexable = prev.kind == TokenKind::Ident && !is_keyword(&prev.text)
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if !indexable {
                    continue;
                }
                let close = file.close(i);
                let inner = &file.tokens[i + 1..close];
                if inner.is_empty() {
                    continue;
                }
                let literal_index =
                    inner.len() == 1 && inner[0].kind == TokenKind::Literal;
                let has_range = inner.windows(2).any(|w| w[0].is_punct('.') && w[1].is_punct('.'));
                let has_mod = inner.iter().any(|t| t.is_punct('%'));
                let has_arith = inner.iter().any(|t| t.is_punct('+') || t.is_punct('-'));
                if literal_index || (has_arith && !has_range && !has_mod) {
                    // A dominating `idx < container.len()` proves the
                    // access in bounds on every path reaching it.
                    if prev.kind == TokenKind::Ident {
                        let fact = (norm(inner), prev.text.clone());
                        if checked.get(&i).is_some_and(|facts| facts.contains(&fact)) {
                            continue;
                        }
                    }
                    push(
                        tok.line,
                        "index expression can go out of bounds and panic the worker; \
                         use `.get()` and degrade on `None`"
                            .to_owned(),
                    );
                }
            }
        }
    }
}

/// Identifiers that precede `[` without being an indexed expression.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "in" | "return" | "break" | "match" | "if" | "else" | "mut" | "let" | "const" | "static"
    )
}

/// Canonical text of an index expression: token texts joined by spaces.
fn norm(tokens: &[Token]) -> String {
    tokens
        .iter()
        .map(|t| t.text.as_str())
        .collect::<Vec<_>>()
        .join(" ")
}

/// For every `[` token inside a non-test fn: the set of
/// `(index-expr, container)` bound checks that must hold there.
fn checked_index_facts(file: &SourceFile) -> BTreeMap<usize, BTreeSet<(String, String)>> {
    let mut out = BTreeMap::new();
    let n = file.tokens.len();
    for item in &file.fns {
        if item.is_test || file.in_test(item.body.0) {
            continue;
        }
        let cfg = Cfg::build(file, item);
        let solution = solve(&cfg, &Bounds { file });
        for node in cfg.indices() {
            let Some(facts) = &solution.input[node] else {
                continue;
            };
            if facts.is_empty() {
                continue;
            }
            let (lo, hi) = cfg.nodes[node].span;
            for i in lo..hi.min(n) {
                if file.tokens[i].is_punct('[') {
                    out.insert(i, facts.clone());
                }
            }
        }
    }
    out
}

/// Must-analysis of bound-check facts. `None` = unreachable ⊤.
struct Bounds<'a> {
    file: &'a SourceFile,
}

type BoundFact = Option<BTreeSet<(String, String)>>;

impl Analysis for Bounds<'_> {
    type Fact = BoundFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> BoundFact {
        Some(BTreeSet::new())
    }

    fn init(&self) -> BoundFact {
        None
    }

    fn merge(&self, into: &mut BoundFact, from: &BoundFact) {
        match (into.as_mut(), from) {
            (_, None) => {}
            (None, Some(_)) => *into = from.clone(),
            (Some(a), Some(b)) => a.retain(|f| b.contains(f)),
        }
    }

    fn transfer(&self, cfg: &Cfg, node: usize, fact: &BoundFact) -> BoundFact {
        let Some(fact) = fact else { return None };
        let mut out = fact.clone();
        let (lo, hi) = cfg.nodes[node].span;
        let hi = hi.min(self.file.tokens.len());
        // Reassignment of any identifier in a fact invalidates it:
        // `x = ...`, `x += ...`.
        for i in lo..hi {
            let tok = &self.file.tokens[i];
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let assigned = match self.file.tokens.get(i + 1) {
                Some(next) if next.is_punct('=') => {
                    !self.file.tokens.get(i + 2).is_some_and(|t| t.is_punct('='))
                        && !(i > 0
                            && matches!(
                                self.file.tokens[i - 1].text.as_str(),
                                "=" | "<" | ">" | "!"
                            ))
                }
                Some(next)
                    if (next.is_punct('+')
                        || next.is_punct('-')
                        || next.is_punct('*')
                        || next.is_punct('/'))
                        && self.file.tokens.get(i + 2).is_some_and(|t| t.is_punct('=')) =>
                {
                    true
                }
                _ => false,
            };
            if assigned {
                let name = tok.text.as_str();
                out.retain(|(expr, container)| {
                    container != name && !expr.split(' ').any(|w| w == name)
                });
            }
        }
        Some(out)
    }

    fn edge(
        &self,
        cfg: &Cfg,
        from: usize,
        _to: usize,
        kind: EdgeKind,
        infact: &BoundFact,
        outfact: &BoundFact,
    ) -> BoundFact {
        if kind == EdgeKind::Try {
            return infact.clone();
        }
        let mut fact = outfact.clone();
        if kind == EdgeKind::Then && cfg.nodes[from].kind == NodeKind::Cond {
            if let Some(facts) = fact.as_mut() {
                let (lo, hi) = cfg.nodes[from].span;
                for gen in cond_checks(self.file, lo, hi.min(self.file.tokens.len())) {
                    facts.insert(gen);
                }
            }
        }
        fact
    }
}

/// Bound checks provable from a condition span: `expr < c.len()` and
/// `c.len() > expr` (strict comparisons only — `<=` admits `len`
/// itself). Each `&&`-separated segment is scanned independently.
fn cond_checks(file: &SourceFile, lo: usize, hi: usize) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for j in lo..hi {
        let tok = &file.tokens[j];
        // `expr < c . len ( )`
        if tok.is_punct('<')
            && !file.tokens.get(j + 1).is_some_and(|t| t.is_punct('='))
            && file.tokens.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
            && file.tokens.get(j + 2).is_some_and(|t| t.is_punct('.'))
            && file.tokens.get(j + 3).is_some_and(|t| t.is_ident("len"))
            && file.tokens.get(j + 4).is_some_and(|t| t.is_punct('('))
            && file.tokens.get(j + 5).is_some_and(|t| t.is_punct(')'))
        {
            let start = segment_start(file, lo, j);
            if start < j {
                out.push((
                    norm(&file.tokens[start..j]),
                    file.tokens[j + 1].text.clone(),
                ));
            }
        }
        // `c . len ( ) > expr`
        if tok.kind == TokenKind::Ident
            && file.tokens.get(j + 1).is_some_and(|t| t.is_punct('.'))
            && file.tokens.get(j + 2).is_some_and(|t| t.is_ident("len"))
            && file.tokens.get(j + 3).is_some_and(|t| t.is_punct('('))
            && file.tokens.get(j + 4).is_some_and(|t| t.is_punct(')'))
            && file.tokens.get(j + 5).is_some_and(|t| t.is_punct('>'))
            && !file.tokens.get(j + 6).is_some_and(|t| t.is_punct('='))
        {
            let end = segment_end(file, j + 6, hi);
            if j + 6 < end {
                out.push((norm(&file.tokens[j + 6..end]), tok.text.clone()));
            }
        }
    }
    out
}

/// Start of the `&&`-separated segment containing `j`. The node span
/// includes the `if`/`while` keyword itself, so keywords bound the
/// segment too.
fn segment_start(file: &SourceFile, lo: usize, j: usize) -> usize {
    let mut k = j;
    while k > lo {
        let t = &file.tokens[k - 1];
        if t.is_punct('&') || t.is_punct('|') || t.is_punct('(') || t.is_punct('{') {
            break;
        }
        if t.kind == TokenKind::Ident && matches!(t.text.as_str(), "if" | "while" | "else" | "let")
        {
            break;
        }
        k -= 1;
    }
    k
}

/// End of the `&&`-separated segment starting at `j`.
fn segment_end(file: &SourceFile, j: usize, hi: usize) -> usize {
    let mut k = j;
    while k < hi {
        let t = &file.tokens[k];
        if t.is_punct('&') || t.is_punct('|') || t.is_punct('{') || t.is_punct(')') {
            break;
        }
        k += 1;
    }
    k
}
