//! **panic-in-hot-path**: `unwrap`/`expect`/`panic!`-family calls and
//! panic-prone indexing in the serve worker/handler path and the HTTP
//! codec.
//!
//! The serving layer's contract is that a request can never take down a
//! worker: panics inside `handle` are caught and answered `500`, and
//! everything *around* the `catch_unwind` (connection setup, codec,
//! acceptor) must simply not panic. This rule polices that region. The
//! indexing check is intentionally narrow — a literal index (`buf[0]`)
//! or index arithmetic (`buf[i + 1]`) — because those are the shapes
//! that go out of bounds in practice; plain `slots[i]` over an
//! invariant-maintained arena is the dominant false-positive source and
//! is left to code review.

use super::{in_scope, Context, Rule};
use crate::diagnostics::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::SourceFile;

pub struct PanicPath;

/// The request-serving region: every worker/handler file plus the codec.
const HOT_PREFIXES: &[&str] = &["crates/serve/src", "crates/substrate/src/http.rs"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

impl Rule for PanicPath {
    fn id(&self) -> &'static str {
        "panic-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic!/prone indexing in serve worker or HTTP codec code"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, ctx, HOT_PREFIXES) {
            return;
        }
        let mut push = |line: u32, message: String| {
            out.push(Diagnostic {
                rule: self.id(),
                path: file.rel_path.clone(),
                line,
                message,
            });
        };
        for (i, tok) in file.tokens.iter().enumerate() {
            if file.in_test(i) {
                continue;
            }
            if tok.kind == TokenKind::Ident {
                let after_dot = i > 0 && file.tokens[i - 1].is_punct('.');
                let called = file.tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
                if after_dot && called && (tok.text == "unwrap" || tok.text == "expect") {
                    push(
                        tok.line,
                        format!(
                            "`.{}()` can panic in the serve hot path; map the failure \
                             to a degraded response (the 429/500 model) or propagate it",
                            tok.text
                        ),
                    );
                    continue;
                }
                let is_macro = file.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
                    && !after_dot
                    && PANIC_MACROS.contains(&tok.text.as_str());
                if is_macro {
                    push(
                        tok.line,
                        format!(
                            "`{}!` aborts the worker thread in the serve hot path; \
                             return an error response instead",
                            tok.text
                        ),
                    );
                }
                continue;
            }
            // Panic-prone indexing: `expr[0]` or `expr[i + 1]`-style.
            if tok.is_punct('[') && i > 0 {
                let prev = &file.tokens[i - 1];
                let indexable = prev.kind == TokenKind::Ident && !is_keyword(&prev.text)
                    || prev.is_punct(')')
                    || prev.is_punct(']');
                if !indexable {
                    continue;
                }
                let close = file.close(i);
                let inner = &file.tokens[i + 1..close];
                if inner.is_empty() {
                    continue;
                }
                let literal_index =
                    inner.len() == 1 && inner[0].kind == TokenKind::Literal;
                let has_range = inner.windows(2).any(|w| w[0].is_punct('.') && w[1].is_punct('.'));
                let has_mod = inner.iter().any(|t| t.is_punct('%'));
                let has_arith = inner.iter().any(|t| t.is_punct('+') || t.is_punct('-'));
                if literal_index || (has_arith && !has_range && !has_mod) {
                    push(
                        tok.line,
                        "index expression can go out of bounds and panic the worker; \
                         use `.get()` and degrade on `None`"
                            .to_owned(),
                    );
                }
            }
        }
    }
}

/// Identifiers that precede `[` without being an indexed expression.
fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "in" | "return" | "break" | "match" | "if" | "else" | "mut" | "let" | "const" | "static"
    )
}
