//! **no-wall-clock**: `SystemTime`/`Instant`/environment reads in the
//! pure pipeline crates.
//!
//! The differential oracles in `crates/check` (parse/serialize
//! fixpoint, parallel ≡ sequential, serve ≡ batch) all assume the
//! pipeline is a pure function of its input. A clock or environment
//! read anywhere in `html`/`xml`/`tree`/`text`/`convert`/`schema`/
//! `concepts`/`map` silently breaks that contract in ways the fuzzer
//! can only find probabilistically; this rule rejects the call sites
//! outright. The serving and bench layers read clocks on purpose and
//! are out of scope.

use super::{in_scope, Context, Rule};
use crate::diagnostics::Diagnostic;
use crate::parser::SourceFile;

pub struct WallClock;

/// The crates whose code must stay a pure function of its input.
const PURE_PREFIXES: &[&str] = &[
    "crates/html/src",
    "crates/xml/src",
    "crates/tree/src",
    "crates/text/src",
    "crates/convert/src",
    "crates/schema/src",
    "crates/concepts/src",
    "crates/map/src",
    "crates/obs/src",
];

/// `std::env` entry points that make output environment-dependent.
const ENV_READS: &[&str] = &["var", "var_os", "vars", "vars_os", "args", "args_os", "current_dir"];

impl Rule for WallClock {
    fn id(&self) -> &'static str {
        "no-wall-clock"
    }

    fn description(&self) -> &'static str {
        "SystemTime/Instant/env access in a pure pipeline crate"
    }

    fn check_file(&self, file: &SourceFile, ctx: &Context, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, ctx, PURE_PREFIXES) {
            return;
        }
        for (i, tok) in file.tokens.iter().enumerate() {
            if tok.kind != crate::lexer::TokenKind::Ident || file.in_test(i) {
                continue;
            }
            let flagged = match tok.text.as_str() {
                "SystemTime" | "Instant" => Some(format!(
                    "`{}` in a pure pipeline crate makes output time-dependent; \
                     pass timings in from the caller instead",
                    tok.text
                )),
                // `thread::sleep` in a pure crate is both a hidden clock
                // dependence and a sign pipeline code is waiting on
                // something — neither belongs in a pure function.
                "sleep" => {
                    let qualified = i >= 3
                        && file.tokens[i - 1].is_punct(':')
                        && file.tokens[i - 2].is_punct(':')
                        && file.tokens[i - 3].is_ident("thread");
                    (qualified && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('(')))
                        .then(|| {
                            "`thread::sleep` in a pure pipeline crate hides a timing \
                             dependence; pure code must not wait"
                                .to_owned()
                        })
                }
                "env" => {
                    // `env::var(...)` etc. — require the `::reader` shape so
                    // a local named `env` does not trip the rule.
                    let is_read = file.tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && file.tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
                        && file
                            .tokens
                            .get(i + 3)
                            .is_some_and(|t| ENV_READS.contains(&t.text.as_str()));
                    is_read.then(|| {
                        format!(
                            "`env::{}` in a pure pipeline crate makes output \
                             environment-dependent",
                            file.tokens[i + 3].text
                        )
                    })
                }
                _ => None,
            };
            if let Some(message) = flagged {
                out.push(Diagnostic {
                    rule: self.id(),
                    path: file.rel_path.clone(),
                    line: tok.line,
                    message,
                });
            }
        }
    }
}
