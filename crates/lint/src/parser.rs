//! Item-level parsing on top of the lexer: just enough structure for
//! the rules.
//!
//! A [`SourceFile`] knows, for one `.rs` file:
//! - every `use`/`extern crate` root segment (for **std-only**);
//! - every `fn` with its body token range, enclosing `impl` type, and
//!   whether its return type mentions `Result` (for **dropped-result**);
//! - every `struct` with its named fields classified by collection kind
//!   (for **nondet-iter** receiver resolution and **lock-order** lock
//!   discovery);
//! - which token ranges are test code (`#[cfg(test)]` modules and
//!   `#[test]` functions), so rules can skip them — `unwrap` in a test
//!   is idiomatic, not a finding.
//!
//! The parser is deliberately approximate — it tracks delimiter
//! matching exactly (the lexer guarantees literals cannot unbalance it)
//! but resolves types by name, not by trait solving. The rules are
//! calibrated against that: ambiguity always degrades toward *not*
//! flagging, so the pass stays quiet instead of noisy.

use crate::lexer::{lex, Comment, Token, TokenKind};

/// How a type participates in ordering, as far as the rules care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollKind {
    /// `HashMap`/`HashSet`: iteration order is nondeterministic.
    Hash,
    /// `BTreeMap`/`BTreeSet`: iteration order is sorted, deterministic.
    BTree,
    /// `Vec`/`VecDeque`/`String`: an ordered sink — what leaks
    /// nondeterminism when fed from a hash iteration.
    Ordered,
    /// Anything else.
    Other,
}

/// Which lock primitive a field/binding holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
}

/// One `use`/`extern crate` declaration, reduced to its root segment.
#[derive(Clone, Debug)]
pub struct UseDecl {
    /// First path segment: `std` in `use std::collections::HashMap`.
    pub root: String,
    pub line: u32,
    /// Token index of the `use`/`extern` keyword.
    pub token: usize,
}

/// A named struct field with its classified type.
#[derive(Clone, Debug)]
pub struct Field {
    pub name: String,
    pub kind: CollKind,
    pub lock: Option<LockKind>,
}

/// A struct definition with named fields (tuple/unit structs have none).
#[derive(Clone, Debug)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<Field>,
}

/// One function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Token index of the `fn` keyword (parameter-list scanning).
    pub token: usize,
    pub name: String,
    /// Enclosing `impl` type name, when inside an impl block.
    pub impl_type: Option<String>,
    /// Token range of the body: `(open_brace, close_brace)` inclusive.
    pub body: (usize, usize),
    /// The declared return type mentions `Result`.
    pub returns_result: bool,
    /// The declared return type mentions a guard type (any identifier
    /// containing `Guard`, e.g. `MutexGuard`, `RwLockReadGuard`) — used
    /// by the call graph to treat `self.read()`-style lock helpers as
    /// acquisitions at their call sites.
    pub returns_guard: bool,
    /// Inside `#[cfg(test)]` or carrying `#[test]`.
    pub is_test: bool,
    pub line: u32,
}

/// A fully parsed source file, ready for rule passes.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (display + scoping).
    pub rel_path: String,
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// For each opening delimiter token, the index of its match.
    match_close: Vec<Option<usize>>,
    /// Token ranges `[start, end]` that are test-only code.
    pub test_ranges: Vec<(usize, usize)>,
    pub uses: Vec<UseDecl>,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructDef>,
    /// Names of modules declared in this file (`mod x;` / `mod x {`),
    /// so `use x::...` of a sibling module is not mistaken for an
    /// external crate.
    pub mods: std::collections::BTreeSet<String>,
}

impl SourceFile {
    /// Lexes and parses `source`.
    pub fn parse(rel_path: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let match_close = delimiter_matches(&lexed.tokens);
        let mut file = SourceFile {
            rel_path: rel_path.to_owned(),
            tokens: lexed.tokens,
            comments: lexed.comments,
            match_close,
            test_ranges: Vec::new(),
            uses: Vec::new(),
            fns: Vec::new(),
            structs: Vec::new(),
            mods: std::collections::BTreeSet::new(),
        };
        file.scan_items();
        file
    }

    /// The matching close index for an opening delimiter, or the end of
    /// the token stream when unbalanced (total on malformed input).
    pub fn close(&self, open: usize) -> usize {
        self.match_close
            .get(open)
            .copied()
            .flatten()
            .unwrap_or(self.tokens.len().saturating_sub(1))
    }

    /// True when token index `idx` lies in test-only code.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| idx >= start && idx <= end)
    }

    fn scan_items(&mut self) {
        let n = self.tokens.len();
        // (impl type name, body close index) for enclosing-impl lookup.
        let mut impls: Vec<(String, usize, usize)> = Vec::new();
        let mut t = 0usize;
        while t < n {
            let tok = &self.tokens[t];
            if tok.kind != TokenKind::Ident {
                t += 1;
                continue;
            }
            match tok.text.as_str() {
                "use" if !self.prev_is_dot(t) => {
                    if let Some(decl) = self.parse_use(t) {
                        self.uses.push(decl);
                    }
                    t = self.skip_to_semicolon(t);
                }
                "extern" if self.tokens.get(t + 1).is_some_and(|k| k.is_ident("crate")) => {
                    if let Some(root) = self.tokens.get(t + 2) {
                        self.uses.push(UseDecl {
                            root: root.text.clone(),
                            line: tok.line,
                            token: t,
                        });
                    }
                    t = self.skip_to_semicolon(t);
                }
                "mod" => {
                    if let Some(name) = self.tokens.get(t + 1) {
                        if name.kind == TokenKind::Ident {
                            self.mods.insert(name.text.clone());
                        }
                    }
                    // `mod name { ... }` under #[cfg(test)] marks a test range.
                    let open = (t..n.min(t + 4)).find(|&j| self.tokens[j].is_punct('{'));
                    if let Some(open) = open {
                        if self.attrs_before(t).iter().any(|a| a == "cfg(test)") {
                            self.test_ranges.push((open, self.close(open)));
                        }
                    }
                    t += 1;
                }
                "fn" => {
                    if let Some(item) = self.parse_fn(t) {
                        let end = item.body.1;
                        self.fns.push(item);
                        // Do not skip the body: nested fns/closures are rare
                        // but harmless to rescan for items.
                        let _ = end;
                    }
                    t += 1;
                }
                "struct" => {
                    if let Some(def) = self.parse_struct(t) {
                        self.structs.push(def);
                    }
                    t += 1;
                }
                "impl" => {
                    if let Some((name, open)) = self.parse_impl_header(t) {
                        impls.push((name, open, self.close(open)));
                    }
                    t += 1;
                }
                _ => t += 1,
            }
        }
        // Resolve enclosing impl types by containment (innermost wins;
        // impls do not nest in practice, so first match is fine).
        for item in &mut self.fns {
            item.impl_type = impls
                .iter()
                .find(|&&(_, open, close)| item.body.0 > open && item.body.1 <= close)
                .map(|(name, _, _)| name.clone());
        }
        // A fn whose body lies inside a #[cfg(test)] mod is test code.
        let ranges = self.test_ranges.clone();
        for item in &mut self.fns {
            if ranges
                .iter()
                .any(|&(start, end)| item.body.0 >= start && item.body.1 <= end)
            {
                item.is_test = true;
            }
        }
    }

    fn prev_is_dot(&self, t: usize) -> bool {
        t > 0 && self.tokens[t - 1].is_punct('.')
    }

    fn skip_to_semicolon(&self, mut t: usize) -> usize {
        let n = self.tokens.len();
        while t < n && !self.tokens[t].is_punct(';') {
            if self.tokens[t].is_punct('{') {
                return self.close(t) + 1;
            }
            t += 1;
        }
        t + 1
    }

    fn parse_use(&self, t: usize) -> Option<UseDecl> {
        let mut j = t + 1;
        // Skip a leading `::` (`use ::std::...`).
        while self.tokens.get(j).is_some_and(|k| k.is_punct(':')) {
            j += 1;
        }
        let root = self.tokens.get(j)?;
        if root.kind != TokenKind::Ident {
            return None;
        }
        Some(UseDecl {
            root: root.text.clone(),
            line: self.tokens[t].line,
            token: t,
        })
    }

    /// Attributes textually attached before item keyword at `t`, e.g.
    /// `["cfg(test)", "test"]`. Walks backward over `#[...]` groups and
    /// visibility/qualifier keywords.
    fn attrs_before(&self, t: usize) -> Vec<String> {
        let mut attrs = Vec::new();
        let mut j = t;
        loop {
            // Skip qualifiers between attrs and the keyword.
            while j > 0
                && matches!(
                    self.tokens[j - 1].text.as_str(),
                    "pub" | "unsafe" | "const" | "async" | "extern" | "crate" | "in" | "super" | "self"
                )
            {
                j -= 1;
            }
            // `pub(crate)` leaves a `( crate )` group; step over it.
            if j > 1 && self.tokens[j - 1].is_punct(')') {
                let open = (0..j - 1)
                    .rev()
                    .find(|&o| self.tokens[o].is_punct('(') && self.close(o) == j - 1);
                match open {
                    Some(open) if open > 0 && self.tokens[open - 1].is_ident("pub") => {
                        j = open - 1;
                        continue;
                    }
                    _ => {}
                }
            }
            if j > 1 && self.tokens[j - 1].is_punct(']') {
                let close = j - 1;
                let open = (0..close)
                    .rev()
                    .find(|&o| self.tokens[o].is_punct('[') && self.close(o) == close);
                if let Some(open) = open {
                    if open > 0 && self.tokens[open - 1].is_punct('#') {
                        let text: String = self.tokens[open + 1..close]
                            .iter()
                            .map(|k| k.text.as_str())
                            .collect();
                        attrs.push(text);
                        j = open - 1;
                        continue;
                    }
                }
            }
            break;
        }
        attrs
    }

    fn parse_fn(&self, t: usize) -> Option<FnItem> {
        let name_tok = self.tokens.get(t + 1)?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let n = self.tokens.len();
        // Walk to the body `{` (or `;` for a bodiless trait method),
        // skipping over parenthesized/bracketed groups. Remember the
        // last `->` seen at this level: the return type follows it.
        let mut j = t + 2;
        let mut arrow: Option<usize> = None;
        let body_open = loop {
            if j >= n {
                return None;
            }
            let tok = &self.tokens[j];
            if tok.is_punct('(') || tok.is_punct('[') {
                j = self.close(j) + 1;
                continue;
            }
            if tok.is_punct('{') {
                break j;
            }
            if tok.is_punct(';') {
                return None;
            }
            if tok.is_punct('-') && self.tokens.get(j + 1).is_some_and(|k| k.is_punct('>')) {
                arrow = Some(j);
                j += 2;
                continue;
            }
            j += 1;
        };
        let returns_result = arrow.is_some_and(|a| {
            self.tokens[a..body_open]
                .iter()
                .any(|k| k.is_ident("Result"))
        });
        let returns_guard = arrow.is_some_and(|a| {
            self.tokens[a..body_open]
                .iter()
                .any(|k| k.kind == TokenKind::Ident && k.text.contains("Guard"))
        });
        let attrs = self.attrs_before(t);
        let is_test = attrs.iter().any(|a| a == "test" || a == "cfg(test)");
        Some(FnItem {
            token: t,
            name: name_tok.text.clone(),
            impl_type: None,
            body: (body_open, self.close(body_open)),
            returns_result,
            returns_guard,
            is_test,
            line: self.tokens[t].line,
        })
    }

    /// Ordered parameter names of `item`, `self` excluded. Pattern
    /// parameters (`(a, b): (T, U)`) yield an empty placeholder so
    /// positions stay aligned with call-site arguments.
    pub fn param_names(&self, item: &FnItem) -> Vec<String> {
        let n = self.tokens.len();
        // Find the parameter parens: first `(` between the fn name and
        // the body, skipping the generic angle group by token scan.
        let mut j = item.token + 2;
        let open = loop {
            if j >= n || j >= item.body.0 {
                return Vec::new();
            }
            if self.tokens[j].is_punct('(') {
                break j;
            }
            j += 1;
        };
        let close = self.close(open);
        let mut names = Vec::new();
        // Split the parens into comma-separated slots (groups skipped),
        // then name each slot by its `ident :` pattern; a slot made only
        // of `self`/`&`/`mut`/lifetimes is the receiver and is dropped.
        let mut slot_start = open + 1;
        let mut k = open + 1;
        loop {
            if k >= close || self.tokens[k].is_punct(',') {
                let slot = &self.tokens[slot_start..k.min(close)];
                let is_receiver = !slot.is_empty()
                    && slot.iter().all(|t| {
                        t.is_ident("self")
                            || t.is_punct('&')
                            || t.is_ident("mut")
                            || t.kind == TokenKind::Lifetime
                    });
                if !slot.is_empty() && !is_receiver {
                    let name = slot
                        .windows(2)
                        .find(|w| {
                            w[0].kind == TokenKind::Ident
                                && !w[0].is_ident("mut")
                                && w[1].is_punct(':')
                        })
                        .map(|w| w[0].text.clone())
                        .unwrap_or_default();
                    names.push(name);
                }
                if k >= close {
                    break;
                }
                slot_start = k + 1;
                k += 1;
                continue;
            }
            if self.tokens[k].is_punct('(')
                || self.tokens[k].is_punct('[')
                || self.tokens[k].is_punct('{')
            {
                k = self.close(k) + 1;
                continue;
            }
            k += 1;
        }
        names
    }

    fn parse_struct(&self, t: usize) -> Option<StructDef> {
        let name_tok = self.tokens.get(t + 1)?;
        if name_tok.kind != TokenKind::Ident {
            return None;
        }
        let n = self.tokens.len();
        // Find the field block, skipping generics: the first `{` before
        // any `;` or `(` at this level is the field block.
        let mut j = t + 2;
        let open = loop {
            if j >= n {
                return None;
            }
            let tok = &self.tokens[j];
            if tok.is_punct('{') {
                break j;
            }
            if tok.is_punct(';') || tok.is_punct('(') {
                // Unit or tuple struct: no named fields.
                return Some(StructDef {
                    name: name_tok.text.clone(),
                    fields: Vec::new(),
                });
            }
            j += 1;
        };
        let close = self.close(open);
        let mut fields = Vec::new();
        let mut k = open + 1;
        while k < close {
            let tok = &self.tokens[k];
            // Skip field attributes and visibility.
            if tok.is_punct('#') && self.tokens.get(k + 1).is_some_and(|x| x.is_punct('[')) {
                k = self.close(k + 1) + 1;
                continue;
            }
            if tok.is_ident("pub") {
                k += 1;
                if self.tokens.get(k).is_some_and(|x| x.is_punct('(')) {
                    k = self.close(k) + 1;
                }
                continue;
            }
            if tok.kind == TokenKind::Ident
                && self.tokens.get(k + 1).is_some_and(|x| x.is_punct(':'))
                && !self.tokens.get(k + 2).is_some_and(|x| x.is_punct(':'))
            {
                // Field `name: Type`, type runs to the next `,` at this
                // depth (delimited groups skipped) or the block close.
                let mut end = k + 2;
                while end < close {
                    let x = &self.tokens[end];
                    if x.is_punct(',') {
                        break;
                    }
                    if x.is_punct('(') || x.is_punct('[') || x.is_punct('{') {
                        end = self.close(end) + 1;
                        continue;
                    }
                    end += 1;
                }
                let ty = &self.tokens[k + 2..end];
                let (kind, lock) = classify_type(ty);
                fields.push(Field {
                    name: tok.text.clone(),
                    kind,
                    lock,
                });
                k = end + 1;
                continue;
            }
            k += 1;
        }
        Some(StructDef {
            name: name_tok.text.clone(),
            fields,
        })
    }

    /// For `impl ... {` at `t`, returns the implemented type's name and
    /// the body-open index. `impl Trait for Type` yields `Type`.
    fn parse_impl_header(&self, t: usize) -> Option<(String, usize)> {
        let n = self.tokens.len();
        let mut j = t + 1;
        let mut last_for: Option<usize> = None;
        let body_open = loop {
            if j >= n {
                return None;
            }
            let tok = &self.tokens[j];
            if tok.is_punct('(') || tok.is_punct('[') {
                j = self.close(j) + 1;
                continue;
            }
            if tok.is_punct('{') {
                break j;
            }
            if tok.is_punct(';') {
                return None;
            }
            // `for` in `impl Trait for Type`; HRTB `for<'a>` is followed
            // by `<` and is not a type separator.
            if tok.is_ident("for") && !self.tokens.get(j + 1).is_some_and(|k| k.is_punct('<')) {
                last_for = Some(j);
            }
            j += 1;
        };
        // The type is the last path ident before generics/braces in the
        // segment after `for` (or after `impl` generics when inherent).
        let start = last_for.map(|f| f + 1).unwrap_or(t + 1);
        let mut name: Option<String> = None;
        let mut k = start;
        while k < body_open {
            let tok = &self.tokens[k];
            if tok.is_punct('<') {
                // Skip one balanced generic group by angle counting.
                let mut depth = 1i32;
                k += 1;
                while k < body_open && depth > 0 {
                    if self.tokens[k].is_punct('<') {
                        depth += 1;
                    } else if self.tokens[k].is_punct('>') {
                        depth -= 1;
                    }
                    k += 1;
                }
                continue;
            }
            if tok.is_ident("where") {
                break;
            }
            if tok.kind == TokenKind::Ident {
                name = Some(tok.text.clone());
            }
            k += 1;
        }
        name.map(|n| (n, body_open))
    }
}

/// Classifies a field/binding type by the first collection name it
/// mentions; lock kinds are detected anywhere in the type (so
/// `Vec<Mutex<Shard>>` is Ordered *and* a Mutex carrier).
pub fn classify_type(tokens: &[Token]) -> (CollKind, Option<LockKind>) {
    let mut lock = None;
    let mut kind = CollKind::Other;
    let mut kind_set = false;
    for tok in tokens {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        if lock.is_none() {
            match tok.text.as_str() {
                "Mutex" => lock = Some(LockKind::Mutex),
                "RwLock" => lock = Some(LockKind::RwLock),
                _ => {}
            }
        }
        if !kind_set {
            kind = match tok.text.as_str() {
                "HashMap" | "HashSet" => CollKind::Hash,
                "BTreeMap" | "BTreeSet" => CollKind::BTree,
                "Vec" | "VecDeque" | "String" => CollKind::Ordered,
                _ => continue,
            };
            kind_set = true;
        }
    }
    (kind, lock)
}

/// For every opening `(`/`[`/`{` token, the index of its matching close.
fn delimiter_matches(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; tokens.len()];
    let mut stack: Vec<(char, usize)> = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Punct {
            continue;
        }
        match tok.text.as_str() {
            "(" | "[" | "{" => stack.push((tok.text.chars().next().unwrap_or('('), i)),
            ")" | "]" | "}" => {
                let want = match tok.text.as_str() {
                    ")" => '(',
                    "]" => '[',
                    _ => '{',
                };
                if let Some(pos) = stack.iter().rposition(|&(c, _)| c == want) {
                    let (_, open) = stack.remove(pos);
                    out[open] = Some(i);
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn use_roots_and_extern_crate() {
        let file = SourceFile::parse(
            "x.rs",
            "use std::collections::HashMap;\nuse webre_xml::{XmlDocument, to_xml};\nextern crate serde;\n",
        );
        let roots: Vec<&str> = file.uses.iter().map(|u| u.root.as_str()).collect();
        assert_eq!(roots, vec!["std", "webre_xml", "serde"]);
        assert_eq!(file.uses[2].line, 3);
    }

    #[test]
    fn fn_bodies_and_result_returns() {
        let src = "fn a() -> std::io::Result<()> { Ok(()) }\n\
                   fn b(x: Result<u8, ()>) -> usize { 0 }\n\
                   fn c() { }\n";
        let file = SourceFile::parse("x.rs", src);
        let by_name = |n: &str| file.fns.iter().find(|f| f.name == n).unwrap();
        assert!(by_name("a").returns_result);
        assert!(!by_name("b").returns_result, "param Result is not a return");
        assert!(!by_name("c").returns_result);
    }

    #[test]
    fn cfg_test_mod_marks_fns_as_test() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { x.unwrap(); }\n}\n";
        let file = SourceFile::parse("x.rs", src);
        assert!(!file.fns.iter().find(|f| f.name == "live").unwrap().is_test);
        assert!(file.fns.iter().find(|f| f.name == "t").unwrap().is_test);
        let unwrap_idx = file
            .tokens
            .iter()
            .position(|t| t.is_ident("unwrap"))
            .unwrap();
        assert!(file.in_test(unwrap_idx));
    }

    #[test]
    fn struct_fields_classified() {
        let src = "pub struct S<T> {\n  pub a: HashMap<String, T>,\n  b: BTreeSet<u32>,\n  c: Vec<Mutex<u8>>,\n  d: std::sync::RwLock<State>,\n  e: usize,\n}\n";
        let file = SourceFile::parse("x.rs", src);
        let s = &file.structs[0];
        assert_eq!(s.name, "S");
        let field = |n: &str| s.fields.iter().find(|f| f.name == n).unwrap();
        assert_eq!(field("a").kind, CollKind::Hash);
        assert_eq!(field("b").kind, CollKind::BTree);
        assert_eq!(field("c").kind, CollKind::Ordered);
        assert_eq!(field("c").lock, Some(LockKind::Mutex));
        assert_eq!(field("d").lock, Some(LockKind::RwLock));
        assert_eq!(field("e").kind, CollKind::Other);
    }

    #[test]
    fn impl_types_resolve_for_methods() {
        let src = "struct Foo;\nimpl Foo { fn m(&self) {} }\nimpl std::fmt::Display for Foo { fn fmt(&self) {} }\nimpl<T> From<T> for Foo { fn from(t: T) -> Foo { Foo } }\n";
        let file = SourceFile::parse("x.rs", src);
        for f in &file.fns {
            assert_eq!(f.impl_type.as_deref(), Some("Foo"), "fn {}", f.name);
        }
    }

    #[test]
    fn tuple_and_unit_structs_have_no_fields() {
        let file = SourceFile::parse("x.rs", "struct A;\nstruct B(u8, Vec<u8>);\nstruct C { x: u8 }\n");
        assert_eq!(file.structs.len(), 3);
        assert!(file.structs[0].fields.is_empty());
        assert!(file.structs[1].fields.is_empty());
        assert_eq!(file.structs[2].fields.len(), 1);
    }
}
