//! Workspace discovery: which files does `webre lint` check, and what
//! crate names count as "ours" for the std-only rule.
//!
//! Membership comes from the root `Cargo.toml` — the same source of
//! truth cargo uses — via a small hand parser (the workspace is
//! std-only; no TOML crate). Only `src/` trees are linted: `tests/`,
//! `benches/`, and `examples/` are developer-facing code where `unwrap`
//! and friends are idiomatic, and `#[cfg(test)]` modules inside `src/`
//! are excluded token-by-token by the parser instead.

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

/// The resolved workspace: root, member dirs, and package names.
#[derive(Clone, Debug)]
pub struct Workspace {
    pub root: PathBuf,
    /// Member directories relative to the root, sorted.
    pub members: Vec<PathBuf>,
    /// Package names (`webre-xml`, ...) in `use`-path form
    /// (`webre_xml`), sorted.
    pub crate_names: BTreeSet<String>,
}

impl Workspace {
    /// Reads the workspace rooted at `root` (the directory holding the
    /// `Cargo.toml` with a `[workspace]` table).
    pub fn discover(root: &Path) -> io::Result<Workspace> {
        let manifest = std::fs::read_to_string(root.join("Cargo.toml"))?;
        let mut members = Vec::new();
        for entry in parse_members(&manifest) {
            if let Some(prefix) = entry.strip_suffix("/*") {
                let dir = root.join(prefix);
                let mut expanded: Vec<PathBuf> = std::fs::read_dir(&dir)?
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.join("Cargo.toml").is_file())
                    .filter_map(|p| p.strip_prefix(root).ok().map(Path::to_path_buf))
                    .collect();
                expanded.sort();
                members.extend(expanded);
            } else {
                members.push(PathBuf::from(entry));
            }
        }
        // The root manifest may also define a package (ours does:
        // `webre-suite` hosting workspace-level tests).
        let mut crate_names: BTreeSet<String> = BTreeSet::new();
        if let Some(name) = parse_package_name(&manifest) {
            crate_names.insert(name.replace('-', "_"));
        }
        for member in &members {
            let manifest = std::fs::read_to_string(root.join(member).join("Cargo.toml"))?;
            if let Some(name) = parse_package_name(&manifest) {
                crate_names.insert(name.replace('-', "_"));
            }
        }
        members.sort();
        Ok(Workspace {
            root: root.to_path_buf(),
            members,
            crate_names,
        })
    }

    /// Walks upward from `start` to the nearest directory whose
    /// `Cargo.toml` declares `[workspace]`.
    pub fn find_root(start: &Path) -> Option<PathBuf> {
        let mut dir = Some(start);
        while let Some(d) = dir {
            let manifest = d.join("Cargo.toml");
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d.to_path_buf());
                }
            }
            dir = d.parent();
        }
        None
    }

    /// Every linted `.rs` file: each member's `src/` tree plus the root
    /// package's `src/`, as workspace-relative paths, sorted.
    pub fn source_files(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        let mut src_dirs: Vec<PathBuf> = self.members.iter().map(|m| m.join("src")).collect();
        src_dirs.push(PathBuf::from("src"));
        for dir in src_dirs {
            let abs = self.root.join(&dir);
            if abs.is_dir() {
                collect_rs(&abs, &mut out)?;
            }
        }
        let mut rel: Vec<PathBuf> = out
            .into_iter()
            .filter_map(|p| p.strip_prefix(&self.root).ok().map(Path::to_path_buf))
            .collect();
        rel.sort();
        Ok(rel)
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Extracts the `members = [...]` entries from a manifest.
fn parse_members(manifest: &str) -> Vec<String> {
    let Some(pos) = manifest.find("members") else {
        return Vec::new();
    };
    let Some(open) = manifest[pos..].find('[') else {
        return Vec::new();
    };
    let Some(close) = manifest[pos + open..].find(']') else {
        return Vec::new();
    };
    manifest[pos + open + 1..pos + open + close]
        .split(',')
        .filter_map(|s| {
            let s = s.trim().trim_matches('"');
            (!s.is_empty()).then(|| s.to_owned())
        })
        .collect()
}

/// Extracts `name = "..."` from the `[package]` table.
fn parse_package_name(manifest: &str) -> Option<String> {
    let package = manifest.find("[package]")?;
    let rest = &manifest[package..];
    for line in rest.lines().skip(1) {
        let line = line.trim();
        if line.starts_with('[') {
            break;
        }
        if let Some(value) = line.strip_prefix("name") {
            let value = value.trim_start().strip_prefix('=')?.trim();
            return Some(value.trim_matches('"').to_owned());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_globs_parse() {
        let manifest = "[workspace]\nmembers = [\"crates/*\", \"tools/x\"]\n";
        assert_eq!(parse_members(manifest), vec!["crates/*", "tools/x"]);
    }

    #[test]
    fn package_name_parses() {
        let manifest = "[workspace]\nx = 1\n[package]\nname = \"webre-lint\"\nversion = \"0.1.0\"\n";
        assert_eq!(parse_package_name(manifest).as_deref(), Some("webre-lint"));
    }

    #[test]
    fn this_workspace_discovers_itself() {
        let root = Workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("root");
        let ws = Workspace::discover(&root).expect("discover");
        assert!(ws.crate_names.contains("webre_lint"));
        assert!(ws.crate_names.contains("webre_substrate"));
        let files = ws.source_files().expect("files");
        assert!(files.iter().any(|f| f.ends_with("lexer.rs")));
        assert!(
            !files.iter().any(|f| f.to_string_lossy().contains("tests/")),
            "tests trees must not be linted"
        );
    }
}
