//! Statement-level control-flow graphs over [`FnItem`] bodies.
//!
//! The builder walks a function body's token range and produces one
//! node per statement-like region: plain statements, `if`/`match`
//! conditions, loop heads. Edges carry the branch shape (`Then`/`Else`
//! for conditions, `Back` for loop back-edges, `Try` for the implicit
//! early return of `?` and `let ... else`), so dataflow analyses can be
//! branch- and path-sensitive without re-deriving structure from
//! tokens.
//!
//! Approximations, consistent with the parser's philosophy (ambiguity
//! degrades toward *not* flagging):
//!
//! - compound expressions embedded mid-statement (`let x = if c { a }
//!   else { b };`) are one opaque node — their inner control flow does
//!   not split paths;
//! - closure bodies are part of whichever statement contains them; a
//!   `?` inside a closure is conservatively treated as an early exit of
//!   the enclosing function (over-approximating exits only adds paths,
//!   which may-analyses tolerate);
//! - patterns are not modeled; `match` arms all hang off the scrutinee
//!   node with `Then` edges.
//!
//! Every lexical block's token range is recorded in [`Cfg::blocks`], so
//! liveness-style analyses can kill facts whose binding scope does not
//! contain the current node (the scope-end kill point), without
//! dedicated scope nodes on every path.

use crate::parser::{FnItem, SourceFile};

/// Why an edge exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Straight-line fallthrough (also: edges out of joined branches).
    Fall,
    /// Condition held (`if`/`while`/`for` body entry, `match` arms).
    Then,
    /// Condition failed (`else` branch or loop exit).
    Else,
    /// Loop back-edge to the head.
    Back,
    /// Implicit early return: `?` propagation or a diverging
    /// `let ... else` block. The facts on this edge are the *input*
    /// facts of the source node — the statement's binding never
    /// completed.
    Try,
}

/// What a node represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Synthetic function entry (empty token span).
    Entry,
    /// Synthetic function exit: every `return`, `?` edge and the final
    /// fallthrough converge here.
    Exit,
    /// A plain statement (or opaque statement-like region).
    Stmt,
    /// A branching condition: `if`/`while`/`for` head or `match`
    /// scrutinee. Successor edges are `Then`/`Else` (`match`: one
    /// `Then` per arm).
    Cond,
    /// A bare `loop` head (no condition; body entered on `Fall`).
    LoopHead,
}

/// One CFG node over the token range `span` (`[lo, hi)`).
#[derive(Clone, Debug)]
pub struct CfgNode {
    pub kind: NodeKind,
    /// Token range `[lo, hi)` in the owning [`SourceFile`].
    pub span: (usize, usize),
    /// Source line of the first token (Entry/Exit: of the brace).
    pub line: u32,
    pub succs: Vec<(usize, EdgeKind)>,
    pub preds: Vec<usize>,
}

/// A control-flow graph for one function body.
#[derive(Clone, Debug)]
pub struct Cfg {
    pub nodes: Vec<CfgNode>,
    pub entry: usize,
    pub exit: usize,
    /// Every lexical block `{...}` in the body as `(open, close)` token
    /// indices, outermost (the body itself) first.
    pub blocks: Vec<(usize, usize)>,
}

impl Cfg {
    /// Builds the CFG for `item`'s body.
    pub fn build(file: &SourceFile, item: &FnItem) -> Cfg {
        let mut b = Builder {
            file,
            nodes: Vec::new(),
            blocks: Vec::new(),
            exit: 0,
        };
        let entry = b.node(NodeKind::Entry, (item.body.0, item.body.0));
        let exit = b.node(NodeKind::Exit, (item.body.1, item.body.1));
        b.exit = exit;
        let mut loops = Vec::new();
        let out = b.block(
            item.body.0,
            item.body.1,
            vec![(entry, EdgeKind::Fall)],
            &mut loops,
        );
        for (n, k) in out {
            b.wire(n, k, exit);
        }
        // The walker only records blocks it descends into; brace pairs
        // inside statements (expression blocks, match arms, closure
        // bodies) are lexical scopes too, and scope-sensitive clients
        // (guard kills) need every one of them.
        let mut blocks = b.blocks;
        let mut i = item.body.0;
        while i < item.body.1 {
            if file.tokens[i].is_punct('{') {
                let pair = (i, file.close(i));
                if !blocks.contains(&pair) {
                    blocks.push(pair);
                }
            }
            i += 1;
        }
        Cfg {
            nodes: b.nodes,
            entry,
            exit,
            blocks,
        }
    }

    /// The innermost lexical block containing token index `pos`, or the
    /// function body when none is narrower.
    pub fn enclosing_block(&self, pos: usize) -> (usize, usize) {
        let mut best = self.blocks.first().copied().unwrap_or((0, usize::MAX));
        for &(open, close) in &self.blocks {
            if open <= pos && pos <= close && (close - open) < (best.1.saturating_sub(best.0)) {
                best = (open, close);
            }
        }
        best
    }

    /// True when `block` (an entry of [`Cfg::blocks`]) contains the
    /// whole span of node `n` — i.e. a binding made in `block` is still
    /// in scope at `n`.
    pub fn block_contains(&self, block: (usize, usize), n: usize) -> bool {
        let span = self.nodes[n].span;
        // Entry/Exit sit on the body braces; treat them as inside the
        // body block only.
        block.0 <= span.0 && span.1 <= block.1 + 1
    }

    /// Node indices in deterministic (creation) order.
    pub fn indices(&self) -> std::ops::Range<usize> {
        0..self.nodes.len()
    }
}

/// An enclosing loop during construction: where `continue` goes, where
/// `break` edges collect.
struct LoopCtx {
    label: Option<String>,
    head: usize,
    breaks: Vec<(usize, EdgeKind)>,
}

struct Builder<'a> {
    file: &'a SourceFile,
    nodes: Vec<CfgNode>,
    blocks: Vec<(usize, usize)>,
    exit: usize,
}

/// A frontier: dangling out-edges waiting for their target node.
type Frontier = Vec<(usize, EdgeKind)>;

impl<'a> Builder<'a> {
    fn node(&mut self, kind: NodeKind, span: (usize, usize)) -> usize {
        let line = self
            .file
            .tokens
            .get(span.0)
            .map(|t| t.line)
            .unwrap_or(0);
        self.nodes.push(CfgNode {
            kind,
            span,
            line,
            succs: Vec::new(),
            preds: Vec::new(),
        });
        self.nodes.len() - 1
    }

    fn wire(&mut self, from: usize, kind: EdgeKind, to: usize) {
        self.nodes[from].succs.push((to, kind));
        self.nodes[to].preds.push(from);
    }

    fn wire_frontier(&mut self, frontier: Frontier, to: usize) {
        for (n, k) in frontier {
            self.wire(n, k, to);
        }
    }

    /// First `{` at this nesting level in `[from, limit)`, skipping
    /// `(`/`[` groups (closures and calls inside conditions).
    fn next_brace(&self, mut j: usize, limit: usize) -> Option<usize> {
        while j < limit {
            let tok = &self.file.tokens[j];
            if tok.is_punct('(') || tok.is_punct('[') {
                j = self.file.close(j) + 1;
                continue;
            }
            if tok.is_punct('{') {
                return Some(j);
            }
            j += 1;
        }
        None
    }

    /// End of a simple statement starting at `i`: the index just past
    /// its `;`, or `limit` for a trailing expression.
    fn stmt_limit(&self, mut j: usize, limit: usize) -> usize {
        while j < limit {
            let tok = &self.file.tokens[j];
            if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
                j = self.file.close(j) + 1;
                continue;
            }
            if tok.is_punct(';') {
                return j + 1;
            }
            j += 1;
        }
        limit
    }

    /// Builds the statements of the block `(open, close)` onto
    /// `frontier`; returns the block's fallthrough frontier.
    fn block(
        &mut self,
        open: usize,
        close: usize,
        frontier: Frontier,
        loops: &mut Vec<LoopCtx>,
    ) -> Frontier {
        self.blocks.push((open, close));
        let mut frontier = frontier;
        let mut i = open + 1;
        while i < close {
            let tok = &self.file.tokens[i];
            // Attributes on statements/items: skip `#[...]`.
            if tok.is_punct('#') && self.file.tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                i = self.file.close(i + 1) + 1;
                continue;
            }
            if tok.is_punct(';') {
                i += 1;
                continue;
            }
            // Bare nested block `{ ... }` (also `unsafe { ... }`).
            if tok.is_punct('{') {
                let c = self.file.close(i);
                frontier = self.block(i, c, frontier, loops);
                i = c + 1;
                continue;
            }
            if tok.is_ident("unsafe")
                && self.file.tokens.get(i + 1).is_some_and(|t| t.is_punct('{'))
            {
                i += 1;
                continue;
            }
            // Loop labels: `'name: loop/while/for`.
            if tok.kind == crate::lexer::TokenKind::Lifetime
                && self.file.tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && self
                    .file
                    .tokens
                    .get(i + 2)
                    .is_some_and(|t| t.is_any_ident(&["loop", "while", "for"]))
            {
                let label = Some(tok.text.clone());
                let (f, next) = self.loop_like(i + 2, close, frontier, loops, label);
                frontier = f;
                i = next;
                continue;
            }
            // Items nested in bodies: build no nodes here; nested fns
            // get their own FnItem and CFG.
            if tok.is_any_ident(&["fn", "struct", "enum", "trait", "impl", "mod", "macro_rules"]) {
                match self.next_brace(i, close) {
                    Some(b) => i = self.file.close(b) + 1,
                    None => i = self.stmt_limit(i, close),
                }
                continue;
            }
            if tok.is_any_ident(&["use", "type", "static", "const"])
                && !self
                    .file
                    .tokens
                    .get(i + 1)
                    .is_some_and(|t| t.is_punct('{'))
            {
                // `const { ... }` blocks fall through to the bare-block
                // case; declarations end at `;`.
                i = self.stmt_limit(i, close);
                continue;
            }
            if tok.is_ident("if") {
                let (f, next) = self.if_chain(i, close, frontier, loops);
                frontier = f;
                i = next;
                continue;
            }
            if tok.is_any_ident(&["while", "for", "loop"]) {
                let (f, next) = self.loop_like(i, close, frontier, loops, None);
                frontier = f;
                i = next;
                continue;
            }
            if tok.is_ident("match") {
                let (f, next) = self.match_stmt(i, close, frontier, loops);
                frontier = f;
                i = next;
                continue;
            }
            // Simple statement (covers `return`/`break`/`continue`).
            let end = self.stmt_limit(i, close);
            frontier = self.simple_span(i, end, frontier, loops);
            i = end;
        }
        frontier
    }

    /// One statement-like token span `[lo, hi)`: builds its node and
    /// resolves `return`/`break`/`continue`/`?`/diverging `let-else`.
    fn simple_span(
        &mut self,
        lo: usize,
        hi: usize,
        frontier: Frontier,
        loops: &mut Vec<LoopCtx>,
    ) -> Frontier {
        let n = self.node(NodeKind::Stmt, (lo, hi));
        self.wire_frontier(frontier, n);
        let first = &self.file.tokens[lo];
        if first.is_ident("return") {
            self.wire(n, EdgeKind::Fall, self.exit);
            return Vec::new();
        }
        if first.is_ident("break") || first.is_ident("continue") {
            let label = self
                .file
                .tokens
                .get(lo + 1)
                .filter(|t| t.kind == crate::lexer::TokenKind::Lifetime)
                .map(|t| t.text.clone());
            let target = match &label {
                Some(l) => loops.iter_mut().rev().find(|c| c.label.as_deref() == Some(l)),
                None => loops.last_mut(),
            };
            if let Some(ctx) = target {
                if first.is_ident("break") {
                    ctx.breaks.push((n, EdgeKind::Fall));
                } else {
                    let head = ctx.head;
                    self.wire(n, EdgeKind::Back, head);
                }
                return Vec::new();
            }
            // No enclosing loop (break inside a misparsed closure):
            // degrade to fallthrough.
            return vec![(n, EdgeKind::Fall)];
        }
        self.try_edges(n, lo, hi, loops);
        vec![(n, EdgeKind::Fall)]
    }

    /// Adds a `Try` edge for `?` anywhere in `[lo, hi)`, and resolves a
    /// diverging `let ... else { return/break/continue }` tail.
    fn try_edges(&mut self, n: usize, lo: usize, hi: usize, loops: &mut Vec<LoopCtx>) {
        let hi = hi.min(self.file.tokens.len());
        if self.file.tokens[lo..hi].iter().any(|t| t.is_punct('?')) {
            self.wire(n, EdgeKind::Try, self.exit);
        }
        // let-else: `else {` at statement level with a diverging block.
        let mut j = lo;
        while j + 1 < hi {
            let tok = &self.file.tokens[j];
            if tok.is_punct('(') || tok.is_punct('[') {
                j = self.file.close(j) + 1;
                continue;
            }
            if tok.is_ident("else") && self.file.tokens[j + 1].is_punct('{') {
                let open = j + 1;
                let close = self.file.close(open);
                let body = &self.file.tokens[open + 1..close.min(hi)];
                if body.iter().any(|t| t.is_ident("return")) {
                    self.wire(n, EdgeKind::Try, self.exit);
                } else if body.iter().any(|t| t.is_ident("break")) {
                    if let Some(ctx) = loops.last_mut() {
                        ctx.breaks.push((n, EdgeKind::Try));
                    }
                } else if body.iter().any(|t| t.is_ident("continue")) {
                    if let Some(ctx) = loops.last() {
                        let head = ctx.head;
                        self.wire(n, EdgeKind::Try, head);
                    }
                }
                j = close + 1;
                continue;
            }
            if tok.is_punct('{') {
                j = self.file.close(j) + 1;
                continue;
            }
            j += 1;
        }
    }

    /// `if cond { ... } [else if ... ]* [else { ... }]`; returns the
    /// join frontier and the index just past the chain.
    fn if_chain(
        &mut self,
        i: usize,
        limit: usize,
        frontier: Frontier,
        loops: &mut Vec<LoopCtx>,
    ) -> (Frontier, usize) {
        let Some(then_open) = self.next_brace(i + 1, limit) else {
            // Malformed; treat as a simple statement.
            let end = self.stmt_limit(i, limit);
            return (self.simple_span(i, end, frontier, loops), end);
        };
        let cond = self.node(NodeKind::Cond, (i, then_open));
        self.wire_frontier(frontier, cond);
        self.try_edges(cond, i, then_open, loops);
        let then_close = self.file.close(then_open);
        let mut out = self.block(then_open, then_close, vec![(cond, EdgeKind::Then)], loops);
        let mut j = then_close + 1;
        if self.file.tokens.get(j).is_some_and(|t| t.is_ident("else")) {
            let next = self.file.tokens.get(j + 1);
            if next.is_some_and(|t| t.is_ident("if")) {
                let (else_out, nj) =
                    self.if_chain_with(j + 1, limit, vec![(cond, EdgeKind::Else)], loops);
                out.extend(else_out);
                j = nj;
            } else if next.is_some_and(|t| t.is_punct('{')) {
                let eclose = self.file.close(j + 1);
                out.extend(self.block(j + 1, eclose, vec![(cond, EdgeKind::Else)], loops));
                j = eclose + 1;
            } else {
                out.push((cond, EdgeKind::Else));
                j += 1;
            }
        } else {
            out.push((cond, EdgeKind::Else));
        }
        (out, j)
    }

    /// `if_chain` continuation for `else if`, keeping the incoming
    /// frontier explicit.
    fn if_chain_with(
        &mut self,
        i: usize,
        limit: usize,
        frontier: Frontier,
        loops: &mut Vec<LoopCtx>,
    ) -> (Frontier, usize) {
        self.if_chain(i, limit, frontier, loops)
    }

    /// `while`/`for`/`loop` starting at `i`.
    fn loop_like(
        &mut self,
        i: usize,
        limit: usize,
        frontier: Frontier,
        loops: &mut Vec<LoopCtx>,
        label: Option<String>,
    ) -> (Frontier, usize) {
        let keyword = self.file.tokens[i].text.clone();
        let Some(body_open) = self.next_brace(i + 1, limit) else {
            let end = self.stmt_limit(i, limit);
            return (self.simple_span(i, end, frontier, loops), end);
        };
        let head = if keyword == "loop" {
            self.node(NodeKind::LoopHead, (i, i + 1))
        } else {
            self.node(NodeKind::Cond, (i, body_open))
        };
        self.wire_frontier(frontier, head);
        self.try_edges(head, i, body_open, loops);
        let body_close = self.file.close(body_open);
        let entry_kind = if keyword == "loop" {
            EdgeKind::Fall
        } else {
            EdgeKind::Then
        };
        loops.push(LoopCtx {
            label,
            head,
            breaks: Vec::new(),
        });
        let body_out = self.block(body_open, body_close, vec![(head, entry_kind)], loops);
        for (n, _) in body_out {
            self.wire(n, EdgeKind::Back, head);
        }
        let ctx = loops.pop().expect("loop ctx pushed above");
        let mut out = ctx.breaks;
        if keyword != "loop" {
            out.push((head, EdgeKind::Else));
        }
        (out, body_close + 1)
    }

    /// `match scrutinee { arms }` starting at `i`.
    fn match_stmt(
        &mut self,
        i: usize,
        limit: usize,
        frontier: Frontier,
        loops: &mut Vec<LoopCtx>,
    ) -> (Frontier, usize) {
        let Some(body_open) = self.next_brace(i + 1, limit) else {
            let end = self.stmt_limit(i, limit);
            return (self.simple_span(i, end, frontier, loops), end);
        };
        let scrut = self.node(NodeKind::Cond, (i, body_open));
        self.wire_frontier(frontier, scrut);
        self.try_edges(scrut, i, body_open, loops);
        let mclose = self.file.close(body_open);
        let mut out: Frontier = Vec::new();
        let mut j = body_open + 1;
        let mut any_arm = false;
        while j < mclose {
            // Find the arm's `=>` at this level.
            let arrow = {
                let mut k = j;
                loop {
                    if k + 1 >= mclose {
                        break None;
                    }
                    let tok = &self.file.tokens[k];
                    if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
                        k = self.file.close(k) + 1;
                        continue;
                    }
                    if tok.is_punct('=') && self.file.tokens[k + 1].is_punct('>') {
                        break Some(k);
                    }
                    k += 1;
                }
            };
            let Some(arrow) = arrow else { break };
            any_arm = true;
            let body_start = arrow + 2;
            if self
                .file
                .tokens
                .get(body_start)
                .is_some_and(|t| t.is_punct('{'))
            {
                let bclose = self.file.close(body_start);
                out.extend(self.block(body_start, bclose, vec![(scrut, EdgeKind::Then)], loops));
                j = bclose + 1;
            } else {
                // Expression arm: to the `,` at this level or the end.
                let mut k = body_start;
                while k < mclose {
                    let tok = &self.file.tokens[k];
                    if tok.is_punct('(') || tok.is_punct('[') || tok.is_punct('{') {
                        k = self.file.close(k) + 1;
                        continue;
                    }
                    if tok.is_punct(',') {
                        break;
                    }
                    k += 1;
                }
                if body_start < k.min(mclose) {
                    out.extend(self.simple_span(
                        body_start,
                        k.min(mclose),
                        vec![(scrut, EdgeKind::Then)],
                        loops,
                    ));
                }
                j = k + 1;
            }
            // Skip a trailing comma after a block arm.
            if self.file.tokens.get(j).is_some_and(|t| t.is_punct(',')) {
                j += 1;
            }
        }
        if !any_arm {
            out.push((scrut, EdgeKind::Fall));
        }
        // A `;` after the match closes the statement.
        let mut next = mclose + 1;
        if self.file.tokens.get(next).is_some_and(|t| t.is_punct(';')) {
            next += 1;
        }
        (out, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_of(body: &str) -> (SourceFile, Cfg) {
        let src = format!("fn f() -> Result<(), ()> {{\n{body}\n}}\n");
        let file = SourceFile::parse("x.rs", &src);
        let item = file.fns[0].clone();
        let cfg = Cfg::build(&file, &item);
        (file, cfg)
    }

    fn count_kind(cfg: &Cfg, kind: NodeKind) -> usize {
        cfg.nodes.iter().filter(|n| n.kind == kind).count()
    }

    #[test]
    fn straight_line_is_a_chain() {
        let (_, cfg) = cfg_of("let a = 1;\nlet b = a + 1;\nOk(())");
        assert_eq!(count_kind(&cfg, NodeKind::Stmt), 3);
        // Entry has exactly one successor; exit one predecessor.
        assert_eq!(cfg.nodes[cfg.entry].succs.len(), 1);
        assert_eq!(cfg.nodes[cfg.exit].preds.len(), 1);
    }

    #[test]
    fn if_else_joins() {
        let (_, cfg) = cfg_of("let a = 1;\nif a > 0 { f(); } else { g(); }\nOk(())");
        let cond = cfg
            .indices()
            .find(|&n| cfg.nodes[n].kind == NodeKind::Cond)
            .unwrap();
        let kinds: Vec<EdgeKind> = cfg.nodes[cond].succs.iter().map(|&(_, k)| k).collect();
        assert!(kinds.contains(&EdgeKind::Then));
        assert!(kinds.contains(&EdgeKind::Else));
        // The trailing Ok(()) joins both branches.
        let last_stmt = cfg
            .indices()
            .filter(|&n| cfg.nodes[n].kind == NodeKind::Stmt)
            .last()
            .unwrap();
        assert_eq!(cfg.nodes[last_stmt].preds.len(), 2);
    }

    #[test]
    fn if_without_else_falls_through() {
        let (_, cfg) = cfg_of("if x { f(); }\nOk(())");
        let cond = cfg
            .indices()
            .find(|&n| cfg.nodes[n].kind == NodeKind::Cond)
            .unwrap();
        assert!(cfg.nodes[cond]
            .succs
            .iter()
            .any(|&(_, k)| k == EdgeKind::Else));
    }

    #[test]
    fn while_has_back_edge_and_exit() {
        let (_, cfg) = cfg_of("while x() {\n  step();\n}\nOk(())");
        let head = cfg
            .indices()
            .find(|&n| cfg.nodes[n].kind == NodeKind::Cond)
            .unwrap();
        assert!(cfg
            .indices()
            .any(|n| cfg.nodes[n].succs.iter().any(|&(t, k)| t == head && k == EdgeKind::Back)));
        assert!(cfg.nodes[head]
            .succs
            .iter()
            .any(|&(_, k)| k == EdgeKind::Else));
    }

    #[test]
    fn bare_loop_without_break_never_reaches_tail() {
        let (_, cfg) = cfg_of("loop {\n  step();\n}\nunreachable_tail();");
        let head = cfg
            .indices()
            .find(|&n| cfg.nodes[n].kind == NodeKind::LoopHead)
            .unwrap();
        assert!(cfg.nodes[head].succs.iter().any(|&(_, k)| k == EdgeKind::Fall));
        // The statement after the loop exists but has no predecessors.
        let tail = cfg
            .indices()
            .filter(|&n| cfg.nodes[n].kind == NodeKind::Stmt)
            .last()
            .unwrap();
        assert!(cfg.nodes[tail].preds.is_empty());
    }

    #[test]
    fn break_exits_loop() {
        let (_, cfg) = cfg_of("loop {\n  if done() { break; }\n  step();\n}\nOk(())");
        // The break node's successor is the statement after the loop.
        let tail = cfg
            .indices()
            .filter(|&n| cfg.nodes[n].kind == NodeKind::Stmt)
            .last()
            .unwrap();
        assert!(
            !cfg.nodes[tail].preds.is_empty(),
            "break must reach the loop tail"
        );
    }

    #[test]
    fn early_return_edges_to_exit() {
        let (_, cfg) = cfg_of("if bad() { return Err(()); }\nOk(())");
        let returning = cfg
            .indices()
            .find(|&n| {
                cfg.nodes[n].kind == NodeKind::Stmt
                    && cfg.nodes[n].succs.iter().any(|&(t, _)| t == cfg.exit)
            })
            .unwrap();
        // Return produces no fallthrough: its only successor is exit.
        assert_eq!(cfg.nodes[returning].succs.len(), 1);
        // Exit still has two predecessors: the return and the tail.
        assert_eq!(cfg.nodes[cfg.exit].preds.len(), 2);
    }

    #[test]
    fn question_mark_adds_try_edge() {
        let (_, cfg) = cfg_of("let x = fallible()?;\nOk(())");
        let stmt = cfg
            .indices()
            .find(|&n| cfg.nodes[n].kind == NodeKind::Stmt)
            .unwrap();
        let kinds: Vec<EdgeKind> = cfg.nodes[stmt].succs.iter().map(|&(_, k)| k).collect();
        assert!(kinds.contains(&EdgeKind::Try), "? produces a Try edge");
        assert!(kinds.contains(&EdgeKind::Fall), "? keeps the fallthrough");
    }

    #[test]
    fn match_arms_hang_off_scrutinee() {
        let (_, cfg) = cfg_of("match x {\n  Some(v) => use_it(v),\n  None => return Err(()),\n}\nOk(())");
        let scrut = cfg
            .indices()
            .find(|&n| cfg.nodes[n].kind == NodeKind::Cond)
            .unwrap();
        let then_edges = cfg.nodes[scrut]
            .succs
            .iter()
            .filter(|&&(_, k)| k == EdgeKind::Then)
            .count();
        assert_eq!(then_edges, 2, "one Then edge per arm");
    }

    #[test]
    fn blocks_record_scopes() {
        let (file, cfg) = cfg_of("let a = 1;\n{\n  let g = lock();\n  use_it(g);\n}\nafter();");
        assert_eq!(cfg.blocks.len(), 2, "body + nested block");
        let g_tok = file.tokens.iter().position(|t| t.is_ident("g")).unwrap();
        let inner = cfg.enclosing_block(g_tok);
        assert!(inner.0 > cfg.blocks[0].0, "inner block starts after body");
        // The `after()` node is outside the inner block.
        let after = cfg
            .indices()
            .filter(|&n| cfg.nodes[n].kind == NodeKind::Stmt)
            .last()
            .unwrap();
        assert!(!cfg.block_contains(inner, after));
    }

    #[test]
    fn let_else_return_diverges_via_try() {
        let (_, cfg) = cfg_of("let Some(x) = y else { return Err(()); };\nOk(())");
        let stmt = cfg
            .indices()
            .find(|&n| cfg.nodes[n].kind == NodeKind::Stmt)
            .unwrap();
        assert!(cfg.nodes[stmt]
            .succs
            .iter()
            .any(|&(t, k)| t == cfg.exit && k == EdgeKind::Try));
    }
}
