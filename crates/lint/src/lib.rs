//! `webre-lint`: the workspace's in-tree static-analysis pass.
//!
//! The pipeline's headline guarantees — deterministic output, std-only
//! builds, panic-free serving — are enforced dynamically by the
//! differential oracles in `crates/check`. Those oracles catch a
//! violation only when a run happens to exercise it; this crate catches
//! the *source line* that introduces one. It ships its own lightweight
//! Rust lexer and item-level parser (no `syn` — the workspace takes no
//! external dependencies), a statement-level CFG builder ([`cfg`]), a
//! generic worklist dataflow solver ([`dataflow`]), a workspace call
//! graph with may-block/may-panic/alloc-taint summaries
//! ([`callgraph`]), and nine rules:
//!
//! | rule | invariant |
//! |---|---|
//! | `dropped-result` | `Result`s are handled, not silently discarded |
//! | `lock-across-blocking` | no lock guard held across blocking I/O |
//! | `lock-order` | one global lock order (no ABBA deadlocks) |
//! | `no-wall-clock` | pure crates never read clocks or the environment |
//! | `nondet-iter` | hash iteration never feeds ordered output unsorted |
//! | `panic-in-hot-path` | serve workers and the HTTP codec cannot panic |
//! | `std-only` | no imports outside std + workspace crates |
//! | `unbounded-request-alloc` | parsed lengths are bounds-checked before allocation |
//! | `unjoined-thread` | spawned threads are joined (or explicitly handed off) |
//!
//! The first six are flow-insensitive token walks; the concurrency pack
//! (`lock-across-blocking`, `unbounded-request-alloc`,
//! `unjoined-thread`) and the CFG-ported `lock-order` /
//! `panic-in-hot-path` extents run real dataflow over per-function
//! CFGs, with interprocedural facts from the call graph.
//!
//! Findings are suppressed per line or per file with
//! `// webre::allow(rule-id): reason` comments — the reason is
//! mandatory; a bare marker is inert (see [`config`]).

pub mod callgraph;
pub mod cfg;
pub mod config;
pub mod dataflow;
pub mod diagnostics;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod workspace;

pub use config::{LintConfig, Suppressions};
pub use diagnostics::{canonicalize, render_json, render_text, Diagnostic};
pub use rules::{all_rules, Context, Rule};
pub use workspace::Workspace;

use parser::SourceFile;
use std::io;
use std::path::{Path, PathBuf};

/// Lints every member `src/` tree of the workspace rooted at `root`.
pub fn lint_workspace(root: &Path, config: &LintConfig) -> io::Result<Vec<Diagnostic>> {
    let ws = Workspace::discover(root)?;
    let rel_paths = ws.source_files()?;
    lint_file_set(&ws, &rel_paths, config)
}

/// Lints an explicit set of files or directories (each relative to the
/// current directory or absolute). Directories expand recursively to
/// their `.rs` files. Path scoping is disabled in this mode so fixture
/// snippets exercise every rule wherever they live.
pub fn lint_paths(root: &Path, paths: &[PathBuf], config: &LintConfig) -> io::Result<Vec<Diagnostic>> {
    let ws = Workspace::discover(root)?;
    let mut files = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut found = Vec::new();
            collect_rs(path, &mut found)?;
            files.extend(found);
        } else if path.is_file() {
            files.push(path.clone());
        } else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file or directory: {}", path.display()),
            ));
        }
    }
    files.sort();
    files.dedup();
    // Workspace-relative display paths where possible; otherwise as given.
    let rel_paths: Vec<PathBuf> = files
        .iter()
        .map(|p| {
            p.canonicalize()
                .ok()
                .and_then(|abs| {
                    ws.root
                        .canonicalize()
                        .ok()
                        .and_then(|root| abs.strip_prefix(&root).ok().map(Path::to_path_buf))
                })
                .unwrap_or_else(|| p.clone())
        })
        .collect();
    let mut config = config.clone();
    config.scope_everything = true;
    lint_paths_resolved(&ws, &files, &rel_paths, &config)
}

/// Shared engine: parse, build context, run rules, filter suppressions.
fn lint_file_set(
    ws: &Workspace,
    rel_paths: &[PathBuf],
    config: &LintConfig,
) -> io::Result<Vec<Diagnostic>> {
    let abs: Vec<PathBuf> = rel_paths.iter().map(|p| ws.root.join(p)).collect();
    lint_paths_resolved(ws, &abs, rel_paths, config)
}

fn lint_paths_resolved(
    ws: &Workspace,
    abs_paths: &[PathBuf],
    rel_paths: &[PathBuf],
    config: &LintConfig,
) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::with_capacity(abs_paths.len());
    for (abs, rel) in abs_paths.iter().zip(rel_paths) {
        let source = std::fs::read_to_string(abs)?;
        let rel = rel.to_string_lossy().replace('\\', "/");
        files.push(SourceFile::parse(&rel, &source));
    }
    let ctx = Context::build(&files, ws.crate_names.clone(), config.scope_everything);
    let rules = all_rules();
    let mut raw = Vec::new();
    for rule in &rules {
        if !config.rule_enabled(rule.id()) {
            continue;
        }
        for file in &files {
            rule.check_file(file, &ctx, &mut raw);
        }
        rule.check_workspace(&files, &ctx, &mut raw);
    }
    // Per-file suppression filtering.
    let suppressions: std::collections::BTreeMap<&str, Suppressions> = files
        .iter()
        .map(|f| (f.rel_path.as_str(), Suppressions::harvest(&f.comments)))
        .collect();
    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| {
            suppressions
                .get(d.path.as_str())
                .is_none_or(|s| !s.suppressed(d.rule, d.line))
        })
        .collect();
    canonicalize(&mut out);
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
