//! A lightweight Rust lexer: enough fidelity for line-accurate static
//! analysis, nothing more.
//!
//! The token stream keeps identifiers, literals (collapsed to a single
//! kind — rules only care that a region *is* a literal, never about its
//! value beyond integer indices), lifetimes, and single-character
//! punctuation. Comments are lexed out of the token stream but retained
//! separately with their line numbers, because suppressions
//! (`webre::allow(...)`) live in comments. Multi-character operators
//! (`::`, `->`, `=>`, `..`) are left as adjacent punctuation tokens;
//! rules match the sequence, which keeps the lexer trivial and the
//! matching explicit.
//!
//! The tricky corners of real Rust lexing that matter here are all
//! handled: nested block comments, raw strings with arbitrary `#`
//! fences, byte/raw-byte strings, char literals vs. lifetimes, and
//! escapes inside string/char literals (so a `"}"` literal cannot
//! unbalance brace tracking downstream).

/// What a token is, at the granularity the rules need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime such as `'a` (label or lifetime position).
    Lifetime,
    /// String, raw string, byte string, char, or number literal.
    Literal,
    /// One punctuation character.
    Punct,
}

/// One lexed token with its source position (1-based line).
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True when the token is an identifier equal to `word`.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }

    /// True when the token is the punctuation character `ch`.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }

    /// True when the token is an identifier equal to any of `words` —
    /// the shape the CFG builder uses to classify statement keywords.
    pub fn is_any_ident(&self, words: &[&str]) -> bool {
        self.kind == TokenKind::Ident && words.contains(&self.text.as_str())
    }
}

/// A comment with its starting line; block comments keep their full text.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// The lexed form of one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

/// Lexes `source` into tokens and comments. Unterminated constructs
/// (string running to EOF) are tolerated: the rest of the file becomes
/// one literal, which keeps the lexer total on malformed fixture input.
pub fn lex(source: &str) -> Lexed {
    let bytes = source.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    line,
                    text: source[start..i].to_owned(),
                });
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    line: start_line,
                    text: source[start..i].to_owned(),
                });
            }
            '"' => {
                let (end, newlines) = scan_string(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[i..end].to_owned(),
                    line,
                });
                line += newlines;
                i = end;
            }
            '\'' => {
                // Lifetime (`'a`) vs. char literal (`'a'`, `'\n'`).
                let (token, end, newlines) = scan_quote(source, bytes, i, line);
                out.tokens.push(token);
                line += newlines;
                i = end;
            }
            'r' | 'b' if is_raw_or_byte_string(bytes, i) => {
                let (end, newlines) = scan_raw_or_byte(bytes, i);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[i..end].to_owned(),
                    line,
                });
                line += newlines;
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == '_' || !c.is_ascii() => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    if b.is_ascii_alphanumeric() || b == '_' || !b.is_ascii() {
                        i += if b.is_ascii() { 1 } else { source[i..].chars().next().map_or(1, char::len_utf8) };
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() {
                    let b = bytes[i] as char;
                    // Digits, underscores, type suffixes, hex, exponents,
                    // and `.` in floats — but `1..2` is two range dots,
                    // not part of the number.
                    if b.is_ascii_alphanumeric() || b == '_' {
                        i += 1;
                    } else if b == '.'
                        && bytes.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                    {
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    text: source[start..i].to_owned(),
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }
    out
}

/// Scans a `"..."` string starting at the opening quote; returns the
/// index one past the closing quote and the number of newlines inside.
fn scan_string(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start + 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return (i + 1, newlines),
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (bytes.len(), newlines)
}

/// Scans from a `'`: either a lifetime token or a char literal.
fn scan_quote(source: &str, bytes: &[u8], start: usize, line: u32) -> (Token, usize, u32) {
    let next = bytes.get(start + 1).copied();
    let is_lifetime = match next {
        Some(b'\\') => false,
        Some(c) if (c as char).is_ascii_alphabetic() || c == b'_' => {
            // `'a'` is a char literal; `'a` followed by anything else is
            // a lifetime. Identifiers longer than one char ending in `'`
            // (`'static'`?) do not exist, so one lookahead past the
            // identifier run settles it.
            let mut j = start + 1;
            while j < bytes.len()
                && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
            {
                j += 1;
            }
            !(j == start + 2 && bytes.get(j) == Some(&b'\''))
        }
        _ => false,
    };
    if is_lifetime {
        let mut j = start + 1;
        while j < bytes.len() && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (
            Token {
                kind: TokenKind::Lifetime,
                text: source[start..j].to_owned(),
                line,
            },
            j,
            0,
        );
    }
    // Char literal: scan to the closing quote, honoring escapes.
    let mut i = start + 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'\'' => {
                i += 1;
                break;
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (
        Token {
            kind: TokenKind::Literal,
            text: source[start..i.min(source.len())].to_owned(),
            line,
        },
        i.min(source.len()),
        newlines,
    )
}

/// True when position `i` starts `r"`, `r#`, `b"`, `br"`, `br#`, or `b'`.
fn is_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    match bytes[i] {
        b'r' => matches!(bytes.get(i + 1), Some(b'"') | Some(b'#')),
        b'b' => match bytes.get(i + 1) {
            Some(b'"') | Some(b'\'') => true,
            Some(b'r') => matches!(bytes.get(i + 2), Some(b'"') | Some(b'#')),
            _ => false,
        },
        _ => false,
    }
}

/// Scans raw/byte string forms; returns (end index, newline count).
fn scan_raw_or_byte(bytes: &[u8], start: usize) -> (usize, u32) {
    let mut i = start;
    if bytes[i] == b'b' {
        i += 1;
    }
    if bytes.get(i) == Some(&b'\'') {
        // Byte char `b'x'`.
        let mut j = i + 1;
        while j < bytes.len() {
            match bytes[j] {
                b'\\' => j += 2,
                b'\'' => return (j + 1, 0),
                _ => j += 1,
            }
        }
        return (bytes.len(), 0);
    }
    let raw = bytes.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut fence = 0usize;
    while bytes.get(i) == Some(&b'#') {
        fence += 1;
        i += 1;
    }
    debug_assert_eq!(bytes.get(i), Some(&b'"'));
    i += 1;
    let mut newlines = 0u32;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if !raw => i += 2,
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            b'"' => {
                let mut j = i + 1;
                let mut seen = 0usize;
                while seen < fence && bytes.get(j) == Some(&b'#') {
                    seen += 1;
                    j += 1;
                }
                if seen == fence {
                    return (j, newlines);
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    (bytes.len(), newlines)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        assert_eq!(
            texts("let x = v[0] + 1.5e3;"),
            vec!["let", "x", "=", "v", "[", "0", "]", "+", "1.5e3", ";"]
        );
    }

    #[test]
    fn strings_hide_braces_and_track_lines() {
        let lexed = lex("let s = \"}{\";\nlet t = 2;");
        assert!(lexed.tokens.iter().all(|t| t.text != "{"));
        let t = lexed.tokens.iter().find(|t| t.text == "t").unwrap();
        assert_eq!(t.line, 2);
    }

    #[test]
    fn raw_strings_with_fences() {
        let lexed = lex("let s = r#\"say \"hi\" {ok}\"#; done");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("done")));
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            1
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'b' }");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Literal && t.text == "'b'"));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let lexed = lex(r"let c = '\''; let d = '\n';");
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            2
        );
    }

    #[test]
    fn comments_captured_with_lines_nested_blocks() {
        let lexed = lex("// top\nlet a = 1; /* outer /* inner */ still */\nlet b = 2;");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 2);
        assert!(lexed.comments[1].text.contains("inner"));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("b")));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let lexed = lex("let a = b\"GET\"; let b = b'\\n'; let c = br#\"{}\"#;");
        assert_eq!(
            lexed.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count(),
            3
        );
    }
}
