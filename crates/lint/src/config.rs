//! Per-rule allow/deny configuration and comment suppressions.
//!
//! Two suppression scopes, both spelled inside ordinary comments so the
//! code still compiles with no lint crate present:
//!
//! - **Line**: `// webre::allow(rule-id): reason` on the finding's line
//!   or the line directly above it. The `#[webre::allow(rule-id)]`
//!   spelling inside a comment is accepted too.
//! - **File**: `// webre::allow-file(rule-id): reason` anywhere in the
//!   file silences that rule for the whole file (for invariant-heavy
//!   files where per-line noise would drown the code).
//!
//! The reason after `:` is **mandatory**: a marker with no reason (or a
//! blank one) is inert and suppresses nothing. Suppressions are the
//! engine's escape hatch for deliberate invariants, and the invariant
//! only counts if it is written down where the reader can judge it.

use crate::lexer::Comment;
use std::collections::BTreeSet;

/// Engine configuration.
#[derive(Clone, Debug, Default)]
pub struct LintConfig {
    /// Run only this rule (by ID).
    pub only: Option<String>,
    /// Rules disabled wholesale.
    pub allow: BTreeSet<String>,
    /// Ignore per-rule path scoping and check every rule on every file.
    /// Set when explicit paths are passed on the command line, so
    /// fixture snippets exercise every rule regardless of where they
    /// live.
    pub scope_everything: bool,
}

impl LintConfig {
    /// True when rule `id` should run at all.
    pub fn rule_enabled(&self, id: &str) -> bool {
        if self.allow.contains(id) {
            return false;
        }
        match &self.only {
            Some(only) => only == id,
            None => true,
        }
    }
}

/// Suppressions harvested from one file's comments.
#[derive(Clone, Debug, Default)]
pub struct Suppressions {
    /// (line, rule) pairs: suppress `rule` on that line and the next.
    lines: BTreeSet<(u32, String)>,
    /// Rules suppressed for the entire file.
    file: BTreeSet<String>,
}

impl Suppressions {
    /// Parses every `webre::allow(...)` marker out of `comments`.
    /// Markers whose `: reason` tail is missing or blank are ignored.
    pub fn harvest(comments: &[Comment]) -> Suppressions {
        let mut out = Suppressions::default();
        for comment in comments {
            for (marker, file_wide) in [("webre::allow-file(", true), ("webre::allow(", false)] {
                let mut rest = comment.text.as_str();
                while let Some(pos) = rest.find(marker) {
                    let after = &rest[pos + marker.len()..];
                    if let Some(close) = after.find(')') {
                        if !Self::has_reason(&after[close + 1..]) {
                            rest = &rest[pos + marker.len()..];
                            continue;
                        }
                        for rule in after[..close].split(',') {
                            let rule = rule.trim();
                            if rule.is_empty() {
                                continue;
                            }
                            if file_wide {
                                out.file.insert(rule.to_owned());
                            } else {
                                out.lines.insert((comment.line, rule.to_owned()));
                            }
                        }
                    }
                    rest = &rest[pos + marker.len()..];
                }
            }
        }
        out
    }

    /// True when `tail` (the text after a marker's closing paren)
    /// carries a written reason: an optional `]` (attribute spelling),
    /// then `:`, then at least one non-whitespace character.
    fn has_reason(tail: &str) -> bool {
        let tail = tail.trim_start().trim_start_matches(']').trim_start();
        match tail.strip_prefix(':') {
            Some(reason) => !reason.trim().is_empty(),
            None => false,
        }
    }

    /// True when a finding for `rule` on `line` is suppressed: by a
    /// file-wide allow, or a line allow on the same or previous line.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        if self.file.contains(rule) || self.file.contains("all") {
            return true;
        }
        for l in [line, line.saturating_sub(1)] {
            if l == 0 {
                continue;
            }
            if self.lines.contains(&(l, rule.to_owned())) || self.lines.contains(&(l, "all".to_owned()))
            {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comment(line: u32, text: &str) -> Comment {
        Comment {
            line,
            text: text.to_owned(),
        }
    }

    #[test]
    fn line_suppression_covers_same_and_next_line() {
        let s = Suppressions::harvest(&[comment(4, "// webre::allow(nondet-iter): keyed lookup only")]);
        assert!(s.suppressed("nondet-iter", 4));
        assert!(s.suppressed("nondet-iter", 5));
        assert!(!s.suppressed("nondet-iter", 6));
        assert!(!s.suppressed("std-only", 4));
    }

    #[test]
    fn attribute_spelling_inside_comment_works() {
        let s = Suppressions::harvest(&[comment(2, "// #[webre::allow(panic-in-hot-path)]: startup")]);
        assert!(s.suppressed("panic-in-hot-path", 3));
    }

    #[test]
    fn marker_without_reason_is_inert() {
        let s = Suppressions::harvest(&[
            comment(4, "// webre::allow(nondet-iter)"),
            comment(9, "// webre::allow(std-only):   "),
            comment(12, "// webre::allow-file(lock-order)"),
        ]);
        assert!(!s.suppressed("nondet-iter", 4));
        assert!(!s.suppressed("std-only", 9));
        assert!(!s.suppressed("lock-order", 500));
    }

    #[test]
    fn file_suppression_covers_everything() {
        let s = Suppressions::harvest(&[comment(1, "// webre::allow-file(lock-order): single lock")]);
        assert!(s.suppressed("lock-order", 999));
        assert!(!s.suppressed("nondet-iter", 999));
    }

    #[test]
    fn multiple_rules_in_one_marker() {
        let s = Suppressions::harvest(&[comment(7, "// webre::allow(dropped-result, panic-in-hot-path): peer gone")]);
        assert!(s.suppressed("dropped-result", 7));
        assert!(s.suppressed("panic-in-hot-path", 8));
    }

    #[test]
    fn only_and_allow_config() {
        let mut config = LintConfig::default();
        assert!(config.rule_enabled("std-only"));
        config.only = Some("std-only".to_owned());
        assert!(config.rule_enabled("std-only"));
        assert!(!config.rule_enabled("nondet-iter"));
        config.allow.insert("std-only".to_owned());
        assert!(!config.rule_enabled("std-only"));
    }
}
