//! Workspace call graph with per-function effect summaries.
//!
//! For every `fn` the parser found, the graph computes three may-facts:
//!
//! - **may-block** — the body performs blocking I/O (reads/writes with
//!   a buffer, `accept`, fsync, channel `send`/`recv`, `sleep`,
//!   condvar `wait`, ...) directly or through another workspace
//!   function that does;
//! - **may-panic** — the body can panic (`unwrap`/`expect`, the panic
//!   macro family) directly or transitively;
//! - **alloc-params** — which parameters flow into an allocation sink
//!   (`with_capacity`, `resize`, `reserve`, `vec![_; n]`) without a
//!   bound check inside the body.
//!
//! Resolution is by name, optionally narrowed by the receiver: a
//! `self.m()` call inside `impl T` prefers the `m` defined on `T`, and
//! `Type::m()` prefers `Type`'s. Everything else keeps the whole
//! candidate set, and **propagation only crosses a call edge when the
//! candidates agree unanimously** — the house invariant that ambiguity
//! degrades to silence, interprocedurally. A function's own recursive
//! candidates are excluded so self-recursion cannot veto a fact.
//!
//! Summaries deliberately ignore test code: a `join` in a test harness
//! is not a serving-path effect.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::parser::{FnItem, SourceFile};

/// Unambiguously blocking call names. `read`/`write` are handled
/// separately (argument-carrying = I/O, zero-argument = possible lock
/// acquisition); `join` is excluded because `Path::join` dominates
/// real-world uses (ambiguity → silence).
pub const BLOCKING_CALLS: &[&str] = &[
    "accept",
    "connect",
    "flush",
    "park",
    "read_exact",
    "read_line",
    "read_to_end",
    "read_to_string",
    "recv",
    "recv_timeout",
    "send",
    "sleep",
    "sync_all",
    "sync_data",
    "wait",
    "wait_timeout",
    "write_all",
    "write_fmt",
];

/// Macros that panic (shared with the panic-in-hot-path rule).
pub const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// A function, addressed by file and item index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FnRef {
    pub file: usize,
    pub idx: usize,
}

/// Per-function effect summary.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    pub may_block: bool,
    pub may_panic: bool,
    /// Per ordered parameter (receiver excluded): flows to an
    /// allocation sink with no visible bound check.
    pub alloc_params: Vec<bool>,
}

#[derive(Clone, Debug)]
struct FnMeta {
    impl_type: Option<String>,
    returns_guard: bool,
    is_test: bool,
    params: Vec<String>,
    summary: Summary,
}

/// One call site inside a function body (build-time only).
#[derive(Clone, Debug)]
struct CallRecord {
    name: String,
    hint: Option<String>,
    /// The call is a method call (`recv.name(...)`).
    dotted: bool,
    /// Top-level argument token ranges `[lo, hi)`.
    args: Vec<(usize, usize)>,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    paths: BTreeMap<String, usize>,
    by_name: BTreeMap<String, Vec<FnRef>>,
    metas: Vec<Vec<FnMeta>>,
}

/// A blocking operation found inside a token range.
#[derive(Clone, Debug)]
pub struct BlockEvent {
    /// Token index of the call name.
    pub token: usize,
    pub line: u32,
    /// Human-readable description: the direct call name, or
    /// `"name (may block)"` for an interprocedural hit.
    pub what: String,
    /// Argument token range `[lo, hi)` of the call, for consume-kill
    /// checks (a guard moved *into* the blocking call is released by
    /// it, condvar-style).
    pub args: (usize, usize),
}

impl CallGraph {
    /// Builds the graph and runs the summary fixpoint.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut paths = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<FnRef>> = BTreeMap::new();
        let mut metas: Vec<Vec<FnMeta>> = Vec::new();
        let mut calls: Vec<Vec<Vec<CallRecord>>> = Vec::new();

        for (fi, file) in files.iter().enumerate() {
            paths.insert(file.rel_path.clone(), fi);
            let mut file_metas = Vec::new();
            let mut file_calls = Vec::new();
            for (idx, item) in file.fns.iter().enumerate() {
                let is_test = item.is_test || file.in_test(item.body.0);
                let params = file.param_names(item);
                let summary = if is_test {
                    Summary {
                        alloc_params: vec![false; params.len()],
                        ..Summary::default()
                    }
                } else {
                    direct_summary(file, item, &params)
                };
                by_name
                    .entry(item.name.clone())
                    .or_default()
                    .push(FnRef { file: fi, idx });
                file_calls.push(if is_test {
                    Vec::new()
                } else {
                    collect_calls(file, item)
                });
                file_metas.push(FnMeta {
                    impl_type: item.impl_type.clone(),
                    returns_guard: item.returns_guard,
                    is_test,
                    params,
                    summary,
                });
            }
            metas.push(file_metas);
            calls.push(file_calls);
        }

        let mut graph = CallGraph {
            paths,
            by_name,
            metas,
        };
        graph.fixpoint(files, &calls);
        graph
    }

    /// Interprocedural propagation to fixpoint. Facts only ever turn
    /// on, and a call edge only conducts when every (non-recursive)
    /// candidate already carries the fact, so this is monotone.
    fn fixpoint(&mut self, files: &[SourceFile], calls: &[Vec<Vec<CallRecord>>]) {
        loop {
            let mut changed = false;
            for fi in 0..self.metas.len() {
                for idx in 0..self.metas[fi].len() {
                    let caller = FnRef { file: fi, idx };
                    if self.metas[fi][idx].is_test {
                        continue;
                    }
                    for call in &calls[fi][idx] {
                        let rw = call.dotted && (call.name == "read" || call.name == "write");
                        if rw && call.args.is_empty() {
                            continue; // zero-arg: a lock acquisition
                        }
                        let cands =
                            self.resolve(&call.name, call.hint.as_deref(), Some(caller));
                        if cands.is_empty() {
                            // `.read(buf)`/`.write(buf)` with no same-named
                            // workspace fn: the std I/O traits.
                            if rw && !self.metas[fi][idx].summary.may_block {
                                self.metas[fi][idx].summary.may_block = true;
                                changed = true;
                            }
                            continue;
                        }
                        let all_block = cands.iter().all(|&r| self.meta(r).summary.may_block);
                        let all_panic = cands.iter().all(|&r| self.meta(r).summary.may_panic);
                        if all_block && !self.metas[fi][idx].summary.may_block {
                            self.metas[fi][idx].summary.may_block = true;
                            changed = true;
                        }
                        if all_panic && !self.metas[fi][idx].summary.may_panic {
                            self.metas[fi][idx].summary.may_panic = true;
                            changed = true;
                        }
                        // Taint through positions: caller param p passed
                        // as argument j of a callee whose param j
                        // reaches an allocation sink.
                        for (j, &(alo, ahi)) in call.args.iter().enumerate() {
                            let all_alloc = cands.iter().all(|&r| {
                                self.meta(r).summary.alloc_params.get(j).copied() == Some(true)
                            });
                            if !all_alloc {
                                continue;
                            }
                            let file = &files[fi];
                            let item = &file.fns[idx];
                            for p in 0..self.metas[fi][idx].params.len() {
                                let pname = self.metas[fi][idx].params[p].clone();
                                if pname.is_empty()
                                    || self.metas[fi][idx].summary.alloc_params[p]
                                {
                                    continue;
                                }
                                let mentioned = file.tokens[alo..ahi.min(file.tokens.len())]
                                    .iter()
                                    .any(|t| t.is_ident(&pname));
                                if mentioned && !param_bounded(file, item, &pname) {
                                    self.metas[fi][idx].summary.alloc_params[p] = true;
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn meta(&self, r: FnRef) -> &FnMeta {
        &self.metas[r.file][r.idx]
    }

    /// Index of a file by workspace-relative path.
    pub fn file_index(&self, rel_path: &str) -> Option<usize> {
        self.paths.get(rel_path).copied()
    }

    /// All candidates for `name`, narrowed to `hint`'s impl when that
    /// leaves any, with `exclude` (the calling function) removed.
    pub fn resolve(
        &self,
        name: &str,
        hint: Option<&str>,
        exclude: Option<FnRef>,
    ) -> Vec<FnRef> {
        let Some(all) = self.by_name.get(name) else {
            return Vec::new();
        };
        let mut cands: Vec<FnRef> = if let Some(h) = hint {
            let narrowed: Vec<FnRef> = all
                .iter()
                .copied()
                .filter(|&r| self.meta(r).impl_type.as_deref() == Some(h))
                .collect();
            if narrowed.is_empty() {
                all.clone()
            } else {
                narrowed
            }
        } else {
            all.clone()
        };
        if let Some(ex) = exclude {
            cands.retain(|&r| r != ex);
        }
        cands
    }

    /// True when `name` (narrowed by `hint`) resolves to at least one
    /// function and every candidate returns a guard type.
    pub fn unanimously_guard_returning(
        &self,
        name: &str,
        hint: Option<&str>,
        exclude: Option<FnRef>,
    ) -> bool {
        let cands = self.resolve(name, hint, exclude);
        !cands.is_empty() && cands.iter().all(|&r| self.meta(r).returns_guard)
    }

    /// The summary for one function.
    pub fn summary(&self, r: FnRef) -> &Summary {
        &self.meta(r).summary
    }

    /// True when every candidate's parameter `j` reaches an allocation
    /// sink (and there is at least one candidate).
    pub fn unanimously_allocates_param(
        &self,
        name: &str,
        hint: Option<&str>,
        exclude: Option<FnRef>,
        j: usize,
    ) -> bool {
        let cands = self.resolve(name, hint, exclude);
        !cands.is_empty()
            && cands
                .iter()
                .all(|&r| self.meta(r).summary.alloc_params.get(j).copied() == Some(true))
    }

    /// Blocking operations in `file.tokens[lo..hi)`: direct blocking
    /// calls plus calls to workspace functions that unanimously
    /// may-block. `enclosing_impl` narrows `self.m()` resolution;
    /// `caller` is excluded from candidate sets.
    pub fn blocking_events(
        &self,
        file: &SourceFile,
        lo: usize,
        hi: usize,
        enclosing_impl: Option<&str>,
        caller: Option<FnRef>,
    ) -> Vec<BlockEvent> {
        let mut events = Vec::new();
        let hi = hi.min(file.tokens.len());
        for i in lo..hi {
            let Some((name, open)) = call_at(file, i) else {
                continue;
            };
            let args = (open + 1, file.close(open));
            if let Some(direct) = direct_blocking(file, i) {
                events.push(BlockEvent {
                    token: i,
                    line: file.tokens[i].line,
                    what: direct.to_owned(),
                    args,
                });
                continue;
            }
            let dotted = i > 0 && file.tokens[i - 1].is_punct('.');
            let rw = dotted && (name == "read" || name == "write");
            if rw && args.1 == args.0 {
                continue; // zero-arg: a lock acquisition
            }
            let hint = call_hint(file, i, enclosing_impl);
            let cands = self.resolve(&name, hint.as_deref(), caller);
            if cands.is_empty() {
                if rw {
                    // No workspace fn named read/write: std I/O traits.
                    events.push(BlockEvent {
                        token: i,
                        line: file.tokens[i].line,
                        what: name,
                        args,
                    });
                }
                continue;
            }
            if cands.iter().all(|&r| self.meta(r).summary.may_block) {
                events.push(BlockEvent {
                    token: i,
                    line: file.tokens[i].line,
                    what: format!("{name} (may block)"),
                    args,
                });
            }
        }
        events
    }
}

/// If token `i` is a call name (`ident (`), the name and the `(` index.
/// Macro invocations (`name !`) and `fn` definitions are not calls.
pub fn call_at(file: &SourceFile, i: usize) -> Option<(String, usize)> {
    let tok = file.tokens.get(i)?;
    if tok.kind != TokenKind::Ident {
        return None;
    }
    if !file.tokens.get(i + 1)?.is_punct('(') {
        return None;
    }
    if matches!(
        tok.text.as_str(),
        "if" | "while" | "for" | "match" | "return" | "loop" | "in" | "as" | "move" | "else"
    ) {
        return None;
    }
    if i > 0 && file.tokens[i - 1].is_ident("fn") {
        return None;
    }
    Some((tok.text.clone(), i + 1))
}

/// Receiver-based resolution hint for the call at `i`: `self.m()`
/// narrows to the enclosing impl, `Type::m()` to `Type`.
pub fn call_hint(file: &SourceFile, i: usize, enclosing_impl: Option<&str>) -> Option<String> {
    if i >= 1 && file.tokens[i - 1].is_punct('.') {
        if i >= 2 && file.tokens[i - 2].is_ident("self") {
            return enclosing_impl.map(str::to_owned);
        }
        return None;
    }
    if i >= 3
        && file.tokens[i - 1].is_punct(':')
        && file.tokens[i - 2].is_punct(':')
        && file.tokens[i - 3].kind == TokenKind::Ident
        && file.tokens[i - 3]
            .text
            .chars()
            .next()
            .is_some_and(char::is_uppercase)
    {
        return Some(file.tokens[i - 3].text.clone());
    }
    None
}

/// A directly blocking call at token `i`, by [`BLOCKING_CALLS`] name.
/// `.read(..)`/`.write(..)` are handled by the resolution-aware callers
/// instead: argument-carrying forms are I/O *only when no workspace fn
/// carries the name* (otherwise `Json::write(&mut String, ..)`-style
/// in-memory writers would poison every caller), and zero-argument
/// forms are lock acquisitions, never blocking.
pub fn direct_blocking(file: &SourceFile, i: usize) -> Option<&'static str> {
    let (name, _open) = call_at(file, i)?;
    BLOCKING_CALLS.iter().find(|&&b| b == name).copied()
}

/// If token `i` starts an allocation sink, the token range `[lo, hi)`
/// of its size expression: `with_capacity(n)`, `.resize(n, v)`,
/// `.reserve(n)`, `vec![v; n]`.
pub fn alloc_sink_size_span(file: &SourceFile, i: usize) -> Option<(usize, usize)> {
    let tok = file.tokens.get(i)?;
    if tok.is_ident("vec") && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('!')) {
        let open = i + 2;
        if !file.tokens.get(open).is_some_and(|t| t.is_punct('[')) {
            return None;
        }
        let close = file.close(open);
        // `vec![v; n]`: the size is everything after the top-level `;`.
        let mut k = open + 1;
        while k < close {
            let t = &file.tokens[k];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                k = file.close(k) + 1;
                continue;
            }
            if t.is_punct(';') {
                return Some((k + 1, close));
            }
            k += 1;
        }
        return None;
    }
    let (name, open) = call_at(file, i)?;
    match name.as_str() {
        "with_capacity" => Some((open + 1, file.close(open))),
        "resize" | "reserve" if i > 0 && file.tokens[i - 1].is_punct('.') => {
            // First top-level argument only.
            let close = file.close(open);
            let mut k = open + 1;
            while k < close {
                let t = &file.tokens[k];
                if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                    k = file.close(k) + 1;
                    continue;
                }
                if t.is_punct(',') {
                    return Some((open + 1, k));
                }
                k += 1;
            }
            Some((open + 1, close))
        }
        _ => None,
    }
}

/// Very coarse bound-check detection for summaries: the body compares
/// `name` against something or clamps it with `.min`/`.clamp`.
fn param_bounded(file: &SourceFile, item: &FnItem, name: &str) -> bool {
    let (lo, hi) = item.body;
    let toks = &file.tokens[lo..=hi.min(file.tokens.len() - 1)];
    let compared = toks.windows(2).any(|w| {
        (w[0].is_ident(name) && (w[1].is_punct('<') || w[1].is_punct('>')))
            || ((w[0].is_punct('<') || w[0].is_punct('>')) && w[1].is_ident(name))
    });
    compared
        || toks.windows(3).any(|v| {
            v[0].is_ident(name)
                && v[1].is_punct('.')
                && (v[2].is_ident("min") || v[2].is_ident("clamp"))
        })
}

/// Direct (intraprocedural) effect summary for one function.
fn direct_summary(file: &SourceFile, item: &FnItem, params: &[String]) -> Summary {
    let (lo, hi) = item.body;
    let mut s = Summary {
        alloc_params: vec![false; params.len()],
        ..Summary::default()
    };
    for i in lo + 1..hi {
        if direct_blocking(file, i).is_some() {
            s.may_block = true;
        }
        let tok = &file.tokens[i];
        if tok.is_punct('.')
            && file
                .tokens
                .get(i + 1)
                .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
            && file.tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            s.may_panic = true;
        }
        if tok.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&tok.text.as_str())
            && file.tokens.get(i + 1).is_some_and(|t| t.is_punct('!'))
        {
            s.may_panic = true;
        }
        if let Some((alo, ahi)) = alloc_sink_size_span(file, i) {
            for (p, pname) in params.iter().enumerate() {
                if pname.is_empty() || s.alloc_params[p] {
                    continue;
                }
                let mentioned = file.tokens[alo..ahi.min(file.tokens.len())]
                    .iter()
                    .any(|t| t.is_ident(pname));
                if mentioned && !param_bounded(file, item, pname) {
                    s.alloc_params[p] = true;
                }
            }
        }
    }
    s
}

/// Top-level argument token ranges `[lo, hi)` of the call whose `(` is
/// at `open`.
pub fn call_args(file: &SourceFile, open: usize) -> Vec<(usize, usize)> {
    let close = file.close(open);
    let mut args = Vec::new();
    let mut start = open + 1;
    let mut k = open + 1;
    while k < close {
        let t = &file.tokens[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            k = file.close(k) + 1;
            continue;
        }
        if t.is_punct(',') {
            args.push((start, k));
            start = k + 1;
        }
        k += 1;
    }
    if start < close {
        args.push((start, close));
    }
    args
}

/// All call sites in `item`'s body with their argument ranges.
fn collect_calls(file: &SourceFile, item: &FnItem) -> Vec<CallRecord> {
    let (lo, hi) = item.body;
    let mut out = Vec::new();
    for i in lo + 1..hi {
        let Some((name, open)) = call_at(file, i) else {
            continue;
        };
        out.push(CallRecord {
            name,
            hint: call_hint(file, i, item.impl_type.as_deref()),
            dotted: i > 0 && file.tokens[i - 1].is_punct('.'),
            args: call_args(file, open),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(sources: &[(&str, &str)]) -> Vec<SourceFile> {
        sources
            .iter()
            .map(|(p, s)| SourceFile::parse(p, s))
            .collect()
    }

    fn find(files: &[SourceFile], name: &str) -> FnRef {
        for (fi, f) in files.iter().enumerate() {
            if let Some(idx) = f.fns.iter().position(|x| x.name == name) {
                return FnRef { file: fi, idx };
            }
        }
        panic!("no fn {name}");
    }

    #[test]
    fn direct_blocking_propagates_through_calls() {
        let files = parse_all(&[(
            "a.rs",
            "fn low(f: &mut std::fs::File) { f.sync_data().ok(); }\n\
             fn mid(f: &mut std::fs::File) { low(f); }\n\
             fn high(f: &mut std::fs::File) { mid(f); }\n\
             fn pure() -> u32 { 1 + 1 }\n",
        )]);
        let g = CallGraph::build(&files);
        assert!(g.summary(find(&files, "low")).may_block);
        assert!(g.summary(find(&files, "mid")).may_block);
        assert!(g.summary(find(&files, "high")).may_block);
        assert!(!g.summary(find(&files, "pure")).may_block);
    }

    #[test]
    fn ambiguous_candidates_block_propagation() {
        // Two `sink`s: one blocks, one doesn't — a caller of plain
        // `sink()` must stay clean (ambiguity degrades to silence).
        let files = parse_all(&[
            (
                "a.rs",
                "struct A;\nimpl A { fn sink(&self) { std::thread::sleep(d); } }\n",
            ),
            (
                "b.rs",
                "struct B;\nimpl B { fn sink(&self) { let x = 1; } }\n\
                 fn caller(v: &B) { v.sink(); }\n",
            ),
        ]);
        let g = CallGraph::build(&files);
        assert!(g.summary(find(&files, "caller")).may_block == false);
    }

    #[test]
    fn self_calls_narrow_to_the_enclosing_impl() {
        // `self.sink()` inside impl B resolves to B::sink only, so the
        // blocking A::sink does not pollute it.
        let files = parse_all(&[
            (
                "a.rs",
                "struct A;\nimpl A { fn sink(&self) { std::thread::sleep(d); } }\n",
            ),
            (
                "b.rs",
                "struct B;\nimpl B {\n  fn sink(&self) { let x = 1; }\n  fn caller(&self) { self.sink(); }\n}\n",
            ),
        ]);
        let g = CallGraph::build(&files);
        assert!(!g.summary(find(&files, "caller")).may_block);
    }

    #[test]
    fn may_panic_travels_interprocedurally() {
        let files = parse_all(&[(
            "a.rs",
            "fn low(x: Option<u8>) -> u8 { x.unwrap() }\n\
             fn high(x: Option<u8>) -> u8 { low(x) }\n\
             fn safe(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n",
        )]);
        let g = CallGraph::build(&files);
        assert!(g.summary(find(&files, "low")).may_panic);
        assert!(g.summary(find(&files, "high")).may_panic);
        assert!(!g.summary(find(&files, "safe")).may_panic);
    }

    #[test]
    fn alloc_params_found_and_propagated() {
        let files = parse_all(&[(
            "a.rs",
            "fn buf(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n\
             fn wrapped(m: usize) -> Vec<u8> { buf(m) }\n\
             fn bounded(n: usize) -> Vec<u8> { if n > 4096 { return Vec::new(); } Vec::with_capacity(n) }\n",
        )]);
        let g = CallGraph::build(&files);
        assert_eq!(g.summary(find(&files, "buf")).alloc_params, vec![true]);
        assert_eq!(g.summary(find(&files, "wrapped")).alloc_params, vec![true]);
        assert_eq!(g.summary(find(&files, "bounded")).alloc_params, vec![false]);
    }

    #[test]
    fn test_code_contributes_no_summaries() {
        let files = parse_all(&[(
            "a.rs",
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() { std::thread::sleep(d); }\n}\n",
        )]);
        let g = CallGraph::build(&files);
        assert!(!g.summary(find(&files, "t")).may_block);
    }

    #[test]
    fn blocking_events_cover_direct_and_interprocedural() {
        let files = parse_all(&[(
            "a.rs",
            "fn low(f: &mut std::fs::File) { f.sync_data().ok(); }\n\
             fn user(f: &mut std::fs::File) { low(f); f.write_all(b\"x\").ok(); }\n",
        )]);
        let g = CallGraph::build(&files);
        let user = files[0].fns.iter().find(|f| f.name == "user").unwrap();
        let events = g.blocking_events(&files[0], user.body.0, user.body.1, None, None);
        let whats: Vec<&str> = events.iter().map(|e| e.what.as_str()).collect();
        assert!(whats.contains(&"low (may block)"), "events: {whats:?}");
        assert!(whats.contains(&"write_all"), "events: {whats:?}");
    }

    #[test]
    fn zero_arg_read_write_are_not_blocking() {
        let files = parse_all(&[(
            "a.rs",
            "fn peek(l: &std::sync::RwLock<u8>) { let g = l.read(); let _ = g; }\n",
        )]);
        let g = CallGraph::build(&files);
        assert!(!g.summary(find(&files, "peek")).may_block);
    }
}
