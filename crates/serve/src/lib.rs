//! `webre-serve` — the pipeline as a long-running, concurrent daemon.
//!
//! The batch CLI converts a corpus and exits; this crate turns the same
//! pipeline into an online service: a std-only HTTP/1.1 server built
//! around a readiness-driven event loop (`std::net` non-blocking
//! sockets multiplexed by [`webre_substrate::poll`], no external
//! dependencies, consistent with the workspace's hermetic-build rule).
//! The loop owns every connection and parses requests incrementally;
//! only *complete* requests reach the fixed pool of worker threads
//! through a bounded MPMC job queue ([`webre_substrate::sync`]), so an
//! idle keep-alive connection costs a buffer, not a thread.
//!
//! # Endpoints
//!
//! | Route | Behaviour |
//! |---|---|
//! | `POST /convert` | HTML body → concept-tagged XML, through a sharded content-hash LRU cache |
//! | `POST /corpus/docs` | convert, then accrete the document into the live corpus |
//! | `POST /corpus/xml` | accrete an already-converted XML document (high-throughput ingest) |
//! | `GET /corpus/table` | merged frequent-path table over every shard, as canonical JSON |
//! | `GET /schema` | current majority-schema snapshot (recomputed lazily, versioned) |
//! | `GET /schema/dtd` | current derived DTD snapshot |
//! | `GET /metrics` | plain-text counters: requests, cache, queue depth, latency histograms, worker utilization |
//! | `GET /healthz` | liveness probe |
//! | `POST /shutdown` | graceful drain: stop accepting, finish queued + in-flight work, exit |
//!
//! # Robustness invariants
//!
//! * **Backpressure, not collapse** — the job queue is bounded
//!   (`queue_cap`) and guarded by deadline-based admission control:
//!   work whose estimated queue delay exceeds the `deadline` budget is
//!   shed up front with `429 Too Many Requests` + `retry-after`, and a
//!   full queue answers `429` instead of buffering unboundedly.
//! * **Bounded requests** — bodies beyond `max_body` get an early `413`
//!   (from the headers, before the body streams in); slow-loris peers,
//!   idle keep-alive connections, and stalled readers are reaped by
//!   per-connection read/idle/write budgets (`408` where a reply is
//!   still possible).
//! * **Panic isolation** — each request runs under `catch_unwind`; a
//!   panicking conversion yields `500` and the worker thread survives
//!   (shared locks recover from poisoning because all fallible work
//!   happens before any lock is taken).
//! * **Graceful drain** — `POST /shutdown` stops the accept loop, the
//!   queue is closed, workers finish every queued and in-flight request,
//!   the corpus log takes a final fsync, then the server joins. No
//!   accepted request is dropped.
//! * **Durability (opt-in)** — with a data directory configured, every
//!   accreted document is appended to a per-shard write-ahead log
//!   (batched fsync) and periodically compacted into snapshots; a
//!   restart replays the logs into a byte-identical corpus, tolerating
//!   a torn or corrupted tail from a crash mid-append.
//! * **Serve ≡ batch** — responses are byte-identical to the batch
//!   pipeline's output for the same input; the `serve-vs-batch`
//!   differential oracle in `webre-check` hammers the server with
//!   concurrent clients and compares against `Pipeline` output.
//!
//! # Module map
//!
//! | Module | Responsibility |
//! |---|---|
//! | [`engine`] | the pipeline bundle (converter + miner + DTD config) |
//! | [`cache`] | sharded LRU keyed by content hash |
//! | [`state`] | live corpus: sharded incremental index + versioned, lazily recomputed schema snapshot |
//! | [`persist`] | per-shard WAL + snapshot persistence with crash-tolerant replay |
//! | [`metrics`] | atomic counters and log-scale latency histograms |
//! | [`obs`] | per-request span recording: stats aggregation + optional trace tee |
//! | [`router`] | method/path → route resolution |
//! | [`handlers`] | per-route request handling over shared [`handlers::App`] state |
//! | [`ready`] | per-connection state machine: buffers, budgets, transitions |
//! | [`admission`] | queue-delay estimation and deadline-based shedding |
//! | [`pool`] | panic-isolated worker threads draining the job queue |
//! | [`server`] | readiness event loop, dispatch, graceful shutdown |
//! | [`load`] | fault-injecting load harness (`webre load`) |

pub mod admission;
pub mod cache;
pub mod engine;
pub mod handlers;
pub mod load;
pub mod metrics;
pub mod obs;
pub mod persist;
pub mod pool;
pub mod ready;
pub mod router;
pub mod server;
pub mod state;

pub use engine::Engine;
pub use server::{Server, ServeConfig};
