//! `webre-serve` — the pipeline as a long-running, concurrent daemon.
//!
//! The batch CLI converts a corpus and exits; this crate turns the same
//! pipeline into an online service: a std-only HTTP/1.1 server
//! (`std::net::TcpListener`, no external dependencies, consistent with
//! the workspace's hermetic-build rule) with a fixed pool of worker
//! threads fed by a bounded MPMC job queue
//! ([`webre_substrate::sync`]).
//!
//! # Endpoints
//!
//! | Route | Behaviour |
//! |---|---|
//! | `POST /convert` | HTML body → concept-tagged XML, through a sharded content-hash LRU cache |
//! | `POST /corpus/docs` | accrete the document into the live corpus (incremental index) |
//! | `GET /schema` | current majority-schema snapshot (recomputed lazily, versioned) |
//! | `GET /schema/dtd` | current derived DTD snapshot |
//! | `GET /metrics` | plain-text counters: requests, cache, queue depth, latency histograms, worker utilization |
//! | `GET /healthz` | liveness probe |
//! | `POST /shutdown` | graceful drain: stop accepting, finish queued + in-flight work, exit |
//!
//! # Robustness invariants
//!
//! * **Backpressure, not collapse** — the job queue is bounded
//!   (`queue_cap`); when it is full the acceptor answers `429
//!   Too Many Requests` inline instead of queueing unboundedly.
//! * **Bounded requests** — bodies beyond `max_body` get `413`; slow or
//!   stalled peers are cut off by socket read/write deadlines (`408`).
//! * **Panic isolation** — each request runs under `catch_unwind`; a
//!   panicking conversion yields `500` and the worker thread survives
//!   (shared locks recover from poisoning because all fallible work
//!   happens before any lock is taken).
//! * **Graceful drain** — `POST /shutdown` stops the accept loop, the
//!   queue is closed, workers finish every queued and in-flight request,
//!   then the server joins. No accepted request is dropped.
//! * **Serve ≡ batch** — responses are byte-identical to the batch
//!   pipeline's output for the same input; the `serve-vs-batch`
//!   differential oracle in `webre-check` hammers the server with
//!   concurrent clients and compares against `Pipeline` output.
//!
//! # Module map
//!
//! | Module | Responsibility |
//! |---|---|
//! | [`engine`] | the pipeline bundle (converter + miner + DTD config) |
//! | [`cache`] | sharded LRU keyed by content hash |
//! | [`state`] | live corpus: incremental index + versioned, lazily recomputed schema snapshot |
//! | [`metrics`] | atomic counters and log-scale latency histograms |
//! | [`obs`] | per-request span recording: stats aggregation + optional trace tee |
//! | [`router`] | method/path → route resolution |
//! | [`handlers`] | per-route request handling over shared [`handlers::App`] state |
//! | [`pool`] | panic-isolated worker threads draining the job queue |
//! | [`server`] | listener, acceptor, backpressure, graceful shutdown |

pub mod cache;
pub mod engine;
pub mod handlers;
pub mod metrics;
pub mod obs;
pub mod pool;
pub mod router;
pub mod server;
pub mod state;

pub use engine::Engine;
pub use server::{Server, ServeConfig};
