//! Per-connection state machine for the readiness-driven serve core.
//!
//! ```text
//!            fill()/take_batch()          mark_dispatched()
//!   Reading ───────────────────▶ batch ──────────────────▶ Dispatched
//!      ▲                                                        │
//!      │                flush() drains `out`                    │ complete()
//!      └──── keep-alive ◀──────────────────────────────────────┘
//!                │
//!                └── close-after-write / reap (timeouts) / peer EOF
//! ```
//!
//! [`Conn`] is generic over any `Read + Write` transport and never
//! blocks: reads and writes run until `WouldBlock` and surface progress
//! to the caller, which is what lets the unit tests drive the whole
//! machine over an in-memory fake socket with hand-written readiness
//! transitions — no real TCP, no timing. Time is an explicit `now_ns`
//! argument for the same reason.
//!
//! Timeout taxonomy (checked by [`Conn::check_deadline`]):
//!
//! * **read** — total budget from the first byte of a partial request to
//!   its completion; a slow-loris peer trickling header bytes is reaped
//!   when the budget expires no matter how often it sends.
//! * **idle** — keep-alive gap between complete requests.
//! * **write** — budget since the last byte of write progress; a peer
//!   that stops draining its receive window is reaped.

use std::io::{self, Read, Write};
use std::time::Duration;
use webre_substrate::http::{HttpError, Request, RequestParser};

/// Why a connection was closed by the server side.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseReason {
    /// A partial request outlived the read budget (slow-loris).
    ReadTimeout,
    /// A keep-alive connection sat idle past the idle budget.
    IdleTimeout,
    /// The peer stopped draining our response bytes.
    WriteTimeout,
    /// The peer closed (EOF) with no response owed.
    PeerClosed,
    /// Transport error (reset, broken pipe, …).
    Error,
}

/// The per-connection timeout budgets, in nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct Timeouts {
    /// Budget for one request to arrive completely.
    pub read_ns: u64,
    /// Keep-alive idle budget between requests.
    pub idle_ns: u64,
    /// Budget since the last write progress.
    pub write_ns: u64,
}

impl Timeouts {
    /// Converts the server configuration's `Duration`s.
    pub fn new(read: Duration, idle: Duration, write: Duration) -> Timeouts {
        let ns = |d: Duration| d.as_nanos().min(u64::MAX as u128) as u64;
        Timeouts { read_ns: ns(read), idle_ns: ns(idle), write_ns: ns(write) }
    }
}

/// Coarse connection state, as seen by the event loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnState {
    /// Owned by the loop: buffering and parsing request bytes.
    Reading,
    /// A batch of this connection's requests is with the worker pool;
    /// the loop buffers (bounded) further bytes but parses nothing.
    Dispatched,
}

/// What [`Conn::fill`] observed on the transport.
#[derive(Clone, Copy, Debug, Default)]
pub struct Filled {
    /// Bytes moved into the parse buffer.
    pub received: usize,
    /// The peer half-closed or closed (EOF). Complete buffered requests
    /// are still served; the connection closes once they drain.
    pub eof: bool,
    /// Hard transport error; the connection is dead.
    pub error: bool,
}

/// Result of [`Conn::flush`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Flush {
    /// Output buffer fully drained.
    Done,
    /// The transport would block; write interest is needed.
    Pending,
    /// Transport error; the connection is dead.
    Error,
}

/// Extra headroom over `max_body` for buffered pipelined requests
/// before the loop drops read interest (backpressure).
const PIPELINE_SLACK: usize = 64 * 1024;

/// One connection owned by the event loop.
#[derive(Debug)]
pub struct Conn<S> {
    socket: S,
    parser: RequestParser,
    state: ConnState,
    /// Serialized responses awaiting the transport.
    out: Vec<u8>,
    /// Prefix of `out` already written.
    written: usize,
    close_after_write: bool,
    peer_eof: bool,
    /// Buffered-byte ceiling: one max body plus pipeline slack.
    buf_cap: usize,
    /// When the current partial request's first byte arrived.
    request_started_ns: Option<u64>,
    /// Last moment the connection became idle (no partial request).
    idle_since_ns: u64,
    /// Last moment a write made progress while output is pending.
    write_since_ns: Option<u64>,
}

impl<S: Read + Write> Conn<S> {
    /// Wraps a (non-blocking) transport.
    pub fn new(socket: S, max_body: usize, now_ns: u64) -> Conn<S> {
        Conn {
            socket,
            parser: RequestParser::new(max_body),
            state: ConnState::Reading,
            out: Vec::new(),
            written: 0,
            close_after_write: false,
            peer_eof: false,
            buf_cap: max_body.saturating_add(PIPELINE_SLACK),
            request_started_ns: None,
            idle_since_ns: now_ns,
            write_since_ns: None,
        }
    }

    /// Current coarse state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Whether the loop should keep read interest registered: not after
    /// EOF, and not once the parse buffer exceeds its cap (a pipelining
    /// peer outrunning the workers gets TCP backpressure instead of
    /// unbounded memory).
    pub fn wants_read(&self) -> bool {
        !self.peer_eof && self.parser.buffered() < self.buf_cap
    }

    /// Whether response bytes are waiting for the transport.
    pub fn has_output(&self) -> bool {
        self.written < self.out.len()
    }

    /// Whether the peer reached EOF.
    pub fn peer_eof(&self) -> bool {
        self.peer_eof
    }

    /// Whether a request is partially buffered (drives the read budget).
    pub fn mid_request(&self) -> bool {
        self.parser.mid_request()
    }

    /// Direct transport access (courtesy replies during reaping).
    pub fn socket_mut(&mut self) -> &mut S {
        &mut self.socket
    }

    /// Reads until `WouldBlock`, EOF, error, or the buffer cap.
    pub fn fill(&mut self, now_ns: u64) -> Filled {
        let mut outcome = Filled::default();
        let mut chunk = [0u8; 16 * 1024];
        while self.parser.buffered() < self.buf_cap && !self.peer_eof {
            match self.socket.read(&mut chunk) {
                Ok(0) => {
                    self.peer_eof = true;
                    outcome.eof = true;
                }
                Ok(n) => {
                    self.parser.push(&chunk[..n]);
                    outcome.received += n;
                    if self.request_started_ns.is_none() && self.parser.mid_request() {
                        self.request_started_ns = Some(now_ns);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    outcome.error = true;
                    break;
                }
            }
        }
        outcome
    }

    /// Parses up to `max_batch` complete requests (only meaningful in
    /// [`ConnState::Reading`]). An empty vec means more bytes are
    /// needed; an error means framing is lost and the connection must
    /// answer once and close.
    pub fn take_batch(&mut self, max_batch: usize, now_ns: u64) -> Result<Vec<Request>, HttpError> {
        debug_assert_eq!(self.state, ConnState::Reading);
        let mut batch = Vec::new();
        while batch.len() < max_batch {
            match self.parser.next() {
                Ok(Some(request)) => batch.push(request),
                Ok(None) => break,
                // Requests parsed before the framing broke must still
                // be served; the poisoned parser re-raises the error on
                // the next call, which finds the batch empty.
                Err(err) if batch.is_empty() => return Err(err),
                Err(_) => break,
            }
        }
        if !batch.is_empty() {
            // The trailing partial request (if any) gets a fresh read
            // budget starting now — biased in the peer's favour.
            self.request_started_ns = if self.parser.mid_request() { Some(now_ns) } else { None };
            self.idle_since_ns = now_ns;
        }
        Ok(batch)
    }

    /// Marks a just-taken batch as handed to the worker pool.
    pub fn mark_dispatched(&mut self) {
        debug_assert_eq!(self.state, ConnState::Reading);
        self.state = ConnState::Dispatched;
    }

    /// Delivers the worker pool's serialized responses for the
    /// dispatched batch; the connection returns to [`ConnState::Reading`].
    pub fn complete(&mut self, bytes: Vec<u8>, keep_alive: bool, now_ns: u64) {
        debug_assert_eq!(self.state, ConnState::Dispatched);
        self.state = ConnState::Reading;
        self.enqueue(bytes, keep_alive, now_ns);
    }

    /// Appends serialized response bytes (inline fast path and error
    /// replies). `keep_alive == false` latches close-after-write.
    pub fn enqueue(&mut self, bytes: Vec<u8>, keep_alive: bool, now_ns: u64) {
        if self.write_since_ns.is_none() {
            self.write_since_ns = Some(now_ns);
        }
        self.out.extend_from_slice(&bytes);
        if !keep_alive {
            self.close_after_write = true;
        }
    }

    /// Whether the connection must close once output drains.
    pub fn close_pending(&self) -> bool {
        self.close_after_write
    }

    /// Whether output has drained and close-after-write is latched.
    pub fn should_close(&self) -> bool {
        self.close_after_write && !self.has_output()
    }

    /// Writes pending output until done or `WouldBlock`.
    pub fn flush(&mut self, now_ns: u64) -> Flush {
        while self.written < self.out.len() {
            match self.socket.write(&self.out[self.written..]) {
                Ok(0) => return Flush::Error,
                Ok(n) => {
                    self.written += n;
                    self.write_since_ns = Some(now_ns);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Flush::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Flush::Error,
            }
        }
        if !self.out.is_empty() {
            self.out.clear();
            self.written = 0;
        }
        self.write_since_ns = None;
        self.idle_since_ns = now_ns;
        Flush::Done
    }

    /// Which budget, if any, `now_ns` has blown. Write progress is
    /// checked first (a response is owed), then the read budget of a
    /// partial request, then keep-alive idleness. A dispatched batch has
    /// no deadline of its own — the worker pool bounds it.
    pub fn check_deadline(&self, now_ns: u64, timeouts: &Timeouts) -> Option<CloseReason> {
        if self.has_output() {
            let since = self.write_since_ns.unwrap_or(now_ns);
            return (now_ns.saturating_sub(since) > timeouts.write_ns)
                .then_some(CloseReason::WriteTimeout);
        }
        if self.state == ConnState::Dispatched {
            return None;
        }
        if let Some(started) = self.request_started_ns {
            return (now_ns.saturating_sub(started) > timeouts.read_ns)
                .then_some(CloseReason::ReadTimeout);
        }
        (now_ns.saturating_sub(self.idle_since_ns) > timeouts.idle_ns)
            .then_some(CloseReason::IdleTimeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;
    use std::io::{Read, Write};
    use std::time::Duration;

    /// An in-memory transport with hand-controlled readiness: reads
    /// drain scripted chunks (then `WouldBlock`), writes fill a sink up
    /// to a scriptable window (then `WouldBlock`).
    #[derive(Default)]
    struct FakeSocket {
        /// Chunks a read call may consume, one per call.
        readable: VecDeque<Vec<u8>>,
        /// EOF after the scripted chunks drain.
        eof: bool,
        /// Bytes the peer has "received".
        sink: Vec<u8>,
        /// How many bytes writes may currently make progress on.
        window: usize,
    }

    impl Read for FakeSocket {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self.readable.pop_front() {
                Some(chunk) => {
                    assert!(chunk.len() <= buf.len(), "test chunks fit the read buffer");
                    buf[..chunk.len()].copy_from_slice(&chunk);
                    Ok(chunk.len())
                }
                None if self.eof => Ok(0),
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "no data")),
            }
        }
    }

    impl Write for FakeSocket {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.window == 0 {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "window closed"));
            }
            let n = buf.len().min(self.window);
            self.window -= n;
            self.sink.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn timeouts() -> Timeouts {
        Timeouts::new(
            Duration::from_secs(1),
            Duration::from_secs(10),
            Duration::from_secs(2),
        )
    }

    const SEC: u64 = 1_000_000_000;

    #[test]
    fn reading_to_dispatched_to_writing_to_keep_alive() {
        let mut socket = FakeSocket::default();
        socket.readable.push_back(b"POST /convert HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi".to_vec());
        socket.window = usize::MAX;
        let mut conn = Conn::new(socket, 1024, 0);

        assert_eq!(conn.state(), ConnState::Reading);
        let filled = conn.fill(10);
        assert!(filled.received > 0 && !filled.eof && !filled.error);

        let batch = conn.take_batch(32, 0).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].body, b"hi");
        assert!(!conn.mid_request(), "request fully consumed");

        conn.mark_dispatched();
        assert_eq!(conn.state(), ConnState::Dispatched);
        // While dispatched there is no deadline: the pool owns the work.
        assert_eq!(conn.check_deadline(100 * SEC, &timeouts()), None);

        conn.complete(b"HTTP/1.1 200 OK\r\ncontent-length: 0\r\n\r\n".to_vec(), true, 20);
        assert_eq!(conn.state(), ConnState::Reading);
        assert!(conn.has_output());
        assert_eq!(conn.flush(30), Flush::Done);
        assert!(!conn.should_close(), "keep-alive survives the response");
        assert!(conn.socket_mut().sink.starts_with(b"HTTP/1.1 200"));
    }

    #[test]
    fn close_after_write_latches_and_fires_after_drain() {
        let mut socket = FakeSocket::default();
        socket.window = 10; // only part of the response fits at first
        let mut conn: Conn<FakeSocket> = Conn::new(socket, 1024, 0);
        conn.enqueue(b"HTTP/1.1 200 OK\r\ncontent-length: 0\r\n\r\n".to_vec(), false, 0);
        assert_eq!(conn.flush(1), Flush::Pending);
        assert!(!conn.should_close(), "bytes still owed to the peer");
        // The peer drains its window: writable again.
        conn.socket_mut().window = usize::MAX;
        assert_eq!(conn.flush(2), Flush::Done);
        assert!(conn.should_close(), "close-after-write fires once drained");
    }

    #[test]
    fn split_request_arrives_across_many_readable_transitions() {
        let mut socket = FakeSocket::default();
        socket.readable.push_back(b"POST /a HTTP/1.1\r\nconte".to_vec());
        let mut conn = Conn::new(socket, 1024, 0);
        conn.fill(5);
        assert!(conn.take_batch(32, 0).unwrap().is_empty());
        assert!(conn.mid_request(), "read budget clock must be running");

        conn.socket_mut().readable.push_back(b"nt-length: 3\r\n\r\nab".to_vec());
        conn.fill(6);
        assert!(conn.take_batch(32, 0).unwrap().is_empty());

        conn.socket_mut().readable.push_back(b"c".to_vec());
        conn.fill(7);
        let batch = conn.take_batch(32, 0).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].body, b"abc");
    }

    #[test]
    fn pipelined_requests_come_out_as_one_batch_in_order() {
        let mut wire = Vec::new();
        for i in 0..5 {
            wire.extend_from_slice(
                format!("POST /corpus/xml HTTP/1.1\r\ncontent-length: 1\r\n\r\n{i}").as_bytes(),
            );
        }
        let mut socket = FakeSocket::default();
        socket.readable.push_back(wire);
        let mut conn = Conn::new(socket, 1024, 0);
        conn.fill(0);
        let batch = conn.take_batch(32, 0).unwrap();
        assert_eq!(batch.len(), 5);
        for (i, request) in batch.iter().enumerate() {
            assert_eq!(request.body, format!("{i}").as_bytes());
        }
        // A batch cap splits the burst instead of dropping requests.
        let mut socket = FakeSocket::default();
        socket.readable.push_back(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n".to_vec());
        let mut conn = Conn::new(socket, 1024, 0);
        conn.fill(0);
        assert_eq!(conn.take_batch(1, 0).unwrap().len(), 1);
        assert_eq!(conn.take_batch(1, 0).unwrap().len(), 1);
    }

    #[test]
    fn slow_loris_partial_head_hits_the_read_budget() {
        let mut socket = FakeSocket::default();
        socket.readable.push_back(b"GET / HT".to_vec());
        let mut conn = Conn::new(socket, 1024, 0);
        conn.fill(0);
        assert!(conn.take_batch(32, 0).unwrap().is_empty());
        // Trickling one more byte later does NOT reset the budget.
        conn.socket_mut().readable.push_back(b"T".to_vec());
        conn.fill(SEC / 2);
        assert_eq!(conn.check_deadline(SEC / 2, &timeouts()), None);
        assert_eq!(
            conn.check_deadline(SEC + 1, &timeouts()),
            Some(CloseReason::ReadTimeout),
            "budget runs from the FIRST byte of the request"
        );
    }

    #[test]
    fn idle_keep_alive_hits_the_idle_budget_only() {
        let socket = FakeSocket::default();
        let mut conn: Conn<FakeSocket> = Conn::new(socket, 1024, 0);
        assert_eq!(conn.check_deadline(9 * SEC, &timeouts()), None);
        assert_eq!(
            conn.check_deadline(10 * SEC + 1, &timeouts()),
            Some(CloseReason::IdleTimeout)
        );
    }

    #[test]
    fn stalled_peer_hits_the_write_budget() {
        let mut socket = FakeSocket::default();
        socket.window = 4; // peer accepts a few bytes then stalls
        let mut conn: Conn<FakeSocket> = Conn::new(socket, 1024, 0);
        conn.enqueue(vec![b'x'; 64], true, 0);
        assert_eq!(conn.flush(0), Flush::Pending);
        assert_eq!(conn.check_deadline(SEC, &timeouts()), None);
        assert_eq!(
            conn.check_deadline(2 * SEC + 1, &timeouts()),
            Some(CloseReason::WriteTimeout)
        );
    }

    #[test]
    fn eof_with_buffered_requests_still_serves_them() {
        let mut socket = FakeSocket::default();
        socket.readable.push_back(b"GET /healthz HTTP/1.1\r\n\r\n".to_vec());
        socket.eof = true;
        socket.window = usize::MAX;
        let mut conn = Conn::new(socket, 1024, 0);
        let filled = conn.fill(0);
        assert!(filled.eof);
        let batch = conn.take_batch(32, 0).unwrap();
        assert_eq!(batch.len(), 1, "the request sent before EOF is served");
        assert!(conn.take_batch(32, 0).unwrap().is_empty());
        assert!(conn.peer_eof());
        assert!(!conn.wants_read(), "no read interest after EOF");
    }

    #[test]
    fn mid_body_disconnect_surfaces_as_eof_with_partial() {
        let mut socket = FakeSocket::default();
        socket.readable.push_back(b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nab".to_vec());
        socket.eof = true;
        let mut conn = Conn::new(socket, 1024, 0);
        let filled = conn.fill(0);
        assert!(filled.eof);
        assert!(conn.take_batch(32, 0).unwrap().is_empty());
        // Partial + EOF: the loop reaps this as PeerClosed — no worker
        // ever saw the request, nothing can hang.
        assert!(conn.mid_request() && conn.peer_eof());
    }

    #[test]
    fn backpressure_drops_read_interest_past_the_buffer_cap() {
        let mut socket = FakeSocket::default();
        // Never-completing request head, far beyond the cap for a tiny
        // max_body (cap = max_body + 64 KiB slack).
        socket.readable.push_back(vec![b'a'; 16 * 1024]);
        for _ in 0..8 {
            socket.readable.push_back(vec![b'b'; 16 * 1024]);
        }
        let mut conn = Conn::new(socket, 1024, 0);
        conn.fill(0);
        assert!(!conn.wants_read(), "cap reached; interest must drop");
    }

    #[test]
    fn parse_error_is_reported_once() {
        let mut socket = FakeSocket::default();
        socket.readable.push_back(b"NONSENSE\r\n\r\n".to_vec());
        let mut conn = Conn::new(socket, 1024, 0);
        conn.fill(0);
        assert!(conn.take_batch(32, 0).is_err());
    }

    #[test]
    fn requests_parsed_before_a_framing_error_are_still_served() {
        let mut socket = FakeSocket::default();
        socket
            .readable
            .push_back(b"GET /healthz HTTP/1.1\r\n\r\nTRAILING GARBAGE\r\n\r\n".to_vec());
        let mut conn = Conn::new(socket, 1024, 0);
        conn.fill(0);
        // First drain yields the good request; the error waits its turn.
        let batch = conn.take_batch(32, 0).expect("good request first");
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].path(), "/healthz");
        // Next drain surfaces the poisoned parser's error.
        assert!(conn.take_batch(32, 0).is_err());
    }
}
