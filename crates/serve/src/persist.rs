//! Durable corpus storage: a per-shard write-ahead log plus compacted
//! snapshots, built on [`webre_substrate::wal`].
//!
//! # Layout
//!
//! A data directory holds, per shard `i`:
//!
//! ```text
//! <data-dir>/meta.json            shard count + format version
//! <data-dir>/shard-<i>.snapshot   compacted log: every doc at compaction time
//! <data-dir>/shard-<i>.wal        tail log: docs accreted since
//! ```
//!
//! Both files use the same framing ([`webre_substrate::wal`] records
//! whose payloads are canonical [`webre_schema::doc_to_record`] JSON), so
//! a snapshot is nothing more than a pre-compacted log and replay is one
//! code path: snapshot records first, then the tail.
//!
//! # Recovery
//!
//! Replay tolerates a crash at any byte: the torn or corrupt suffix of a
//! tail log is reported as a warning, skipped, and truncated away before
//! the appender reopens, so the next append never hides fresh records
//! behind a corrupt region. Every record before the corruption is
//! replayed — the recovered corpus is exactly the live corpus at the
//! moment the last intact record was appended.
//!
//! # Compaction
//!
//! When a shard's tail holds at least as many records as its snapshot
//! (and at least `compact_min`), the shard is compacted: the full shard
//! is rewritten atomically as a new snapshot and the tail is truncated.
//! The threshold doubles with the snapshot, so compaction cost is
//! amortized O(1) writes per accreted document (geometric policy).
//!
//! # Durability policy
//!
//! Appends reach the file descriptor immediately; `fsync` is batched
//! every `sync_every` records per shard ([`webre_substrate::wal::WalWriter`]).
//! [`CorpusStore::sync_to_disk`] forces the remainder out — the server
//! calls it on drain.

use std::fs::OpenOptions;
use std::io;
use std::path::{Path, PathBuf};
use webre_schema::{doc_from_record, doc_to_record, CorpusIndex, ShardedCorpus};
use webre_substrate::json::Json;
use webre_substrate::wal::{
    append_record, decode_records, write_file_atomic, WalWriter,
};

/// On-disk format version, bumped on incompatible layout changes.
const FORMAT_VERSION: u64 = 1;

/// How a [`CorpusStore`] is opened.
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Directory holding the meta file and per-shard logs; created if
    /// absent.
    pub data_dir: PathBuf,
    /// Shard count for a *fresh* directory. An existing directory's
    /// recorded count always wins (documents must replay into the shard
    /// they were logged under).
    pub shards: usize,
    /// Records per fsync batch, per shard (`1` = fsync every append).
    pub sync_every: usize,
    /// Minimum tail length before a compaction can trigger.
    pub compact_min: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            data_dir: PathBuf::from("webre-data"),
            shards: 4,
            sync_every: 64,
            compact_min: 1024,
        }
    }
}

/// What replay found when the store was opened.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Documents restored across all shards.
    pub docs: usize,
    /// Shard count in effect (from the meta file, or the config for a
    /// fresh directory).
    pub shards: usize,
    /// Human-readable recovery notes: corrupt tails skipped, undecodable
    /// records dropped, shard-count overrides. Empty on a clean open.
    pub warnings: Vec<String>,
}

struct ShardLog {
    wal: WalWriter,
    /// Records currently in the tail log.
    tail_records: usize,
    /// Documents in the snapshot file at its last write.
    snapshot_docs: usize,
}

/// The durable half of a sharded live corpus: one WAL + snapshot pair
/// per shard. All methods take `&mut self`; the serving layer drives it
/// from inside the corpus write lock so log order matches accretion
/// order.
pub struct CorpusStore {
    dir: PathBuf,
    sync_every: usize,
    compact_min: usize,
    shards: Vec<ShardLog>,
}

fn snapshot_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.snapshot"))
}

fn wal_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.wal"))
}

fn meta_path(dir: &Path) -> PathBuf {
    dir.join("meta.json")
}

/// Reads the recorded shard count, or stamps the directory with
/// `configured` on first open. A mismatch between the two is resolved in
/// favour of the disk (and noted), because records already routed to N
/// shards cannot be re-routed without rewriting every log.
fn resolve_shards(
    dir: &Path,
    configured: usize,
    warnings: &mut Vec<String>,
) -> io::Result<usize> {
    let path = meta_path(dir);
    if let Ok(text) = std::fs::read_to_string(&path) {
        let recorded = Json::parse(&text)
            .ok()
            .and_then(|m| m.get("shards").and_then(Json::as_f64))
            .map(|n| n as usize)
            .filter(|n| *n >= 1);
        match recorded {
            Some(n) => {
                if n != configured {
                    warnings.push(format!(
                        "data dir was created with {n} shard(s); ignoring --shards {configured}"
                    ));
                }
                return Ok(n);
            }
            None => warnings.push(format!(
                "unreadable meta file {}; rewriting with {configured} shard(s)",
                path.display()
            )),
        }
    }
    let shards = configured.max(1);
    let meta = Json::Obj(vec![
        ("format".to_owned(), Json::Num(FORMAT_VERSION as f64)),
        ("shards".to_owned(), Json::Num(shards as f64)),
    ]);
    write_file_atomic(&path, format!("{meta}\n").as_bytes())?;
    Ok(shards)
}

/// Replays one log file into `corpus` shard `shard`. Returns the number
/// of records applied and, for tail logs, truncates any corrupt suffix
/// so the reopened appender continues from the intact prefix.
fn replay_log(
    path: &Path,
    shard: usize,
    corpus: &mut ShardedCorpus,
    truncate_corruption: bool,
    warnings: &mut Vec<String>,
) -> io::Result<usize> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let decoded = decode_records(&bytes);
    let mut applied = 0usize;
    for record in &decoded.records {
        match doc_from_record(record) {
            Ok(doc) => {
                corpus.push_to(shard, doc);
                applied += 1;
            }
            // The frame checksum passed, so the payload is as written;
            // an undecodable record is version skew, not bit rot. Drop
            // it loudly rather than refusing to start.
            Err(e) => warnings.push(format!(
                "{}: skipping undecodable record: {e}",
                path.display()
            )),
        }
    }
    if let Some(corruption) = decoded.corruption {
        warnings.push(format!(
            "{}: {corruption}; recovered {applied} record(s), dropping {} corrupt byte(s)",
            path.display(),
            bytes.len() - decoded.clean_len
        ));
        if truncate_corruption {
            OpenOptions::new()
                .write(true)
                .open(path)?
                .set_len(decoded.clean_len as u64)?;
        }
    }
    Ok(applied)
}

impl CorpusStore {
    /// Opens (or initializes) a data directory, replaying its contents.
    /// Returns the store, the recovered corpus, and a replay report.
    pub fn open(config: &StoreConfig) -> io::Result<(CorpusStore, ShardedCorpus, ReplayReport)> {
        std::fs::create_dir_all(&config.data_dir)?;
        let mut report = ReplayReport::default();
        let shard_count =
            resolve_shards(&config.data_dir, config.shards, &mut report.warnings)?;
        report.shards = shard_count;
        let mut corpus = ShardedCorpus::new(shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        for shard in 0..shard_count {
            let snapshot_docs = replay_log(
                &snapshot_path(&config.data_dir, shard),
                shard,
                &mut corpus,
                false,
                &mut report.warnings,
            )?;
            let tail_records = replay_log(
                &wal_path(&config.data_dir, shard),
                shard,
                &mut corpus,
                true,
                &mut report.warnings,
            )?;
            report.docs += snapshot_docs + tail_records;
            let wal = WalWriter::open_append(
                &wal_path(&config.data_dir, shard),
                config.sync_every,
            )?;
            shards.push(ShardLog {
                wal,
                tail_records,
                snapshot_docs,
            });
        }
        let store = CorpusStore {
            dir: config.data_dir.clone(),
            sync_every: config.sync_every.max(1),
            compact_min: config.compact_min.max(1),
            shards,
        };
        Ok((store, corpus, report))
    }

    /// Shard count this store was opened with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Appends one document record to `shard`'s tail log, compacting the
    /// shard when the tail has outgrown the snapshot. `index` must be
    /// the in-memory shard *after* the document was pushed — compaction
    /// snapshots it verbatim.
    pub fn log_doc(&mut self, shard: usize, record: &[u8], index: &CorpusIndex) -> io::Result<()> {
        let log = &mut self.shards[shard];
        log.wal.write_record(record)?;
        log.tail_records += 1;
        if log.tail_records >= self.compact_min.max(log.snapshot_docs) {
            self.compact(shard, index)?;
        }
        Ok(())
    }

    /// Rewrites `shard`'s snapshot from the in-memory index and empties
    /// its tail. The snapshot write is atomic (temp + rename), so a
    /// crash during compaction leaves the previous snapshot + full tail
    /// intact.
    fn compact(&mut self, shard: usize, index: &CorpusIndex) -> io::Result<()> {
        let mut buf = Vec::new();
        for doc in index.docs() {
            append_record(&mut buf, &doc_to_record(doc));
        }
        write_file_atomic(&snapshot_path(&self.dir, shard), &buf)?;
        // Only once the snapshot durably covers every document may the
        // tail be discarded.
        let log = &mut self.shards[shard];
        log.wal = WalWriter::create(&wal_path(&self.dir, shard), self.sync_every)?;
        log.snapshot_docs = index.len();
        log.tail_records = 0;
        Ok(())
    }

    /// Forces every shard's batched appends to stable storage.
    pub fn sync_to_disk(&mut self) -> io::Result<()> {
        for log in &mut self.shards {
            log.wal.sync()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_schema::extract_paths;
    use webre_xml::parse_xml;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "webre-persist-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config(dir: &Path, shards: usize, compact_min: usize) -> StoreConfig {
        StoreConfig {
            data_dir: dir.to_path_buf(),
            shards,
            sync_every: 2,
            compact_min,
        }
    }

    fn ingest(store: &mut CorpusStore, corpus: &mut ShardedCorpus, hash: u64, xml: &str) {
        let doc = extract_paths(&parse_xml(xml).unwrap());
        let record = doc_to_record(&doc);
        let shard = corpus.shard_of(hash);
        corpus.push_to(shard, doc);
        store
            .log_doc(shard, &record, &corpus.shards()[shard])
            .unwrap();
    }

    #[test]
    fn replay_restores_exactly_what_was_logged() {
        let dir = temp_dir("replay");
        let cfg = config(&dir, 3, 1024);
        let (mut store, mut corpus, report) = CorpusStore::open(&cfg).unwrap();
        assert_eq!(report.docs, 0);
        assert!(report.warnings.is_empty());
        for i in 0..20u64 {
            ingest(&mut store, &mut corpus, i, "<r><a/><b><c/></b></r>");
        }
        store.sync_to_disk().unwrap();
        drop(store);
        let (_, restored, report) = CorpusStore::open(&cfg).unwrap();
        assert_eq!(report.docs, 20);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert_eq!(restored.len(), corpus.len());
        assert_eq!(restored.table(), corpus.table());
        // Shard layout survives too, not just the union.
        for (a, b) in restored.shards().iter().zip(corpus.shards()) {
            assert!(a.docs().eq(b.docs()));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_preserves_the_corpus_and_shrinks_the_tail() {
        let dir = temp_dir("compact");
        let cfg = config(&dir, 1, 4);
        let (mut store, mut corpus, _) = CorpusStore::open(&cfg).unwrap();
        for i in 0..50u64 {
            ingest(&mut store, &mut corpus, i, "<r><x/><y/></r>");
        }
        // With compact_min 4 and a geometric policy, the tail must stay
        // well below the total (compactions clearly happened).
        assert!(store.shards[0].snapshot_docs >= 4);
        assert!(store.shards[0].tail_records < 50);
        store.sync_to_disk().unwrap();
        drop(store);
        let (_, restored, report) = CorpusStore::open(&cfg).unwrap();
        assert_eq!(report.docs, 50);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert_eq!(restored.table(), corpus.table());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_is_skipped_with_a_warning_and_truncated() {
        let dir = temp_dir("corrupt");
        let cfg = config(&dir, 1, 1024);
        let (mut store, mut corpus, _) = CorpusStore::open(&cfg).unwrap();
        for i in 0..5u64 {
            ingest(&mut store, &mut corpus, i, "<r><a/></r>");
        }
        store.sync_to_disk().unwrap();
        drop(store);
        // Tear the last record: chop a few bytes off the tail log.
        let path = wal_path(&dir, 0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (mut store, mut restored, report) = CorpusStore::open(&cfg).unwrap();
        assert_eq!(report.docs, 4, "torn final record costs exactly itself");
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert!(report.warnings[0].contains("torn"), "{:?}", report.warnings);
        // The corrupt suffix is gone: appending and replaying again must
        // yield 5 docs (4 recovered + 1 new), not resurrect garbage.
        ingest(&mut store, &mut restored, 99, "<r><b/></r>");
        store.sync_to_disk().unwrap();
        drop(store);
        let (_, again, report) = CorpusStore::open(&cfg).unwrap();
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        assert_eq!(again.len(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recorded_shard_count_beats_the_config() {
        let dir = temp_dir("meta");
        let (mut store, mut corpus, _) = CorpusStore::open(&config(&dir, 2, 1024)).unwrap();
        for i in 0..6u64 {
            ingest(&mut store, &mut corpus, i, "<r><a/></r>");
        }
        store.sync_to_disk().unwrap();
        drop(store);
        // Reopen asking for 5 shards; the directory says 2.
        let (store, restored, report) = CorpusStore::open(&config(&dir, 5, 1024)).unwrap();
        assert_eq!(store.shard_count(), 2);
        assert_eq!(restored.shard_count(), 2);
        assert_eq!(report.docs, 6);
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert!(report.warnings[0].contains("2 shard"), "{:?}", report.warnings);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
