//! The serving layer's observability wiring.
//!
//! Every server carries an [`ObsLayer`]: a [`StatsRecorder`] feeding the
//! extended `/metrics` (per-stage span counts, latency histograms, rule
//! counters), optionally teed into a [`TraceRecorder`] when the server
//! was started with `--trace-out`. Workers open one `request` span per
//! served request; the pipeline stages called by the handlers nest under
//! it.

use std::sync::Arc;
use webre_obs::clock::MonotonicClock;
use webre_obs::stats::StatsRecorder;
use webre_obs::trace::TraceRecorder;
use webre_obs::{Recorder, TeeRecorder};

/// The recorders a running server records into.
pub struct ObsLayer {
    stats: Arc<StatsRecorder>,
    trace: Option<Arc<TraceRecorder>>,
    recorder: Arc<dyn Recorder>,
}

impl ObsLayer {
    /// A layer aggregating into `/metrics`, additionally teeing every
    /// span into `trace` when given.
    pub fn new(trace: Option<Arc<TraceRecorder>>) -> Self {
        let stats = Arc::new(StatsRecorder::new(Box::new(MonotonicClock::new())));
        let recorder: Arc<dyn Recorder> = match &trace {
            None => Arc::clone(&stats) as Arc<dyn Recorder>,
            Some(t) => Arc::new(TeeRecorder::new(
                Arc::clone(&stats) as Arc<dyn Recorder>,
                Arc::clone(t) as Arc<dyn Recorder>,
            )),
        };
        ObsLayer {
            stats,
            trace,
            recorder,
        }
    }

    /// The recorder request handling records into.
    pub fn recorder(&self) -> &dyn Recorder {
        self.recorder.as_ref()
    }

    /// The `/metrics` aggregates.
    pub fn stats(&self) -> &StatsRecorder {
        &self.stats
    }

    /// The trace recorder, when the server is tracing.
    pub fn trace(&self) -> Option<&Arc<TraceRecorder>> {
        self.trace.as_ref()
    }
}

impl Default for ObsLayer {
    fn default() -> Self {
        ObsLayer::new(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_obs::{stage, Ctx};

    #[test]
    fn layer_without_trace_records_into_stats() {
        let layer = ObsLayer::new(None);
        let ctx = Ctx::new(layer.recorder());
        drop(ctx.span(stage::REQUEST));
        assert_eq!(layer.stats().spans_total(stage::REQUEST), Some(1));
        assert!(layer.trace().is_none());
    }

    #[test]
    fn layer_with_trace_tees_into_both() {
        use webre_obs::clock::FakeClock;
        let trace = Arc::new(TraceRecorder::new(Box::new(FakeClock::new(1_000))));
        let layer = ObsLayer::new(Some(Arc::clone(&trace)));
        let ctx = Ctx::new(layer.recorder());
        drop(ctx.span(stage::REQUEST));
        assert_eq!(layer.stats().spans_total(stage::REQUEST), Some(1));
        assert_eq!(trace.spans().len(), 1);
        assert_eq!(trace.spans()[0].name, stage::REQUEST);
    }
}
