//! The server proper: readiness-driven event loop, lifecycle, drain.
//!
//! ```text
//!                    ┌────────────── event loop (1 thread) ──────────────┐
//!   TCP ── accept ──▶│ epoll/poll · per-conn parse buffers · timeouts    │
//!                    │   │ complete batch          ▲ Done (bytes)        │
//!                    │   ├─ fast path (cached /convert, /healthz, …)     │
//!                    │   └─ admission check ──▶ bounded job queue        │
//!                    └───────────────┬───────────────────────────────────┘
//!                                    ▼ recv
//!                         worker pool (M threads) ── CompletionQueue ──▶ wake
//! ```
//!
//! One event loop thread owns every connection: sockets are
//! non-blocking, request bytes accumulate in per-connection
//! [`crate::ready::Conn`] buffers, and only *complete* requests go
//! anywhere near a worker — an idle keep-alive connection costs a slab
//! slot and an epoll registration, not a thread. Cheap requests
//! (`/healthz`, `/metrics`, `/shutdown`, and `/convert` bodies already
//! in cache) execute inline on the loop; everything else is batched per
//! connection and dispatched through the bounded queue, guarded by
//! [`Admission`]'s queue-delay estimate (shed with `429 + retry-after`
//! when the estimate exceeds the deadline budget).
//!
//! Slow clients cannot pin anything: a partial request has a read
//! budget, keep-alive idleness has an idle budget, and an unread
//! response has a write budget — blowing any of them reaps the
//! connection (see [`crate::ready::Timeouts`]).
//!
//! Graceful drain: `POST /shutdown` (or [`Server::request_drain`]) flips
//! [`App::draining`] and wakes the loop, which closes the listener and
//! every idle connection immediately, finishes in-flight work, then
//! drops its job-queue sender; the substrate channel contract lets
//! workers drain every queued batch before exiting. [`Server::join`]
//! returns once all of that has happened.

use crate::admission::Admission;
use crate::engine::Engine;
use crate::handlers::{fast_eligible, App};
use crate::obs::ObsLayer;
use crate::persist::{CorpusStore, StoreConfig};
use crate::pool::{error_response, execute, serialize_response, CompletionQueue, Done, Job, WorkerPool};
use crate::ready::{CloseReason, Conn, ConnState, Flush, Timeouts};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use webre_substrate::http::{HttpError, Request, Response};
use webre_substrate::poll::{Event, Poller};
use webre_substrate::sync::{bounded, Sender, TrySendError};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080`. Port `0` picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity (per-connection batches); dispatches
    /// beyond it get 429.
    pub queue_cap: usize,
    /// `/convert` cache capacity in entries; `0` disables caching.
    pub cache_cap: usize,
    /// Maximum request body in bytes.
    pub max_body: usize,
    /// Budget for one request to arrive completely (slow-loris guard).
    pub read_timeout: Duration,
    /// Keep-alive idle budget between requests.
    pub idle_timeout: Duration,
    /// Budget for the peer to drain a response.
    pub write_timeout: Duration,
    /// Admission-control deadline: reject work whose estimated queue
    /// delay exceeds this. `None` disables shedding.
    pub deadline: Option<Duration>,
    /// Data directory for WAL + snapshot persistence; `None` keeps the
    /// corpus in memory only.
    pub data_dir: Option<PathBuf>,
    /// Corpus shard count (for a fresh data directory; an existing one
    /// keeps its recorded count).
    pub shards: usize,
    /// WAL records per fsync batch, per shard.
    pub sync_every: usize,
    /// Minimum WAL tail length before shard compaction can trigger.
    pub compact_min: usize,
    /// `POST /map` reject budget (`--map-budget`); `None` maps
    /// everything regardless of edit cost.
    pub map_budget: Option<u32>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_owned(),
            workers: 4,
            queue_cap: 128,
            cache_cap: 1024,
            max_body: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            deadline: None,
            data_dir: None,
            shards: 4,
            sync_every: 64,
            compact_min: 1024,
            map_budget: None,
        }
    }
}

/// A running server. Dropping the handle does not stop it; call
/// [`Server::join`] (after `/shutdown`) for an orderly exit.
pub struct Server {
    addr: SocketAddr,
    app: Arc<App>,
    completions: Arc<CompletionQueue>,
    event_loop: std::thread::JoinHandle<()>,
    pool: WorkerPool,
}

impl Server {
    /// Binds, spawns the worker pool and the event loop, and returns
    /// immediately.
    pub fn start(config: ServeConfig, engine: Engine) -> io::Result<Server> {
        Server::start_with_obs(config, engine, ObsLayer::default())
    }

    /// [`Server::start`] with an explicit observability layer — pass a
    /// layer built over a trace recorder to capture per-request span
    /// trees (`webre serve --trace-out`).
    pub fn start_with_obs(
        config: ServeConfig,
        engine: Engine,
        obs: ObsLayer,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // `std` listens with a backlog of 128; a C10k connection storm
        // overflows that instantly and dropped SYNs retry on one-second
        // timers. Re-issuing listen(2) widens the queue (best-effort —
        // the kernel caps it at net.core.somaxconn).
        // webre::allow(dropped-result): best-effort tuning; the default backlog still works
        let _ = webre_substrate::poll::widen_listen_backlog(
            std::os::fd::AsRawFd::as_raw_fd(&listener),
            4096,
        );
        let corpus = match &config.data_dir {
            None => LiveCorpus::in_memory(config.shards),
            Some(dir) => {
                let (store, sharded, report) = CorpusStore::open(&StoreConfig {
                    data_dir: dir.clone(),
                    shards: config.shards,
                    sync_every: config.sync_every,
                    compact_min: config.compact_min,
                })?;
                for warning in &report.warnings {
                    eprintln!("warning: {warning}");
                }
                if report.docs > 0 {
                    eprintln!(
                        "replayed {} document(s) across {} shard(s) from {}",
                        report.docs,
                        report.shards,
                        dir.display()
                    );
                }
                LiveCorpus::durable(sharded, store)
            }
        };
        let app = Arc::new(
            App::with_corpus(engine, config.cache_cap, config.workers, obs, corpus)
                .with_map_budget(config.map_budget),
        );
        let admission = Arc::new(Admission::new(
            config.deadline,
            config.workers,
            DEFAULT_SERVICE_PRIOR,
        ));
        let completions = Arc::new(CompletionQueue::new());
        let (jobs_tx, jobs_rx) = bounded::<Job>(config.queue_cap);
        let pool = WorkerPool::spawn(
            config.workers,
            jobs_rx,
            Arc::clone(&app),
            Arc::clone(&admission),
            Arc::clone(&completions),
        )?;

        let mut poller = Poller::new()?;
        let listener_fd = raw_fd(&listener, usize::MAX);
        poller.register(listener_fd, LISTENER_TOKEN, true, false)?;
        #[cfg(unix)]
        let wake_rx = {
            let (rx, tx) = std::os::unix::net::UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            poller.register(raw_fd(&rx, usize::MAX), WAKE_TOKEN, true, false)?;
            completions.set_waker(tx);
            rx
        };

        let timeouts = Timeouts::new(config.read_timeout, config.idle_timeout, config.write_timeout);
        let min_budget = config
            .read_timeout
            .min(config.idle_timeout)
            .min(config.write_timeout);
        let sweep_interval = (min_budget / 4)
            .clamp(Duration::from_millis(5), Duration::from_millis(500));
        let event_loop = EventLoop {
            poller,
            listener: Some(listener),
            listener_fd,
            #[cfg(unix)]
            wake_rx,
            completions: Arc::clone(&completions),
            jobs: jobs_tx,
            app: Arc::clone(&app),
            admission,
            timeouts,
            sweep_interval,
            max_body: config.max_body,
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            open: 0,
            dispatched: 0,
            epoch: Instant::now(),
        };
        let event_loop = std::thread::Builder::new()
            .name("webre-serve-loop".to_owned())
            .spawn(move || {
                let mut event_loop = event_loop;
                event_loop.run();
            })?;
        Ok(Server {
            addr,
            app,
            completions,
            event_loop,
            pool,
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (metrics, corpus, drain flag).
    pub fn app(&self) -> Arc<App> {
        Arc::clone(&self.app)
    }

    /// Requests drain without a network round-trip (equivalent to
    /// `POST /shutdown`).
    pub fn request_drain(&self) {
        self.app.draining.store(true, Ordering::SeqCst);
        // Nudge the event loop so the drain is noticed immediately
        // rather than on its next timeout sweep.
        self.completions.wake();
    }

    /// Waits for the event loop to finish draining and every queued
    /// batch to be served. Only returns after `/shutdown` (or
    /// [`Server::request_drain`]) has been issued.
    pub fn join(self) {
        let _ = self.event_loop.join();
        // The loop dropped its job sender on exit; workers drain the
        // queue and then see the channel close.
        self.pool.join();
        // Every accepted write is in the log by now; force the final
        // fsync batch out so a drained server is fully durable.
        if let Err(e) = self.app.corpus.sync_to_disk() {
            eprintln!("warning: final corpus sync failed: {e}");
        }
    }
}

use crate::state::LiveCorpus;

/// Token of the accept listener in the poller.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token of the wake pipe's read half.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Most requests dispatched to a worker as one batch per connection.
const MAX_BATCH: usize = 64;
/// Seed for the service-time EWMA before any real observation.
const DEFAULT_SERVICE_PRIOR: Duration = Duration::from_millis(1);
/// Most connections accepted per readable-listener event, so one
/// accept storm cannot starve established connections.
const ACCEPT_BATCH: usize = 1024;

/// The raw descriptor handed to the poller. Off unix the sweep poller
/// never inspects descriptors, so a unique pseudo-fd (the slab index)
/// is enough to key register/deregister.
#[cfg(unix)]
fn raw_fd<T: std::os::fd::AsRawFd>(io: &T, _idx: usize) -> i32 {
    io.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_io: &T, idx: usize) -> i32 {
    // usize::MAX (the listener) maps to -2; slab indices map to 0..;
    // the wake pipe does not exist off unix.
    if idx == usize::MAX {
        -2
    } else {
        idx as i32
    }
}

/// One slab entry: the connection plus its poller registration state.
struct Slot {
    conn: Conn<TcpStream>,
    fd: i32,
    reg_read: bool,
    reg_write: bool,
}

/// The readiness loop. Owns the listener, every connection, the poller,
/// and the sending side of the job queue.
struct EventLoop {
    poller: Poller,
    listener: Option<TcpListener>,
    listener_fd: i32,
    #[cfg(unix)]
    wake_rx: std::os::unix::net::UnixStream,
    completions: Arc<CompletionQueue>,
    jobs: Sender<Job>,
    app: Arc<App>,
    admission: Arc<Admission>,
    timeouts: Timeouts,
    sweep_interval: Duration,
    max_body: usize,
    slots: Vec<Option<Slot>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    /// Live connections (slots occupied).
    open: usize,
    /// Jobs dispatched whose completions have not come back yet.
    dispatched: usize,
    epoch: Instant,
}

impl EventLoop {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    fn token_of(&self, idx: usize) -> u64 {
        ((self.gens[idx] as u64) << 32) | idx as u64
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(1024);
        let mut done: Vec<Done> = Vec::new();
        let mut next_sweep = Instant::now() + self.sweep_interval;
        loop {
            done.clear();
            self.completions.drain_into(&mut done);
            for completion in done.drain(..) {
                self.on_done(completion);
            }

            if self.app.is_draining() {
                self.begin_drain();
                if self.open == 0 && self.dispatched == 0 {
                    break;
                }
            }

            let now = Instant::now();
            if now >= next_sweep {
                self.sweep_timeouts();
                next_sweep = now + self.sweep_interval;
            }

            let timeout = next_sweep
                .saturating_duration_since(Instant::now())
                .max(Duration::from_millis(1));
            events.clear();
            if self.completions.pre_wait() {
                let waited = self.poller.wait(&mut events, Some(timeout));
                self.completions.post_wait();
                if waited.is_err() {
                    // A broken poller would spin; back off and rely on
                    // the completion queue plus sweeps to make progress.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            for i in 0..events.len() {
                let event = events[i];
                match event.token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKE_TOKEN => self.drain_wake(),
                    token => self.conn_event(token, event.readable, event.writable),
                }
            }
        }
        // `self.jobs` drops with the loop: the channel closes once the
        // last queued batch is consumed and the workers exit.
    }

    /// Accepts until `WouldBlock` (bounded per event).
    fn accept_ready(&mut self) {
        for _ in 0..ACCEPT_BATCH {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _)) => self.add_conn(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                // Transient (ECONNABORTED) and resource (EMFILE) errors:
                // drop this attempt; level-triggered polling retries.
                Err(_) => break,
            }
        }
    }

    fn add_conn(&mut self, stream: TcpStream) {
        self.app.metrics.connections.fetch_add(1, Ordering::Relaxed);
        if stream.set_nonblocking(true).is_err() {
            return; // a blocking socket would stall the whole loop
        }
        // webre::allow(dropped-result): TCP_NODELAY is a latency hint only
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                self.slots.len() - 1
            }
        };
        let fd = raw_fd(&stream, idx);
        let token = self.token_of(idx);
        if self.poller.register(fd, token, true, false).is_err() {
            self.free.push(idx);
            return; // closing the socket is the only safe degradation
        }
        let conn = Conn::new(stream, self.max_body, self.now_ns());
        self.slots[idx] = Some(Slot { conn, fd, reg_read: true, reg_write: false });
        self.open += 1;
        self.app.metrics.open_connections.fetch_add(1, Ordering::Relaxed);
        // The first request's bytes often arrive with the connection;
        // serving them now saves a poller round-trip.
        self.conn_event(token, true, false);
    }

    /// Routes a poller event to the owning connection, dropping stale
    /// tokens (connection reaped, slot re-used under a new generation).
    fn conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        let idx = (token & u32::MAX as u64) as usize;
        let gen = (token >> 32) as u32;
        if idx >= self.slots.len() || self.gens[idx] != gen || self.slots[idx].is_none() {
            return;
        }
        if readable {
            let now = self.now_ns();
            let filled = match self.slots[idx].as_mut() {
                Some(slot) => slot.conn.fill(now),
                None => return,
            };
            if filled.error {
                self.close(idx, Some(CloseReason::Error));
                return;
            }
        }
        let _ = writable; // flushing happens unconditionally in pump
        self.pump(idx);
    }

    /// Drives one connection as far as it can go without blocking:
    /// flush pending output, then parse-and-serve complete requests
    /// until the transport or the state machine says stop.
    fn pump(&mut self, idx: usize) {
        loop {
            let now = self.now_ns();
            let flush = match self.slots[idx].as_mut() {
                Some(slot) => slot.conn.flush(now),
                None => return,
            };
            match flush {
                Flush::Error => {
                    self.close(idx, Some(CloseReason::Error));
                    return;
                }
                Flush::Pending => break, // wait for writable
                Flush::Done => {}
            }
            let (should_close, state, close_pending, peer_eof, mid_request) = {
                let Some(slot) = self.slots[idx].as_ref() else { return };
                (
                    slot.conn.should_close(),
                    slot.conn.state(),
                    slot.conn.close_pending(),
                    slot.conn.peer_eof(),
                    slot.conn.mid_request(),
                )
            };
            if should_close {
                self.close(idx, None);
                return;
            }
            if state == ConnState::Dispatched || close_pending {
                break; // awaiting the worker pool or the final flush
            }
            let batch = match self.slots[idx].as_mut() {
                Some(slot) => slot.conn.take_batch(MAX_BATCH, now),
                None => return,
            };
            match batch {
                Err(error) => {
                    self.app.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                    let bytes = serialize_response(&error_response(&error), false);
                    if let Some(slot) = self.slots[idx].as_mut() {
                        slot.conn.enqueue(bytes, false, now);
                    }
                    continue; // next iteration flushes, then closes
                }
                Ok(batch) if batch.is_empty() => {
                    if peer_eof {
                        // EOF and nothing parseable left: clean close if
                        // between requests, abandoned if mid-request.
                        let reason = mid_request.then_some(CloseReason::PeerClosed);
                        self.close(idx, reason);
                        return;
                    }
                    break; // need more bytes
                }
                Ok(batch) => {
                    self.handle_batch(idx, batch, now);
                    continue;
                }
            }
        }
        self.update_interest(idx);
    }

    /// Serves a batch of complete requests: inline fast path for the
    /// eligible prefix, then admission-checked dispatch of the rest.
    fn handle_batch(&mut self, idx: usize, mut batch: Vec<Request>, now: u64) {
        let token = self.token_of(idx);
        let mut inline = 0;
        let mut closed = false;
        while inline < batch.len() {
            if !fast_eligible(&self.app, &batch[inline]) {
                break;
            }
            let (bytes, keep_alive) = execute(&self.app, None, &batch[inline]);
            if let Some(slot) = self.slots[idx].as_mut() {
                slot.conn.enqueue(bytes, keep_alive, now);
            }
            inline += 1;
            if !keep_alive {
                closed = true;
                break;
            }
        }
        let rest = batch.split_off(inline);
        if closed || rest.is_empty() {
            // `closed`: the peer asked to close (or drain started), so
            // anything pipelined after that request is void.
            return;
        }
        let n = rest.len();
        match self.admission.admit(n) {
            Err(estimate) => {
                self.app.metrics.shed.fetch_add(n as u64, Ordering::Relaxed);
                let retry = Admission::retry_after_secs(estimate);
                let draining = self.app.is_draining();
                if let Some(slot) = self.slots[idx].as_mut() {
                    for request in &rest {
                        let keep_alive = request.keep_alive() && !draining;
                        let bytes = serialize_response(&shed_response(retry), keep_alive);
                        slot.conn.enqueue(bytes, keep_alive, now);
                    }
                }
            }
            Ok(()) => match self.jobs.try_send(Job { token, requests: rest }) {
                Ok(()) => {
                    self.app.metrics.queue_depth.fetch_add(n as i64, Ordering::Relaxed);
                    self.admission.enqueued(n);
                    self.dispatched += 1;
                    if let Some(slot) = self.slots[idx].as_mut() {
                        slot.conn.mark_dispatched();
                    }
                }
                Err(TrySendError::Full(job)) => {
                    self.app
                        .metrics
                        .rejected
                        .fetch_add(job.requests.len() as u64, Ordering::Relaxed);
                    let draining = self.app.is_draining();
                    if let Some(slot) = self.slots[idx].as_mut() {
                        for request in &job.requests {
                            let keep_alive = request.keep_alive() && !draining;
                            let bytes =
                                serialize_response(&queue_full_response(), keep_alive);
                            slot.conn.enqueue(bytes, keep_alive, now);
                        }
                    }
                }
                // The loop owns the only sender, so the channel cannot
                // close while this runs; treat it like queue-full.
                Err(TrySendError::Closed(_)) => {}
            },
        }
    }

    /// Applies a worker's completed batch. Stale tokens (reaped
    /// connection, recycled slot) drop the bytes on the floor — the
    /// requests were still executed and counted.
    fn on_done(&mut self, done: Done) {
        self.dispatched = self.dispatched.saturating_sub(1);
        let idx = (done.token & u32::MAX as u64) as usize;
        let gen = (done.token >> 32) as u32;
        if idx >= self.slots.len() || self.gens[idx] != gen || self.slots[idx].is_none() {
            return;
        }
        let now = self.now_ns();
        if let Some(slot) = self.slots[idx].as_mut() {
            slot.conn.complete(done.bytes, done.keep_alive, now);
        }
        self.pump(idx);
    }

    /// Reconciles the poller's interest set with what the connection
    /// actually wants right now.
    fn update_interest(&mut self, idx: usize) {
        let Some(slot) = self.slots[idx].as_mut() else { return };
        let want_read = slot.conn.wants_read();
        let want_write = slot.conn.has_output();
        if want_read == slot.reg_read && want_write == slot.reg_write {
            return;
        }
        let token = ((self.gens[idx] as u64) << 32) | idx as u64;
        if self.poller.modify(slot.fd, token, want_read, want_write).is_ok() {
            slot.reg_read = want_read;
            slot.reg_write = want_write;
        }
    }

    /// Reaps connections whose active budget has expired.
    fn sweep_timeouts(&mut self) {
        let now = self.now_ns();
        for idx in 0..self.slots.len() {
            let expired = match self.slots[idx].as_ref() {
                Some(slot) => slot.conn.check_deadline(now, &self.timeouts),
                None => None,
            };
            if let Some(reason) = expired {
                self.close(idx, Some(reason));
            }
        }
    }

    /// First-pass drain work, safe to call every iteration: stop
    /// listening, then close connections with nothing in flight.
    fn begin_drain(&mut self) {
        if self.listener.take().is_some() {
            // webre::allow(dropped-result): the listener closes either way
            let _ = self.poller.deregister(self.listener_fd);
        }
        for idx in 0..self.slots.len() {
            let idle = match self.slots[idx].as_ref() {
                Some(slot) => {
                    slot.conn.state() == ConnState::Reading
                        && !slot.conn.has_output()
                        && !slot.conn.mid_request()
                        && !slot.conn.close_pending()
                }
                None => false,
            };
            if idle {
                self.close(idx, None);
            }
        }
    }

    /// Removes and closes a connection. `reap: Some(..)` records the
    /// timeout category and (for read/idle) sends a best-effort 408 so
    /// well-behaved slow peers know to retry on a fresh connection.
    fn close(&mut self, idx: usize, reap: Option<CloseReason>) {
        let Some(mut slot) = self.slots[idx].take() else { return };
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.open -= 1;
        self.app.metrics.open_connections.fetch_sub(1, Ordering::Relaxed);
        // webre::allow(dropped-result): the descriptor closes either way
        let _ = self.poller.deregister(slot.fd);
        match reap {
            Some(CloseReason::ReadTimeout) => {
                self.app.metrics.reaped_read.fetch_add(1, Ordering::Relaxed);
                courtesy_timeout_reply(&mut slot.conn);
            }
            Some(CloseReason::IdleTimeout) => {
                self.app.metrics.reaped_idle.fetch_add(1, Ordering::Relaxed);
                courtesy_timeout_reply(&mut slot.conn);
            }
            Some(CloseReason::WriteTimeout) => {
                self.app.metrics.reaped_write.fetch_add(1, Ordering::Relaxed);
            }
            Some(CloseReason::PeerClosed) | Some(CloseReason::Error) | None => {}
        }
        // Dropping the slot closes the socket. If a batch is still with
        // the workers, its Done arrives with a stale generation and is
        // discarded in `on_done`.
    }

    /// Drains the wake pipe so level-triggered polling quiesces.
    fn drain_wake(&mut self) {
        #[cfg(unix)]
        {
            let mut buf = [0u8; 64];
            loop {
                match self.wake_rx.read(&mut buf) {
                    Ok(0) => break,
                    Ok(_) => continue,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break, // WouldBlock: fully drained
                }
            }
        }
    }
}

/// One best-effort non-blocking 408 at reap time. The socket is closing
/// regardless; a slow-but-honest client (e.g. the scale fleet's
/// round-trip prober) sees the status and retries on a new connection.
fn courtesy_timeout_reply(conn: &mut Conn<TcpStream>) {
    let bytes = serialize_response(&error_response(&HttpError::Io("read timed out".into())), false);
    // webre::allow(dropped-result): courtesy only; the close is the signal
    let _ = conn.socket_mut().write(&bytes);
}

/// The admission-control shed response.
fn shed_response(retry_after_secs: u64) -> Response {
    Response::text(
        429,
        "server is over its deadline budget; retry later\n",
    )
    .with_header("retry-after", retry_after_secs.to_string())
}

/// The structural-backpressure (bounded queue full) response.
fn queue_full_response() -> Response {
    Response::text(
        429,
        "server is at capacity (queue full); retry later\n",
    )
    .with_header("retry-after", "1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let config = ServeConfig::default();
        assert_eq!(config.workers, 4);
        assert!(config.queue_cap >= config.workers);
        assert!(config.max_body >= 64 * 1024);
        assert!(config.deadline.is_none(), "shedding is opt-in");
        assert!(config.idle_timeout >= config.read_timeout);
    }

    #[test]
    fn start_serve_drain_join_without_traffic() {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            ..ServeConfig::default()
        };
        let server = Server::start(config, Engine::resume_domain()).expect("bind");
        assert_ne!(server.local_addr().port(), 0);
        server.request_drain();
        server.join(); // must not hang
    }
}
