//! The server proper: listener, acceptor, lifecycle.
//!
//! ```text
//!            accept            bounded queue           workers
//!   TCP ───▶ acceptor ──try_send──▶ [cap N] ──recv──▶ pool (M threads)
//!                │ Full(stream)                          │
//!                └──▶ 429 inline                         └──▶ handle()
//! ```
//!
//! Backpressure is structural: the acceptor never blocks on the queue.
//! When `try_send` reports the queue full, the connection is answered
//! `429 Too Many Requests` inline and closed — the server sheds load
//! instead of buffering unboundedly or hanging.
//!
//! Graceful drain: `POST /shutdown` (handled by a worker) flips
//! [`App::draining`]. The acceptor polls the flag between accepts (the
//! listener runs non-blocking with a short sleep, so no self-connect
//! trick is needed), stops accepting, and drops its queue sender; the
//! substrate channel contract then lets workers finish every queued
//! connection before `recv` returns `None` and they exit. [`Server::join`]
//! returns once all of that has happened.

use crate::engine::Engine;
use crate::handlers::App;
use crate::obs::ObsLayer;
use crate::persist::{CorpusStore, StoreConfig};
use crate::pool::{Limits, WorkerPool};
use crate::state::LiveCorpus;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;
use webre_substrate::http::{write_response, Response};
use webre_substrate::sync::{bounded, Sender, TrySendError};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080`. Port `0` picks an ephemeral
    /// port (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads.
    pub workers: usize,
    /// Bounded queue capacity; connections beyond it get 429.
    pub queue_cap: usize,
    /// `/convert` cache capacity in entries; `0` disables caching.
    pub cache_cap: usize,
    /// Maximum request body in bytes.
    pub max_body: usize,
    /// Socket read deadline per request.
    pub read_timeout: Duration,
    /// Data directory for WAL + snapshot persistence; `None` keeps the
    /// corpus in memory only.
    pub data_dir: Option<PathBuf>,
    /// Corpus shard count (for a fresh data directory; an existing one
    /// keeps its recorded count).
    pub shards: usize,
    /// WAL records per fsync batch, per shard.
    pub sync_every: usize,
    /// Minimum WAL tail length before shard compaction can trigger.
    pub compact_min: usize,
    /// `POST /map` reject budget (`--map-budget`); `None` maps
    /// everything regardless of edit cost.
    pub map_budget: Option<u32>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".to_owned(),
            workers: 4,
            queue_cap: 128,
            cache_cap: 1024,
            max_body: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            data_dir: None,
            shards: 4,
            sync_every: 64,
            compact_min: 1024,
            map_budget: None,
        }
    }
}

/// A running server. Dropping the handle does not stop it; call
/// [`Server::join`] (after `/shutdown`) for an orderly exit.
pub struct Server {
    addr: SocketAddr,
    app: Arc<App>,
    acceptor: std::thread::JoinHandle<()>,
    pool: WorkerPool,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately.
    pub fn start(config: ServeConfig, engine: Engine) -> io::Result<Server> {
        Server::start_with_obs(config, engine, ObsLayer::default())
    }

    /// [`Server::start`] with an explicit observability layer — pass a
    /// layer built over a trace recorder to capture per-request span
    /// trees (`webre serve --trace-out`).
    pub fn start_with_obs(
        config: ServeConfig,
        engine: Engine,
        obs: ObsLayer,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking so the acceptor can poll the drain flag even when
        // no connection ever arrives.
        listener.set_nonblocking(true)?;
        let corpus = match &config.data_dir {
            None => LiveCorpus::in_memory(config.shards),
            Some(dir) => {
                let (store, sharded, report) = CorpusStore::open(&StoreConfig {
                    data_dir: dir.clone(),
                    shards: config.shards,
                    sync_every: config.sync_every,
                    compact_min: config.compact_min,
                })?;
                for warning in &report.warnings {
                    eprintln!("warning: {warning}");
                }
                if report.docs > 0 {
                    eprintln!(
                        "replayed {} document(s) across {} shard(s) from {}",
                        report.docs,
                        report.shards,
                        dir.display()
                    );
                }
                LiveCorpus::durable(sharded, store)
            }
        };
        let app = Arc::new(
            App::with_corpus(engine, config.cache_cap, config.workers, obs, corpus)
                .with_map_budget(config.map_budget),
        );
        let (tx, rx) = bounded::<TcpStream>(config.queue_cap);
        let limits = Limits {
            max_body: config.max_body,
            read_timeout: config.read_timeout,
            write_timeout: config.read_timeout,
        };
        let pool = WorkerPool::spawn(config.workers, rx, Arc::clone(&app), limits)?;
        let acceptor = {
            let app = Arc::clone(&app);
            std::thread::Builder::new()
                .name("webre-serve-acceptor".to_owned())
                .spawn(move || accept_loop(&listener, &tx, &app))?
        };
        Ok(Server {
            addr,
            app,
            acceptor,
            pool,
        })
    }

    /// The bound address (resolves port `0` to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared application state (metrics, corpus, drain flag).
    pub fn app(&self) -> Arc<App> {
        Arc::clone(&self.app)
    }

    /// Requests drain without a network round-trip (equivalent to
    /// `POST /shutdown`).
    pub fn request_drain(&self) {
        self.app.draining.store(true, Ordering::SeqCst);
    }

    /// Waits for the acceptor to stop and every queued connection to be
    /// served. Only returns after `/shutdown` (or [`Server::request_drain`])
    /// has been issued.
    pub fn join(self) {
        let _ = self.acceptor.join();
        // The acceptor dropped its sender on exit; workers drain the
        // queue and then see the channel close.
        self.pool.join();
        // Every accepted write is in the log by now; force the final
        // fsync batch out so a drained server is fully durable.
        if let Err(e) = self.app.corpus.sync_to_disk() {
            eprintln!("warning: final corpus sync failed: {e}");
        }
    }
}

/// How long the acceptor sleeps when no connection is pending. Bounds
/// drain-notice latency; irrelevant under load (accept succeeds without
/// sleeping).
const ACCEPT_POLL: Duration = Duration::from_millis(2);

fn accept_loop(listener: &TcpListener, jobs: &Sender<TcpStream>, app: &App) {
    loop {
        if app.is_draining() {
            return; // drops `jobs`' sender clone → workers drain + exit
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            // Transient accept errors (e.g. ECONNABORTED): keep serving.
            Err(_) => continue,
        };
        app.metrics.connections.fetch_add(1, Ordering::Relaxed);
        match jobs.try_send(stream) {
            Ok(()) => {
                app.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Full(stream)) => {
                app.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                reject(stream);
            }
            Err(TrySendError::Closed(_)) => return,
        }
    }
}

/// Answers 429 inline from the acceptor thread and closes. Never blocks
/// long: the socket gets a short write deadline first.
fn reject(mut stream: TcpStream) {
    // A deadline-less socket here could block the acceptor; skip the
    // courtesy reply and just close, which sheds load either way.
    if stream.set_write_timeout(Some(Duration::from_millis(250))).is_err() {
        return;
    }
    let response = Response::text(
        429,
        "server is at capacity (queue full); retry later\n",
    )
    .with_header("retry-after", "1");
    // the 429 is a courtesy; if the peer is gone,
    // webre::allow(dropped-result): the close alone communicates rejection
    let _ = write_response(&mut stream, &response, false);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let config = ServeConfig::default();
        assert_eq!(config.workers, 4);
        assert!(config.queue_cap >= config.workers);
        assert!(config.max_body >= 64 * 1024);
    }

    #[test]
    fn start_serve_drain_join_without_traffic() {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            ..ServeConfig::default()
        };
        let server = Server::start(config, Engine::resume_domain()).expect("bind");
        assert_ne!(server.local_addr().port(), 0);
        server.request_drain();
        server.join(); // must not hang
    }
}
