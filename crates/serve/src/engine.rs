//! The pipeline bundle a server instance runs: converter, miner, DTD
//! configuration.
//!
//! This mirrors the `webre::Pipeline` facade without depending on the
//! facade crate (which re-exports *this* crate — the dependency points
//! the other way). The CLI builds an [`Engine`] from whatever pipeline
//! its flags configured; tests and the differential oracle use
//! [`Engine::resume_domain`].

use webre_convert::{ConvertStats, Converter};
use webre_schema::{DtdConfig, FrequentPathMiner};
use webre_xml::XmlDocument;

/// Everything the serving layer needs to convert documents and discover
/// schemas. Immutable after construction; shared read-only across
/// workers.
#[derive(Clone, Debug)]
pub struct Engine {
    /// HTML → concept-tagged XML conversion.
    pub converter: Converter,
    /// Frequent-path mining thresholds and constraints.
    pub miner: FrequentPathMiner,
    /// DTD derivation thresholds.
    pub dtd_config: DtdConfig,
}

impl Engine {
    /// The paper's resume domain, mirroring `Pipeline::resume_domain`.
    pub fn resume_domain() -> Self {
        Engine {
            converter: Converter::new(webre_concepts::resume::concepts()),
            miner: FrequentPathMiner {
                constraints: Some(webre_concepts::resume::constraints()),
                ..FrequentPathMiner::default()
            },
            dtd_config: DtdConfig::default(),
        }
    }

    /// Converts one HTML document to the exact pretty-printed XML text
    /// the batch CLI emits (the byte-level serve ≡ batch contract).
    pub fn convert_to_xml(&self, html: &str) -> (XmlDocument, ConvertStats, String) {
        self.convert_to_xml_obs(html, webre_obs::Ctx::disabled())
    }

    /// [`Engine::convert_to_xml`] with observability; the output is
    /// identical.
    pub fn convert_to_xml_obs(
        &self,
        html: &str,
        ctx: webre_obs::Ctx<'_>,
    ) -> (XmlDocument, ConvertStats, String) {
        let (doc, stats) = self.converter.convert_str_obs(html, ctx);
        let text = webre_xml::to_xml_pretty(&doc);
        (doc, stats, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resume_engine_converts_like_the_batch_converter() {
        let engine = Engine::resume_domain();
        let html = "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li></ul>";
        let (doc, stats, text) = engine.convert_to_xml(html);
        assert_eq!(doc.root_name(), "resume");
        assert!(stats.tokens_identified > 0);
        let batch = Converter::new(webre_concepts::resume::concepts())
            .convert_str(html)
            .0;
        assert_eq!(text, webre_xml::to_xml_pretty(&batch));
    }
}
