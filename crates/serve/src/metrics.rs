//! Plain-text server metrics: request counters, queue depth, latency
//! histograms, worker utilization.
//!
//! Everything is a relaxed atomic — metrics must never contend with the
//! request path. The output format is Prometheus-flavoured plain text
//! (`name{label="value"} number`, one sample per line) so it is both
//! greppable by the verify smoke gate and scrapable by real tooling.
//!
//! Latency is recorded in power-of-two microsecond buckets
//! (`≤1µs, ≤2µs, …, ≤2³⁰µs ≈ 18min`, plus overflow), which bounds the
//! histogram at 32 counters per endpoint while still resolving both
//! cache hits (microseconds) and heavyweight conversions
//! (milliseconds-to-seconds). The bucketing scheme is shared with the
//! per-stage pipeline aggregates (`webre_obs::hist::PowHistogram`), so
//! endpoint and stage latencies line up bucket-for-bucket.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};
use webre_obs::hist::{upper_bound, PowHistogram};

/// The endpoints metrics are tracked for, in render order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /convert`
    Convert,
    /// `POST /map`
    Map,
    /// `POST /corpus/docs`
    CorpusDocs,
    /// `POST /corpus/xml`
    CorpusXml,
    /// `GET /corpus/table`
    CorpusTable,
    /// `GET /schema`
    Schema,
    /// `GET /schema/dtd`
    SchemaDtd,
    /// `GET /metrics`
    Metrics,
    /// `GET /healthz`
    Healthz,
    /// `POST /shutdown`
    Shutdown,
    /// Anything that did not resolve to a route (404/405/400…).
    Other,
}

impl Endpoint {
    /// Every endpoint, in render order.
    pub const ALL: [Endpoint; 11] = [
        Endpoint::Convert,
        Endpoint::Map,
        Endpoint::CorpusDocs,
        Endpoint::CorpusXml,
        Endpoint::CorpusTable,
        Endpoint::Schema,
        Endpoint::SchemaDtd,
        Endpoint::Metrics,
        Endpoint::Healthz,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// The metrics label.
    pub fn label(self) -> &'static str {
        match self {
            Endpoint::Convert => "convert",
            Endpoint::Map => "map",
            Endpoint::CorpusDocs => "corpus_docs",
            Endpoint::CorpusXml => "corpus_xml",
            Endpoint::CorpusTable => "corpus_table",
            Endpoint::Schema => "schema",
            Endpoint::SchemaDtd => "schema_dtd",
            Endpoint::Metrics => "metrics",
            Endpoint::Healthz => "healthz",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Endpoint::Convert => 0,
            Endpoint::Map => 1,
            Endpoint::CorpusDocs => 2,
            Endpoint::CorpusXml => 3,
            Endpoint::CorpusTable => 4,
            Endpoint::Schema => 5,
            Endpoint::SchemaDtd => 6,
            Endpoint::Metrics => 7,
            Endpoint::Healthz => 8,
            Endpoint::Shutdown => 9,
            Endpoint::Other => 10,
        }
    }
}

#[derive(Default)]
struct EndpointStats {
    requests: AtomicU64,
    total_us: AtomicU64,
    hist: PowHistogram,
}

/// Shared server metrics. One instance per server, shared by acceptor
/// and workers.
pub struct Metrics {
    started: Instant,
    workers: usize,
    endpoints: [EndpointStats; 11],
    /// Connections accepted (including ones answered 429).
    pub connections: AtomicU64,
    /// Connections rejected with 429 because the queue was full.
    pub rejected: AtomicU64,
    /// Requests that failed to parse (answered 400/413/408).
    pub bad_requests: AtomicU64,
    /// Handler panics caught and answered with 500.
    pub panics: AtomicU64,
    /// Jobs currently queued (incremented on enqueue, decremented on
    /// worker pickup).
    pub queue_depth: AtomicI64,
    /// Total nanoseconds workers spent serving connections.
    pub busy_ns: AtomicU64,
    /// Requests shed by admission control (429 + retry-after).
    pub shed: AtomicU64,
    /// Connections reaped because a partial request outlived the read
    /// budget (slow-loris defense).
    pub reaped_read: AtomicU64,
    /// Keep-alive connections reaped for idling past the idle budget.
    pub reaped_idle: AtomicU64,
    /// Connections reaped because the peer stopped draining responses.
    pub reaped_write: AtomicU64,
    /// Connections currently owned by the event loop.
    pub open_connections: AtomicI64,
    /// Worker-path requests currently executing in a handler. Inline
    /// fast-path requests are excluded on purpose: they run on the
    /// event loop (a stall there stops *everything*, detectable on its
    /// own), and `/metrics` itself is fast-path — counting it would
    /// make every scrape observe itself and the gauge could never read
    /// zero over HTTP.
    pub in_flight: AtomicI64,
}

impl Metrics {
    /// Fresh metrics for a pool of `workers` threads.
    pub fn new(workers: usize) -> Self {
        Metrics {
            started: Instant::now(),
            workers: workers.max(1),
            endpoints: Default::default(),
            connections: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            bad_requests: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            queue_depth: AtomicI64::new(0),
            busy_ns: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            reaped_read: AtomicU64::new(0),
            reaped_idle: AtomicU64::new(0),
            reaped_write: AtomicU64::new(0),
            open_connections: AtomicI64::new(0),
            in_flight: AtomicI64::new(0),
        }
    }

    /// Records one served request.
    pub fn record(&self, endpoint: Endpoint, elapsed: Duration) {
        let stats = &self.endpoints[endpoint.index()];
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        stats.total_us.fetch_add(us, Ordering::Relaxed);
        stats.hist.record(us);
    }

    /// Total requests served across endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the plain-text exposition. `extra` carries lines owned by
    /// other components (the cache appends its own counters).
    pub fn render(&self, extra: &str) -> String {
        let mut out = String::with_capacity(2048);
        let uptime = self.started.elapsed();
        out.push_str(&format!("uptime_seconds {:.3}\n", uptime.as_secs_f64()));
        out.push_str(&format!(
            "connections_accepted_total {}\n",
            self.connections.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "requests_rejected_total{{reason=\"queue_full\"}} {}\n",
            self.rejected.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "requests_bad_total {}\n",
            self.bad_requests.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "worker_panics_total {}\n",
            self.panics.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "queue_depth {}\n",
            self.queue_depth.load(Ordering::Relaxed).max(0)
        ));
        let busy = self.busy_ns.load(Ordering::Relaxed) as f64;
        let wall = (uptime.as_nanos() as f64 * self.workers as f64).max(1.0);
        out.push_str(&format!(
            "worker_utilization_ratio {:.4}\n",
            (busy / wall).min(1.0)
        ));
        out.push_str(&format!("workers {}\n", self.workers));
        out.push_str(&format!(
            "requests_rejected_total{{reason=\"deadline\"}} {}\n",
            self.shed.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "connections_reaped_total{{reason=\"read_timeout\"}} {}\n",
            self.reaped_read.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "connections_reaped_total{{reason=\"idle_timeout\"}} {}\n",
            self.reaped_idle.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "connections_reaped_total{{reason=\"write_timeout\"}} {}\n",
            self.reaped_write.load(Ordering::Relaxed)
        ));
        out.push_str(&format!(
            "connections_open {}\n",
            self.open_connections.load(Ordering::Relaxed).max(0)
        ));
        out.push_str(&format!(
            "requests_in_flight {}\n",
            self.in_flight.load(Ordering::Relaxed).max(0)
        ));
        for endpoint in Endpoint::ALL {
            let stats = &self.endpoints[endpoint.index()];
            let requests = stats.requests.load(Ordering::Relaxed);
            out.push_str(&format!(
                "requests_total{{endpoint=\"{}\"}} {requests}\n",
                endpoint.label()
            ));
            if requests == 0 {
                continue;
            }
            out.push_str(&format!(
                "latency_us_sum{{endpoint=\"{}\"}} {}\n",
                endpoint.label(),
                stats.total_us.load(Ordering::Relaxed)
            ));
            // Cumulative buckets, empty ones elided; +Inf always printed.
            let mut cumulative = 0u64;
            for (i, count) in stats.hist.counts().iter().enumerate() {
                if *count == 0 {
                    continue;
                }
                cumulative += count;
                // Bucket i holds samples ≤ 2^i µs (i = 0 → ≤ 1µs).
                let le = match upper_bound(i) {
                    Some(bound) => format!("{bound}"),
                    None => "+Inf".to_owned(),
                };
                out.push_str(&format!(
                    "latency_us_bucket{{endpoint=\"{}\",le=\"{le}\"}} {cumulative}\n",
                    endpoint.label()
                ));
            }
            out.push_str(&format!(
                "latency_us_bucket{{endpoint=\"{}\",le=\"+Inf\"}} {requests}\n",
                endpoint.label()
            ));
        }
        out.push_str(extra);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fills_the_right_bucket() {
        let metrics = Metrics::new(2);
        metrics.record(Endpoint::Convert, Duration::from_micros(3));
        metrics.record(Endpoint::Convert, Duration::from_micros(100));
        metrics.record(Endpoint::Healthz, Duration::from_micros(0));
        assert_eq!(metrics.total_requests(), 3);
        let text = metrics.render("");
        assert!(text.contains("requests_total{endpoint=\"convert\"} 2"), "{text}");
        assert!(text.contains("requests_total{endpoint=\"healthz\"} 1"), "{text}");
        // 3µs lands in the ≤4µs bucket; 100µs in ≤128µs.
        assert!(text.contains("latency_us_bucket{endpoint=\"convert\",le=\"4\"} 1"), "{text}");
        assert!(
            text.contains("latency_us_bucket{endpoint=\"convert\",le=\"128\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("latency_us_bucket{endpoint=\"convert\",le=\"+Inf\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn render_appends_extra_lines_and_core_gauges() {
        let metrics = Metrics::new(4);
        metrics.rejected.fetch_add(3, Ordering::Relaxed);
        metrics.queue_depth.store(5, Ordering::Relaxed);
        let text = metrics.render("cache_hits_total 7\n");
        assert!(text.contains("requests_rejected_total{reason=\"queue_full\"} 3"), "{text}");
        assert!(text.contains("queue_depth 5"), "{text}");
        assert!(text.contains("workers 4"), "{text}");
        assert!(text.contains("cache_hits_total 7"), "{text}");
        assert!(text.contains("worker_utilization_ratio"), "{text}");
    }

    #[test]
    fn readiness_core_counters_render_with_reason_labels() {
        let metrics = Metrics::new(2);
        metrics.shed.fetch_add(9, Ordering::Relaxed);
        metrics.reaped_read.fetch_add(4, Ordering::Relaxed);
        metrics.reaped_idle.fetch_add(2, Ordering::Relaxed);
        metrics.reaped_write.fetch_add(1, Ordering::Relaxed);
        metrics.open_connections.store(12, Ordering::Relaxed);
        metrics.in_flight.store(-1, Ordering::Relaxed); // transient skew
        let text = metrics.render("");
        assert!(text.contains("requests_rejected_total{reason=\"deadline\"} 9"), "{text}");
        assert!(text.contains("connections_reaped_total{reason=\"read_timeout\"} 4"), "{text}");
        assert!(text.contains("connections_reaped_total{reason=\"idle_timeout\"} 2"), "{text}");
        assert!(text.contains("connections_reaped_total{reason=\"write_timeout\"} 1"), "{text}");
        assert!(text.contains("connections_open 12"), "{text}");
        assert!(text.contains("requests_in_flight 0"), "gauges clamp at zero: {text}");
    }

    #[test]
    fn every_endpoint_has_a_distinct_label() {
        let mut labels: Vec<&str> = Endpoint::ALL.iter().map(|e| e.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Endpoint::ALL.len());
    }
}
