//! Request handling over the shared application state.
//!
//! [`handle`] is a pure-ish function `(App, Request) → Response`: no
//! socket I/O happens here, which is what lets the cache-on ≡ cache-off
//! property test and the unit tests below drive the full endpoint logic
//! without a listener. The worker pool wraps [`handle`] in
//! `catch_unwind`; everything fallible inside runs *before* any shared
//! lock is taken so a panic cannot corrupt `App` state.

use crate::cache::{content_hash, ShardedLru};
use crate::engine::Engine;
use crate::metrics::Metrics;
use crate::obs::ObsLayer;
use crate::router::{route, Route};
use crate::state::LiveCorpus;
use std::sync::atomic::{AtomicBool, Ordering};
use webre_convert::ConvertStats;
use webre_map::{MapPlanner, MapTier};
use webre_obs::{stage, Ctx};
use webre_schema::extract_paths;
use webre_substrate::http::{Request, Response};
use webre_substrate::json::{Json, ToJson};

/// Shared server state: engine, cache, live corpus, metrics, and the
/// drain flag. One instance per server, `Arc`-shared across workers.
pub struct App {
    /// The pipeline this server runs.
    pub engine: Engine,
    /// `/convert` response cache.
    pub cache: ShardedLru,
    /// `/corpus/docs` + `/schema` state.
    pub corpus: LiveCorpus,
    /// Counters and histograms.
    pub metrics: Metrics,
    /// Per-stage span recording (stats for `/metrics`, optional trace).
    pub obs: ObsLayer,
    /// Set by `/shutdown`; the acceptor polls it and workers stop
    /// keep-alive once draining.
    pub draining: AtomicBool,
    /// Reject budget for `POST /map`: documents whose edit cost provably
    /// exceeds this are answered 422 without running the exact tier.
    /// `None` (the default) maps everything.
    pub map_budget: Option<u32>,
}

impl App {
    /// Fresh state for `workers` worker threads and a `cache_cap`-entry
    /// cache.
    pub fn new(engine: Engine, cache_cap: usize, workers: usize) -> Self {
        App::with_obs(engine, cache_cap, workers, ObsLayer::default())
    }

    /// [`App::new`] with an explicit observability layer (the server
    /// passes a tracing layer when started with a trace recorder).
    pub fn with_obs(engine: Engine, cache_cap: usize, workers: usize, obs: ObsLayer) -> Self {
        App::with_corpus(engine, cache_cap, workers, obs, LiveCorpus::new())
    }

    /// [`App::with_obs`] over an explicit corpus — the server passes a
    /// sharded (and possibly durable, WAL-replayed) [`LiveCorpus`].
    pub fn with_corpus(
        engine: Engine,
        cache_cap: usize,
        workers: usize,
        obs: ObsLayer,
        corpus: LiveCorpus,
    ) -> Self {
        App {
            engine,
            cache: ShardedLru::new(cache_cap),
            corpus,
            metrics: Metrics::new(workers),
            obs,
            draining: AtomicBool::new(false),
            map_budget: None,
        }
    }

    /// Sets the `POST /map` reject budget (the `--map-budget` knob).
    pub fn with_map_budget(mut self, budget: Option<u32>) -> Self {
        self.map_budget = budget;
        self
    }

    /// Whether `/shutdown` has been requested.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// Dispatches one parsed request. Infallible by contract: every error
/// becomes a status-coded response.
pub fn handle(app: &App, request: &Request) -> Response {
    handle_obs(app, request, Ctx::disabled())
}

/// [`handle`] with observability: pipeline stages invoked by the
/// handlers record spans and counters under `ctx` (the worker pool
/// passes a context parented at the per-request span). The response is
/// identical.
pub fn handle_obs(app: &App, request: &Request, ctx: Ctx<'_>) -> Response {
    let resolved = match route(&request.method, request.path()) {
        Ok(route) => route,
        Err(response) => return response,
    };
    match resolved {
        Route::Convert => convert(app, &request.body, ctx),
        Route::Map => map(app, &request.body, ctx),
        Route::CorpusDocs => corpus_docs(app, &request.body, ctx),
        Route::CorpusXml => corpus_xml(app, &request.body),
        Route::CorpusTable => corpus_table(app),
        Route::Schema => schema(app, false, ctx),
        Route::SchemaDtd => schema(app, true, ctx),
        Route::Metrics => metrics(app),
        Route::Healthz => Response::text(200, "ok\n"),
        Route::Shutdown => shutdown(app),
    }
}

/// Whether `request` can be answered on the event-loop thread without
/// occupying a worker: constant-time endpoints always, `/convert` only
/// when the body's XML is already resident in the cache (the probe
/// counts nothing, so cache statistics stay exact). Routing failures
/// (404/405) are constant-time too. Everything else — cold conversions,
/// mapping, corpus writes — goes through the dispatch queue where
/// admission control can shed it.
pub fn fast_eligible(app: &App, request: &Request) -> bool {
    match route(&request.method, request.path()) {
        Ok(Route::Healthz) | Ok(Route::Metrics) | Ok(Route::Shutdown) => true,
        Ok(Route::Convert) => app.cache.contains(content_hash(&request.body)),
        Ok(_) => false,
        Err(_) => true,
    }
}

/// `POST /convert`: HTML → pretty-printed concept-tagged XML, through
/// the content-hash cache.
fn convert(app: &App, body: &[u8], ctx: Ctx<'_>) -> Response {
    let key = content_hash(body);
    if let Some(cached) = app.cache.get(key) {
        return Response::xml(200, cached.as_str()).with_header("x-cache", "hit");
    }
    let html = String::from_utf8_lossy(body);
    let (_, _, xml) = app.engine.convert_to_xml_obs(&html, ctx);
    let xml = std::sync::Arc::new(xml);
    app.cache.insert(key, std::sync::Arc::clone(&xml));
    Response::xml(200, xml.as_str()).with_header("x-cache", "miss")
}

/// Distinguishes `/map` cache entries from `/convert` entries sharing
/// the same body bytes.
const MAP_CACHE_TAG: u64 = 0x6D61_702F_7631;

/// A JSON response (the substrate codec has no dedicated constructor).
fn json_response(status: u16, body: impl Into<String>) -> Response {
    let mut response = Response::text(status, body);
    response.content_type = "application/json".into();
    response
}

/// `POST /map`: HTML body → convert → tiered mapping onto the current
/// majority schema/DTD. 200 with `{tier, cost, xml, script, …}` JSON on
/// success (cached per corpus version), 422 when the edit cost exceeds
/// the configured budget (cheap to recompute, so never cached), 404
/// while no schema exists.
fn map(app: &App, body: &[u8], ctx: Ctx<'_>) -> Response {
    let snapshot = app.corpus.snapshot_obs(&app.engine, ctx);
    let Some((schema, dtd)) = snapshot.mapping.as_ref() else {
        return Response::text(
            404,
            "no schema yet: corpus is empty or its root is below the support threshold\n",
        );
    };
    // Key mixes the body hash with the corpus version (a new schema must
    // never serve stale mappings) and a tag distinct from `/convert`.
    let key = content_hash(body)
        ^ snapshot.version.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ MAP_CACHE_TAG;
    if let Some(cached) = app.cache.get(key) {
        return json_response(200, cached.as_str()).with_header("x-cache", "hit");
    }
    let html = String::from_utf8_lossy(body);
    let (doc, _) = app.engine.converter.convert_str_obs(&html, ctx);
    let planner = MapPlanner {
        budget: app.map_budget,
        ..MapPlanner::default()
    };
    let planned = {
        let scope = ctx.span(stage::MAP);
        planner.plan_obs(&doc, schema, dtd, scope.ctx())
    };
    let json = format!("{}\n", webre_map::render_json(&planned, app.map_budget));
    if planned.tier == MapTier::Rejected {
        return json_response(422, json).with_header("x-cache", "miss");
    }
    let json = std::sync::Arc::new(json);
    app.cache.insert(key, std::sync::Arc::clone(&json));
    json_response(200, json.as_str()).with_header("x-cache", "miss")
}

/// `POST /corpus/docs`: convert, then accrete into the live corpus.
fn corpus_docs(app: &App, body: &[u8], ctx: Ctx<'_>) -> Response {
    let html = String::from_utf8_lossy(body);
    // Conversion (the fallible, slow part) happens before the corpus
    // lock inside `accrete` is ever taken.
    let (doc, stats) = app.engine.converter.convert_str_obs(&html, ctx);
    accreted(app.corpus.accrete(&doc, &stats))
}

/// `POST /corpus/xml`: accrete an already-converted document without
/// running HTML conversion — the high-throughput ingest path the scale
/// harness streams synthetic corpora through.
fn corpus_xml(app: &App, body: &[u8]) -> Response {
    let Ok(text) = std::str::from_utf8(body) else {
        return Response::text(400, "body is not UTF-8\n");
    };
    let doc = match webre_xml::parse_xml(text) {
        Ok(doc) => doc,
        Err(e) => return Response::text(400, format!("bad xml: {e}\n")),
    };
    // Route by the raw body hash: cheaper than re-serializing, and any
    // deterministic content hash yields the same mining result (the
    // shard-merge-vs-batch identity is split-independent).
    let hash = webre_substrate::wal::checksum(body);
    let paths = extract_paths(&doc);
    accreted(
        app.corpus
            .accrete_paths(hash, paths, &ConvertStats::default()),
    )
}

/// Renders an accretion result: 202 + JSON on success, 500 when the
/// write-ahead log could not be appended.
fn accreted(result: std::io::Result<(u64, usize)>) -> Response {
    let (version, docs) = match result {
        Ok(outcome) => outcome,
        Err(e) => return Response::text(500, format!("corpus write failed: {e}\n")),
    };
    let reply = Json::Obj(vec![
        ("accepted".to_owned(), Json::Bool(true)),
        ("docs".to_owned(), Json::Num(docs as f64)),
        ("version".to_owned(), Json::Num(version as f64)),
    ]);
    Response::text(202, format!("{reply}\n"))
        .with_header("x-corpus-version", version.to_string())
}

/// `GET /corpus/table`: the merged frequent-path table as canonical
/// JSON — what the scale harness's checkpoint merges compare against
/// batch mining.
fn corpus_table(app: &App) -> Response {
    let (table, version, docs) = app.corpus.table();
    Response::text(200, format!("{}\n", table.to_json()))
        .with_header("x-corpus-version", version.to_string())
        .with_header("x-corpus-docs", docs.to_string())
}

/// `GET /schema` and `GET /schema/dtd`: the current snapshot.
fn schema(app: &App, dtd: bool, ctx: Ctx<'_>) -> Response {
    let snapshot = app.corpus.snapshot_obs(&app.engine, ctx);
    let text = if dtd {
        &snapshot.dtd_text
    } else {
        &snapshot.schema_text
    };
    match text {
        None => Response::text(
            404,
            "no schema yet: corpus is empty or its root is below the support threshold\n",
        ),
        Some(text) => Response::text(200, text.clone())
            .with_header("x-corpus-version", snapshot.version.to_string())
            .with_header("x-corpus-docs", snapshot.docs.to_string()),
    }
}

/// `GET /metrics`: core counters plus cache, corpus, and per-stage
/// pipeline lines.
fn metrics(app: &App) -> Response {
    let cache = app.cache.stats();
    let corpus_stats = app.corpus.stats();
    let extra = format!(
        "cache_hits_total {}\ncache_misses_total {}\ncache_entries {}\n\
         corpus_docs {}\ncorpus_shards {}\ncorpus_tokens_total {}\ncorpus_tokens_identified {}\n{}",
        cache.hits,
        cache.misses,
        cache.entries,
        app.corpus.len(),
        app.corpus.shard_count(),
        corpus_stats.tokens_total,
        corpus_stats.tokens_identified,
        app.obs.stats().render(),
    );
    Response::text(200, app.metrics.render(&extra))
}

/// `POST /shutdown`: flip the drain flag; the server notices and stops
/// accepting. Idempotent.
fn shutdown(app: &App) -> Response {
    app.draining.store(true, Ordering::SeqCst);
    Response::text(200, "draining\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            target: path.into(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
        }
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".into(),
            target: path.into(),
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    fn app() -> App {
        App::new(Engine::resume_domain(), 64, 2)
    }

    const RESUME: &str = "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li></ul>";

    #[test]
    fn convert_caches_by_content() {
        let app = app();
        let first = handle(&app, &post("/convert", RESUME));
        let second = handle(&app, &post("/convert", RESUME));
        assert_eq!(first.status, 200);
        assert_eq!(first.body, second.body);
        let header = |r: &Response| {
            r.headers
                .iter()
                .find(|(n, _)| n == "x-cache")
                .map(|(_, v)| v.clone())
        };
        assert_eq!(header(&first).as_deref(), Some("miss"));
        assert_eq!(header(&second).as_deref(), Some("hit"));
        let stats = app.cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // And the payload matches the batch pipeline byte for byte.
        let batch = app.engine.convert_to_xml(RESUME).2;
        assert_eq!(String::from_utf8(first.body).unwrap(), batch);
    }

    #[test]
    fn corpus_accretion_then_schema_and_dtd() {
        let app = app();
        assert_eq!(handle(&app, &get("/schema")).status, 404);
        for _ in 0..3 {
            let response = handle(&app, &post("/corpus/docs", RESUME));
            assert_eq!(response.status, 202);
            assert!(response.body.starts_with(b"{"), "json body expected");
        }
        let schema = handle(&app, &get("/schema"));
        assert_eq!(schema.status, 200);
        assert!(String::from_utf8(schema.body).unwrap().contains("resume"));
        let dtd = handle(&app, &get("/schema/dtd"));
        assert_eq!(dtd.status, 200);
        assert!(String::from_utf8(dtd.body).unwrap().contains("<!ELEMENT resume"));
        assert!(dtd
            .headers
            .iter()
            .any(|(n, v)| n == "x-corpus-version" && v == "3"));
    }

    #[test]
    fn corpus_xml_ingests_without_conversion() {
        let app = app();
        // Equivalent content by the two routes: converting RESUME via
        // /corpus/docs and posting the converted XML via /corpus/xml
        // must produce the same schema.
        let xml = app.engine.convert_to_xml(RESUME).2;
        for _ in 0..3 {
            let response = handle(&app, &post("/corpus/xml", &xml));
            assert_eq!(response.status, 202);
        }
        let schema = handle(&app, &get("/schema"));
        assert_eq!(schema.status, 200);
        let reference = self::app();
        for _ in 0..3 {
            handle(&reference, &post("/corpus/docs", RESUME));
        }
        assert_eq!(schema.body, handle(&reference, &get("/schema")).body);
        // Malformed bodies are rejected, not accreted.
        assert_eq!(handle(&app, &post("/corpus/xml", "<r><unclosed>")).status, 400);
        assert_eq!(app.corpus.len(), 3);
    }

    #[test]
    fn corpus_table_returns_canonical_json() {
        use webre_substrate::json::FromJson;
        let app = app();
        let empty = handle(&app, &get("/corpus/table"));
        assert_eq!(empty.status, 200);
        handle(&app, &post("/corpus/docs", RESUME));
        let response = handle(&app, &get("/corpus/table"));
        assert_eq!(response.status, 200);
        let text = String::from_utf8(response.body).unwrap();
        let json = Json::parse(text.trim()).unwrap();
        assert_eq!(json.get("docs").and_then(Json::as_f64), Some(1.0));
        // Round-trips through the schema-side codec.
        let table = webre_schema::PathTable::from_json(&json).unwrap();
        assert_eq!(table, app.corpus.table().0);
        assert!(response
            .headers
            .iter()
            .any(|(n, v)| n == "x-corpus-docs" && v == "1"));
    }

    #[test]
    fn metrics_exposes_cache_and_corpus_lines() {
        let app = app();
        handle(&app, &post("/convert", RESUME));
        handle(&app, &post("/convert", RESUME));
        handle(&app, &post("/corpus/docs", RESUME));
        let text = String::from_utf8(handle(&app, &get("/metrics")).body).unwrap();
        assert!(text.contains("cache_hits_total 1"), "{text}");
        assert!(text.contains("cache_misses_total 1"), "{text}");
        assert!(text.contains("corpus_docs 1"), "{text}");
        assert!(text.contains("queue_depth"), "{text}");
    }

    #[test]
    fn health_and_shutdown() {
        let app = app();
        assert_eq!(handle(&app, &get("/healthz")).status, 200);
        assert!(!app.is_draining());
        let response = handle(&app, &post("/shutdown", ""));
        assert_eq!(response.status, 200);
        assert!(app.is_draining());
        // Idempotent.
        assert_eq!(handle(&app, &post("/shutdown", "")).status, 200);
    }

    fn cache_header(response: &Response) -> Option<String> {
        response
            .headers
            .iter()
            .find(|(n, _)| n == "x-cache")
            .map(|(_, v)| v.clone())
    }

    #[test]
    fn map_requires_a_schema() {
        let app = app();
        assert_eq!(handle(&app, &post("/map", RESUME)).status, 404);
    }

    #[test]
    fn map_returns_planned_json_and_caches() {
        let app = app();
        for _ in 0..3 {
            handle(&app, &post("/corpus/docs", RESUME));
        }
        let first = handle(&app, &post("/map", RESUME));
        assert_eq!(first.status, 200);
        assert_eq!(first.content_type, "application/json");
        assert_eq!(cache_header(&first).as_deref(), Some("miss"));
        let second = handle(&app, &post("/map", RESUME));
        assert_eq!(cache_header(&second).as_deref(), Some("hit"));
        assert_eq!(first.body, second.body);
        // The body is exactly the batch planner's rendering.
        let snapshot = app.corpus.snapshot(&app.engine);
        let (schema, dtd) = snapshot.mapping.as_ref().unwrap();
        let (doc, _) = app.engine.converter.convert_str(RESUME);
        let planner = MapPlanner::default();
        let planned = planner.plan(&doc, schema, dtd);
        let batch = format!("{}\n", webre_map::render_json(&planned, None));
        assert_eq!(String::from_utf8(first.body).unwrap(), batch);
        let json = Json::parse(batch.trim()).expect("body parses as JSON");
        assert!(json.get("tier").and_then(Json::as_str).is_some());
    }

    #[test]
    fn map_budget_rejects_with_422_and_skips_the_cache() {
        let app = app().with_map_budget(Some(0));
        for _ in 0..3 {
            handle(&app, &post("/corpus/docs", RESUME));
        }
        // A document whose mapping needs edits: cost > 0 > budget.
        let alien = "<h2>Experience</h2><p>IBM, staff engineer</p>\
                     <h2>Education</h2><ul><li>MIT, Ph.D., 1990</li></ul>";
        let response = handle(&app, &post("/map", alien));
        if response.status == 422 {
            let text = String::from_utf8(response.body).unwrap();
            assert!(text.contains("\"tier\":\"rejected\""), "{text}");
            assert!(!text.contains("\"cost\""), "rejected bodies carry no cost: {text}");
            // Rejections are recomputed, never cached.
            let again = handle(&app, &post("/map", alien));
            assert_eq!(again.status, 422);
            assert_eq!(cache_header(&again).as_deref(), Some("miss"));
        } else {
            // The document happened to conform exactly; still a valid plan.
            assert_eq!(response.status, 200);
        }
    }

    #[test]
    fn map_cache_invalidates_when_the_corpus_grows() {
        let app = app();
        for _ in 0..3 {
            handle(&app, &post("/corpus/docs", RESUME));
        }
        let first = handle(&app, &post("/map", RESUME));
        assert_eq!(cache_header(&first).as_deref(), Some("miss"));
        assert_eq!(cache_header(&handle(&app, &post("/map", RESUME))).as_deref(), Some("hit"));
        // New corpus version → new schema snapshot → the old entry no
        // longer matches the key.
        handle(&app, &post("/corpus/docs", RESUME));
        let after = handle(&app, &post("/map", RESUME));
        assert_eq!(cache_header(&after).as_deref(), Some("miss"));
    }

    #[test]
    fn routing_errors_surface_as_responses() {
        let app = app();
        assert_eq!(handle(&app, &get("/nope")).status, 404);
        assert_eq!(handle(&app, &get("/convert")).status, 405);
    }

    #[test]
    fn convert_tolerates_non_utf8_bodies() {
        let app = app();
        let request = Request {
            method: "POST".into(),
            target: "/convert".into(),
            headers: Vec::new(),
            body: vec![b'<', b'p', b'>', 0xFF, 0xFE, b'<', b'/', b'p', b'>'],
        };
        let response = handle(&app, &request);
        assert_eq!(response.status, 200);
    }
}
