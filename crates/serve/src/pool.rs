//! The worker pool: panic-isolated threads draining the bounded job
//! queue of *complete, parsed requests*.
//!
//! Under the readiness core the pool never touches a socket. The event
//! loop ([`crate::server`]) owns every connection, parses requests
//! incrementally, and enqueues a [`Job`] — one connection's batch of
//! complete requests — only when there is real work. A worker executes
//! the batch (each request wrapped in `catch_unwind` so a panicking
//! conversion answers `500` and the worker survives), serializes the
//! responses, and pushes a [`Done`] onto the [`CompletionQueue`], waking
//! the event loop to write the bytes out.
//!
//! Ordering guarantee for observability: a request's span closes and its
//! `requests_total` counter bumps *before* its response bytes can reach
//! the peer — the worker records first and only then publishes the
//! completion, and the loop writes only published completions. That is
//! what keeps the span ≡ counter consistency tests exact on this core.
//!
//! Workers exit when the queue disconnects (the event loop drops the
//! sending side after draining), which by [`webre_substrate::sync`]'s
//! contract happens only after every queued job has been drained.

use crate::admission::Admission;
use crate::handlers::{handle_obs, App};
use crate::metrics::Endpoint;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;
use webre_obs::{stage, Ctx};
use webre_substrate::http::{write_response, HttpError, Request, Response};
use webre_substrate::sync::Receiver;

/// One connection's batch of complete requests, headed for a worker.
#[derive(Debug)]
pub struct Job {
    /// Generation-tagged connection token (slot index + generation).
    pub token: u64,
    /// Complete requests in arrival order; never empty.
    pub requests: Vec<Request>,
}

/// A worker's finished batch: serialized responses ready to write.
#[derive(Debug)]
pub struct Done {
    /// Token of the connection the bytes belong to. If the connection
    /// was reaped meanwhile the generation check drops the bytes.
    pub token: u64,
    /// Concatenated serialized responses, in request order.
    pub bytes: Vec<u8>,
    /// Whether the connection may continue after these responses.
    pub keep_alive: bool,
}

/// The worker → event-loop completion channel, with a wake-up side
/// channel so the loop never sleeps on `epoll` while results wait.
///
/// The sleep/wake handshake avoids lost wake-ups without locking the
/// queue around the poller: the loop stores `sleeping = true` *before*
/// its final emptiness check, and a worker loads `sleeping` *after* its
/// push (both `SeqCst`), so every push either lands before the final
/// check or observes `sleeping` and writes the wake byte.
pub struct CompletionQueue {
    queue: Mutex<VecDeque<Done>>,
    sleeping: AtomicBool,
    #[cfg(unix)]
    waker: Mutex<Option<std::os::unix::net::UnixStream>>,
}

impl CompletionQueue {
    /// An empty queue with no waker attached yet.
    pub fn new() -> CompletionQueue {
        CompletionQueue {
            queue: Mutex::new(VecDeque::new()),
            sleeping: AtomicBool::new(false),
            #[cfg(unix)]
            waker: Mutex::new(None),
        }
    }

    /// Attaches the write half of the event loop's wake pipe
    /// (non-blocking). Without one, `wake` is a no-op and the loop's
    /// bounded poll timeout provides the latency floor instead.
    #[cfg(unix)]
    pub fn set_waker(&self, stream: std::os::unix::net::UnixStream) {
        *lock_or_recover(&self.waker) = Some(stream);
    }

    /// Publishes a completion and wakes the loop if it may be asleep.
    pub fn push(&self, done: Done) {
        lock_or_recover(&self.queue).push_back(done);
        if self.sleeping.load(Ordering::SeqCst) {
            self.wake();
        }
    }

    /// Moves every pending completion into `out`.
    pub fn drain_into(&self, out: &mut Vec<Done>) {
        let mut queue = lock_or_recover(&self.queue);
        out.extend(queue.drain(..));
    }

    /// Declares intent to sleep; returns `false` (and cancels the
    /// intent) if completions are already pending, in which case the
    /// caller must not block.
    pub fn pre_wait(&self) -> bool {
        self.sleeping.store(true, Ordering::SeqCst);
        if lock_or_recover(&self.queue).is_empty() {
            true
        } else {
            self.sleeping.store(false, Ordering::SeqCst);
            false
        }
    }

    /// Clears the sleep intent after the poller returns.
    pub fn post_wait(&self) {
        self.sleeping.store(false, Ordering::SeqCst);
    }

    /// Nudges the event loop out of its poller wait. Also used by
    /// [`crate::server::Server::request_drain`] so a drain request is
    /// noticed immediately rather than on the next timeout sweep.
    pub fn wake(&self) {
        #[cfg(unix)]
        {
            if let Some(stream) = lock_or_recover(&self.waker).as_mut() {
                // A full pipe means a wake-up is already pending, and a
                // broken one means the loop is gone — both are fine;
                // webre::allow(dropped-result): wake is level-triggered
                let _ = stream.write(&[1]);
            }
        }
    }
}

impl Default for CompletionQueue {
    fn default() -> Self {
        CompletionQueue::new()
    }
}

/// Locks a mutex, recovering from poisoning: queue state is plain data
/// and remains consistent even if a holder panicked mid-push.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Handles to the running workers.
pub struct WorkerPool {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads consuming request batches from `jobs`.
    /// Fails if the OS refuses a thread; already-spawned workers then
    /// exit via the dropped receiver, so nothing leaks.
    pub fn spawn(
        workers: usize,
        jobs: Receiver<Job>,
        app: Arc<App>,
        admission: Arc<Admission>,
        completions: Arc<CompletionQueue>,
    ) -> io::Result<Self> {
        let mut handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let jobs = jobs.clone();
            let app = Arc::clone(&app);
            let admission = Arc::clone(&admission);
            let completions = Arc::clone(&completions);
            let handle = std::thread::Builder::new()
                .name(format!("webre-serve-worker-{i}"))
                .spawn(move || worker_loop(&jobs, &app, &admission, &completions))?;
            handles.push(handle);
        }
        Ok(WorkerPool { handles })
    }

    /// Waits for every worker to exit (the queue must be closed first or
    /// this blocks forever).
    pub fn join(self) {
        for handle in self.handles {
            // A worker that somehow panicked outside catch_unwind is
            // already dead; joining it must not cascade.
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    jobs: &Receiver<Job>,
    app: &App,
    admission: &Admission,
    completions: &CompletionQueue,
) {
    while let Some(job) = jobs.recv() {
        let n = job.requests.len();
        app.metrics.queue_depth.fetch_sub(n as i64, Ordering::Relaxed);
        admission.dequeued(n);
        let busy = Instant::now();
        let mut bytes = Vec::new();
        let mut keep_alive = true;
        for request in &job.requests {
            let (response, keep) = execute(app, Some(admission), request);
            bytes.extend_from_slice(&response);
            keep_alive = keep;
            if !keep {
                // The peer asked to close (or drain started): anything
                // pipelined after this request is void.
                break;
            }
        }
        app.metrics
            .busy_ns
            .fetch_add(busy.elapsed().as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
        completions.push(Done { token: job.token, bytes, keep_alive });
    }
}

/// Executes one request end to end: span, panic isolation, latency
/// recording, serialization. Shared by the workers and the event loop's
/// inline fast path (which passes `admission: None` so microsecond
/// fast-path requests cannot skew the queued-service-time EWMA).
pub(crate) fn execute(app: &App, admission: Option<&Admission>, request: &Request) -> (Vec<u8>, bool) {
    // Only worker-path requests count as in-flight: the inline fast
    // path serves `/metrics` itself, and counting it would make every
    // scrape observe its own request (the gauge would never read 0).
    if admission.is_some() {
        app.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
    }
    let started = Instant::now();
    // The request span opens and closes inside the unwind guard, so a
    // panicking handler still ends its span during unwinding and the
    // span tally matches `requests_total` exactly.
    let (endpoint, response) = match catch_unwind(AssertUnwindSafe(|| {
        let ctx = Ctx::new(app.obs.recorder());
        let scope = ctx.span(stage::REQUEST);
        handle_obs(app, request, scope.ctx())
    })) {
        Ok(response) => {
            let endpoint = crate::router::route(&request.method, request.path())
                .map(|r| r.endpoint())
                .unwrap_or(Endpoint::Other);
            (endpoint, response)
        }
        Err(_) => {
            app.metrics.panics.fetch_add(1, Ordering::Relaxed);
            (
                Endpoint::Other,
                Response::text(
                    500,
                    "internal error: request handler panicked (worker recovered)\n",
                ),
            )
        }
    };
    let elapsed = started.elapsed();
    app.metrics.record(endpoint, elapsed);
    if let Some(admission) = admission {
        admission.observe(elapsed);
        app.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
    // Once draining, close connections after the in-flight response so
    // keep-alive clients cannot hold the drain open.
    let keep_alive = request.keep_alive() && !app.is_draining();
    (serialize_response(&response, keep_alive), keep_alive)
}

/// Serializes a response into bytes for the event loop to write.
pub(crate) fn serialize_response(response: &Response, keep_alive: bool) -> Vec<u8> {
    let mut bytes = Vec::new();
    // writing into a Vec cannot fail;
    // webre::allow(dropped-result): Vec<u8>'s Write impl is infallible
    let _ = write_response(&mut bytes, response, keep_alive);
    bytes
}

/// Maps a codec error to the response the peer receives.
pub(crate) fn error_response(error: &HttpError) -> Response {
    match error {
        HttpError::TooLarge { limit } => Response::text(
            413,
            format!("request exceeds the {limit}-byte body limit\n"),
        ),
        HttpError::Malformed(detail) => Response::text(400, format!("{detail}\n")),
        HttpError::Unsupported(detail) => Response::text(400, format!("unsupported: {detail}\n")),
        // Timeouts and truncated reads land here; 408 tells well-behaved
        // peers to retry on a fresh connection.
        HttpError::Io(detail) => Response::text(408, format!("{detail}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_responses_map_to_expected_statuses() {
        assert_eq!(error_response(&HttpError::TooLarge { limit: 9 }).status, 413);
        assert_eq!(error_response(&HttpError::Malformed("x".into())).status, 400);
        assert_eq!(error_response(&HttpError::Unsupported("x".into())).status, 400);
        assert_eq!(error_response(&HttpError::Io("x".into())).status, 408);
    }

    #[test]
    fn completion_queue_sleep_handshake_never_loses_a_push() {
        let queue = CompletionQueue::new();
        assert!(queue.pre_wait(), "empty queue: sleeping is allowed");
        queue.post_wait();
        queue.push(Done { token: 1, bytes: vec![], keep_alive: true });
        assert!(!queue.pre_wait(), "pending completion must cancel the sleep");
        let mut out = Vec::new();
        queue.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert!(queue.pre_wait());
        queue.post_wait();
    }
}
