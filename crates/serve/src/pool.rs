//! The worker pool: panic-isolated threads draining the bounded job
//! queue.
//!
//! Each job is one accepted connection. A worker serves the connection's
//! keep-alive request loop, wrapping every `handle` call in
//! `catch_unwind` so a panicking conversion answers `500` and the
//! worker — and its connection — survive. Workers exit when the queue
//! disconnects (server shutdown closes the sending side after the
//! acceptor stops), which by [`webre_substrate::sync`]'s contract
//! happens only after every queued job has been drained.

use crate::handlers::{handle_obs, App};
use crate::metrics::Endpoint;
use webre_obs::{stage, Ctx};
use std::io::{self, BufReader};
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};
use webre_substrate::http::{read_request, write_response, HttpError, Response};
use webre_substrate::sync::Receiver;

/// Per-connection limits, copied from the server configuration.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum accepted request body, bytes.
    pub max_body: usize,
    /// Socket read deadline (slowloris guard; a stalled peer gets 408).
    pub read_timeout: Duration,
    /// Socket write deadline.
    pub write_timeout: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_body: 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
        }
    }
}

/// Handles to the running workers.
pub struct WorkerPool {
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads consuming connections from `jobs`.
    /// Fails if the OS refuses a thread; already-spawned workers then
    /// exit via the dropped receiver, so nothing leaks.
    pub fn spawn(
        workers: usize,
        jobs: Receiver<TcpStream>,
        app: Arc<App>,
        limits: Limits,
    ) -> io::Result<Self> {
        let mut handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let jobs = jobs.clone();
            let app = Arc::clone(&app);
            let handle = std::thread::Builder::new()
                .name(format!("webre-serve-worker-{i}"))
                .spawn(move || worker_loop(&jobs, &app, limits))?;
            handles.push(handle);
        }
        Ok(WorkerPool { handles })
    }

    /// Waits for every worker to exit (the queue must be closed first or
    /// this blocks forever).
    pub fn join(self) {
        for handle in self.handles {
            // A worker that somehow panicked outside catch_unwind is
            // already dead; joining it must not cascade.
            let _ = handle.join();
        }
    }
}

fn worker_loop(jobs: &Receiver<TcpStream>, app: &App, limits: Limits) {
    while let Some(stream) = jobs.recv() {
        app.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let busy = Instant::now();
        serve_connection(stream, app, limits);
        app.metrics
            .busy_ns
            .fetch_add(busy.elapsed().as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }
}

/// Serves one connection's keep-alive loop until the peer closes, errors,
/// asks to close, or the server starts draining.
fn serve_connection(stream: TcpStream, app: &App, limits: Limits) {
    // A socket that refuses deadlines could stall this worker forever
    // (the slowloris guard depends on them); treat setup failure as a
    // connection that died before the first request.
    if stream.set_read_timeout(Some(limits.read_timeout)).is_err()
        || stream.set_write_timeout(Some(limits.write_timeout)).is_err()
    {
        return;
    }
    // webre::allow(dropped-result): TCP_NODELAY is a latency hint only
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, limits.max_body) {
            Ok(None) => return, // clean close between requests
            Ok(Some(request)) => request,
            Err(error) => {
                app.metrics.bad_requests.fetch_add(1, Ordering::Relaxed);
                let response = error_response(&error);
                // best-effort reply on an already-failed connection;
                // webre::allow(dropped-result): closing is the degradation
                let _ = write_response(&mut writer, &response, false);
                return;
            }
        };
        let started = Instant::now();
        // The request span opens and closes inside the unwind guard, so
        // a panicking handler still ends its span during unwinding and
        // the span tally matches `requests_total` exactly.
        let (endpoint, response) =
            match catch_unwind(AssertUnwindSafe(|| {
                let ctx = Ctx::new(app.obs.recorder());
                let scope = ctx.span(stage::REQUEST);
                handle_obs(app, &request, scope.ctx())
            })) {
                Ok(response) => {
                    let endpoint = crate::router::route(&request.method, request.path())
                        .map(|r| r.endpoint())
                        .unwrap_or(Endpoint::Other);
                    (endpoint, response)
                }
                Err(_) => {
                    app.metrics.panics.fetch_add(1, Ordering::Relaxed);
                    (
                        Endpoint::Other,
                        Response::text(
                            500,
                            "internal error: request handler panicked (worker recovered)\n",
                        ),
                    )
                }
            };
        app.metrics.record(endpoint, started.elapsed());
        // Once draining, close connections after the in-flight response
        // so keep-alive clients cannot hold the drain open.
        let keep_alive = request.keep_alive() && !app.is_draining();
        if write_response(&mut writer, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

/// Maps a codec error to the response the peer receives.
fn error_response(error: &HttpError) -> Response {
    match error {
        HttpError::TooLarge { limit } => Response::text(
            413,
            format!("request exceeds the {limit}-byte body limit\n"),
        ),
        HttpError::Malformed(detail) => Response::text(400, format!("{detail}\n")),
        HttpError::Unsupported(detail) => Response::text(400, format!("unsupported: {detail}\n")),
        // Timeouts and truncated reads land here; 408 tells well-behaved
        // peers to retry on a fresh connection.
        HttpError::Io(detail) => Response::text(408, format!("{detail}\n")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_responses_map_to_expected_statuses() {
        assert_eq!(error_response(&HttpError::TooLarge { limit: 9 }).status, 413);
        assert_eq!(error_response(&HttpError::Malformed("x".into())).status, 400);
        assert_eq!(error_response(&HttpError::Unsupported("x".into())).status, 400);
        assert_eq!(error_response(&HttpError::Io("x".into())).status, 408);
    }
}
