//! Deadline-based admission control for the dispatch queue.
//!
//! Before the event loop enqueues a batch for the worker pool it asks
//! [`Admission`] for an estimate of how long the batch would wait:
//!
//! ```text
//! estimated queue delay = queued_requests × EWMA(service time) / workers
//! ```
//!
//! If the estimate exceeds the configured `--deadline-ms` budget the
//! batch is rejected up front with `429` + `retry-after` — shedding at
//! the door is strictly cheaper than timing out after queuing, and it
//! keeps the latency of *admitted* requests bounded: a request admitted
//! under a correct estimate waits at most the deadline plus one service
//! time (the request in service when it arrived).
//!
//! The service-time EWMA (α = 1/8) is fed only by *queued* (worker-pool)
//! requests; inline fast-path requests never touch it, so a flood of
//! microsecond `/healthz` hits cannot trick the estimator into admitting
//! work it cannot finish in time.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// EWMA smoothing factor as a right-shift: α = 1/8.
const EWMA_SHIFT: u32 = 3;

/// Queue-delay estimator and admission gate. All methods are lock-free
/// and callable from the event loop and every worker concurrently.
#[derive(Debug)]
pub struct Admission {
    /// Deadline budget in ns; 0 disables shedding.
    deadline_ns: u64,
    /// Worker parallelism the queue drains with.
    workers: u64,
    /// Smoothed per-request service time, ns.
    ewma_ns: AtomicU64,
    /// Requests currently sitting in the dispatch queue.
    queued: AtomicI64,
}

impl Admission {
    /// `deadline: None` disables shedding; `prior` seeds the service-time
    /// estimate before the first real observation.
    pub fn new(deadline: Option<Duration>, workers: usize, prior: Duration) -> Admission {
        let ns = |d: Duration| d.as_nanos().min(u64::MAX as u128) as u64;
        Admission {
            deadline_ns: deadline.map(ns).unwrap_or(0),
            workers: workers.max(1) as u64,
            ewma_ns: AtomicU64::new(ns(prior).max(1)),
            queued: AtomicI64::new(0),
        }
    }

    /// Current estimated queue delay for a newly arriving request, ns.
    pub fn estimate_ns(&self) -> u64 {
        let queued = self.queued.load(Ordering::Relaxed).max(0) as u64;
        queued.saturating_mul(self.ewma_ns.load(Ordering::Relaxed)) / self.workers
    }

    /// Admit or shed a batch of `n` requests. `Err(estimate_ns)` means
    /// shed: the caller answers 429 with a `retry-after` derived from
    /// the estimate and must NOT enqueue.
    pub fn admit(&self, _n: usize) -> Result<(), u64> {
        if self.deadline_ns == 0 {
            return Ok(());
        }
        let estimate = self.estimate_ns();
        if estimate > self.deadline_ns {
            Err(estimate)
        } else {
            Ok(())
        }
    }

    /// Whole seconds (≥ 1) a shed client should wait before retrying.
    pub fn retry_after_secs(estimate_ns: u64) -> u64 {
        estimate_ns.div_ceil(1_000_000_000).max(1)
    }

    /// Record `n` requests entering the dispatch queue.
    pub fn enqueued(&self, n: usize) {
        self.queued.fetch_add(n as i64, Ordering::Relaxed);
    }

    /// Record `n` requests leaving the dispatch queue (popped by a worker).
    pub fn dequeued(&self, n: usize) {
        self.queued.fetch_sub(n as i64, Ordering::Relaxed);
    }

    /// Feed one observed service time into the EWMA.
    pub fn observe(&self, service: Duration) {
        let sample = service.as_nanos().min(u64::MAX as u128) as u64;
        // Racy read-modify-write is fine: the EWMA only needs to track
        // the service-time scale, not every individual sample.
        let old = self.ewma_ns.load(Ordering::Relaxed);
        let new = old - (old >> EWMA_SHIFT) + (sample >> EWMA_SHIFT);
        self.ewma_ns.store(new.max(1), Ordering::Relaxed);
    }

    /// Current smoothed service time, ns (test/telemetry hook).
    pub fn service_ewma_ns(&self) -> u64 {
        self.ewma_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_deadline_admits_everything() {
        let admission = Admission::new(None, 4, Duration::from_millis(1));
        admission.enqueued(1_000_000);
        assert!(admission.admit(64).is_ok());
    }

    #[test]
    fn estimate_scales_with_queue_depth_and_workers() {
        let one_worker = Admission::new(None, 1, Duration::from_millis(1));
        one_worker.enqueued(10);
        let four_workers = Admission::new(None, 4, Duration::from_millis(1));
        four_workers.enqueued(10);
        assert_eq!(one_worker.estimate_ns(), 10_000_000);
        assert_eq!(four_workers.estimate_ns(), 2_500_000);
    }

    #[test]
    fn sheds_once_estimate_exceeds_deadline() {
        let admission =
            Admission::new(Some(Duration::from_millis(5)), 1, Duration::from_millis(1));
        admission.enqueued(5); // estimate = 5ms, not > 5ms
        assert!(admission.admit(1).is_ok());
        admission.enqueued(1); // 6ms > 5ms
        let est = admission.admit(1).unwrap_err();
        assert_eq!(est, 6_000_000);
        assert_eq!(Admission::retry_after_secs(est), 1);
        admission.dequeued(3); // queue drains → admits again
        assert!(admission.admit(1).is_ok());
    }

    #[test]
    fn ewma_tracks_observed_service_times() {
        let admission = Admission::new(None, 1, Duration::from_micros(100));
        for _ in 0..64 {
            admission.observe(Duration::from_millis(10));
        }
        let ewma = admission.service_ewma_ns();
        assert!(
            (5_000_000..=10_100_000).contains(&ewma),
            "EWMA converges toward the observed 10ms: {ewma}"
        );
    }

    #[test]
    fn retry_after_is_ceiled_whole_seconds() {
        assert_eq!(Admission::retry_after_secs(1), 1);
        assert_eq!(Admission::retry_after_secs(999_999_999), 1);
        assert_eq!(Admission::retry_after_secs(1_000_000_001), 2);
    }
}
