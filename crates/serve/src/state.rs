//! The live corpus: incrementally accreted documents, sharded by content
//! hash, with a versioned, lazily recomputed schema snapshot and
//! optional durability.
//!
//! `POST /corpus/docs` and `POST /corpus/xml` accrete documents into a
//! [`ShardedCorpus`] (O(paths) per document); `GET /schema[/dtd]` reads
//! a [`Snapshot`]. Recomputation is *coalesced*: accreting a document
//! only invalidates the cached snapshot, and the next schema read mines
//! once for however many documents arrived in between — a burst of N
//! writes costs one recompute, not N. This write-invalidate /
//! read-recompute batching is what keeps accretion fast under load.
//!
//! Sharding: each document routes to `hash % shards`; mining runs over
//! the union view and DTD derivation over the per-shard document slices.
//! Both are held equal to single-index batch processing by the
//! `shard-merge-vs-batch` differential oracle in `webre-check`.
//!
//! Durability: with a [`CorpusStore`] attached, every accretion appends
//! the document's canonical record to its shard's WAL *after* the
//! in-memory push, inside the same write lock, so log order equals
//! accretion order. Restarting on the same data directory replays the
//! logs into an identical corpus (same documents in the same shards),
//! which makes `GET /schema` and `GET /schema/dtd` byte-identical across
//! a restart. Conversion statistics are process-local and reset.
//!
//! Concurrency: one `RwLock` around the whole state. Writers (accrete)
//! hold it only for the index push and the WAL append — conversion and
//! record serialization happen *before* the lock, so the critical
//! section is short and panic-free. Readers share the lock; the first
//! reader after a write upgrades to recompute, double-checking under the
//! write lock so racing readers recompute at most once.

use crate::engine::Engine;
use crate::persist::CorpusStore;
use std::io;
use std::sync::{Arc, RwLock};
use webre_convert::ConvertStats;
use webre_obs::Ctx;
use webre_schema::{
    derive_dtd_sharded_obs, doc_to_record, extract_paths, DocPaths, MajoritySchema, PathTable,
    ShardedCorpus,
};
use webre_substrate::wal::checksum;
use webre_xml::{Dtd, XmlDocument};

/// An immutable view of the discovered schema at some corpus version.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Corpus version this snapshot was computed at (== documents
    /// accreted so far).
    pub version: u64,
    /// Documents in the corpus.
    pub docs: usize,
    /// Rendered majority schema, `None` while the corpus is empty or
    /// the root fails the support threshold.
    pub schema_text: Option<String>,
    /// Serialized DTD, `None` under the same conditions.
    pub dtd_text: Option<String>,
    /// The structured schema + DTD the mapping planner needs (`POST
    /// /map`); `None` exactly when the rendered forms are.
    pub mapping: Option<(MajoritySchema, Dtd)>,
}

struct Inner {
    corpus: ShardedCorpus,
    /// Durable log, absent for a purely in-memory corpus.
    store: Option<CorpusStore>,
    stats: ConvertStats,
    /// Cached snapshot; `None` marks it stale (writes invalidate).
    snapshot: Option<Arc<Snapshot>>,
}

/// Shared, thread-safe live corpus.
pub struct LiveCorpus {
    inner: RwLock<Inner>,
}

impl Default for LiveCorpus {
    fn default() -> Self {
        LiveCorpus::in_memory(1)
    }
}

impl LiveCorpus {
    /// An empty, single-shard, in-memory corpus.
    pub fn new() -> Self {
        LiveCorpus::default()
    }

    /// An empty in-memory corpus with `shards` shards.
    pub fn in_memory(shards: usize) -> Self {
        LiveCorpus::build(ShardedCorpus::new(shards), None)
    }

    /// A corpus recovered from (and persisted through) `store`.
    pub fn durable(corpus: ShardedCorpus, store: CorpusStore) -> Self {
        LiveCorpus::build(corpus, Some(store))
    }

    fn build(corpus: ShardedCorpus, store: Option<CorpusStore>) -> Self {
        LiveCorpus {
            inner: RwLock::new(Inner {
                corpus,
                store,
                stats: ConvertStats::default(),
                snapshot: None,
            }),
        }
    }

    /// Accretes one converted document. Returns `(version, docs)` after
    /// the push. The caller converts *before* calling so no fallible or
    /// slow work happens under the write lock; an `Err` means the WAL
    /// append failed (the document is in memory but its durability is
    /// not guaranteed).
    pub fn accrete(&self, doc: &XmlDocument, stats: &ConvertStats) -> io::Result<(u64, usize)> {
        // Route by a hash of the canonical serialization so the shard a
        // document lands in depends only on its content.
        let hash = checksum(webre_xml::to_xml(doc).as_bytes());
        self.accrete_paths(hash, extract_paths(doc), stats)
    }

    /// Accretes an already-extracted document under an explicit routing
    /// hash (the `/corpus/xml` fast path hashes the request body).
    pub fn accrete_paths(
        &self,
        hash: u64,
        paths: DocPaths,
        stats: &ConvertStats,
    ) -> io::Result<(u64, usize)> {
        // Serialize outside the lock; the record is only needed when a
        // store is attached, but accretion is rare enough relative to
        // serialization cost that unconditional encoding would also be
        // fine — skip it for the in-memory path anyway.
        let record = if self.read().store.is_some() {
            Some(doc_to_record(&paths))
        } else {
            None
        };
        let mut inner = self.write();
        let shard = inner.corpus.shard_of(hash);
        inner.corpus.push_to(shard, paths);
        inner.stats.merge(stats);
        inner.snapshot = None;
        let Inner { corpus, store, .. } = &mut *inner;
        if let (Some(store), Some(record)) = (store.as_mut(), record) {
            // The record is pre-serialized, so only the append itself
            // runs under the lock (see module docs).
            // webre::allow(lock-across-blocking): the WAL append must happen inside the write lock — log order equals accretion order is the recovery invariant
            store.log_doc(shard, &record, &corpus.shards()[shard])?;
        }
        Ok((inner.corpus.version(), inner.corpus.len()))
    }

    /// The current snapshot, recomputing at most once per corpus version.
    pub fn snapshot(&self, engine: &Engine) -> Arc<Snapshot> {
        self.snapshot_obs(engine, Ctx::disabled())
    }

    /// [`LiveCorpus::snapshot`] with observability: a recompute (at most
    /// one per corpus version) records mining and DTD-derivation spans
    /// through `ctx`; cache hits record nothing. The snapshot is
    /// identical.
    pub fn snapshot_obs(&self, engine: &Engine, ctx: Ctx<'_>) -> Arc<Snapshot> {
        if let Some(snapshot) = self.read().snapshot.clone() {
            return snapshot;
        }
        let mut inner = self.write();
        // Double-check: a racing reader may have recomputed already.
        if let Some(snapshot) = inner.snapshot.clone() {
            return snapshot;
        }
        let (schema_text, dtd_text, mapping) = match engine.miner.mine_view_obs(&inner.corpus, ctx)
        {
            None => (None, None, None),
            Some(outcome) => {
                let dtd = derive_dtd_sharded_obs(
                    &outcome.schema,
                    &inner.corpus.docs_by_shard(),
                    &engine.dtd_config,
                    ctx,
                );
                (
                    Some(outcome.schema.render()),
                    Some(dtd.to_dtd_string()),
                    Some((outcome.schema, dtd)),
                )
            }
        };
        let snapshot = Arc::new(Snapshot {
            version: inner.corpus.version(),
            docs: inner.corpus.len(),
            schema_text,
            dtd_text,
            mapping,
        });
        inner.snapshot = Some(Arc::clone(&snapshot));
        snapshot
    }

    /// The merged frequent-path table with the version and doc count it
    /// was taken at — the `GET /corpus/table` payload.
    pub fn table(&self) -> (PathTable, u64, usize) {
        let inner = self.read();
        (
            inner.corpus.table(),
            inner.corpus.version(),
            inner.corpus.len(),
        )
    }

    /// Aggregate conversion statistics over every accreted document.
    pub fn stats(&self) -> ConvertStats {
        self.read().stats
    }

    /// Documents accreted so far.
    pub fn len(&self) -> usize {
        self.read().corpus.len()
    }

    /// Whether no document has been accreted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards the corpus is split across.
    pub fn shard_count(&self) -> usize {
        self.read().corpus.shard_count()
    }

    /// Forces any batched WAL appends to stable storage. A no-op for an
    /// in-memory corpus.
    pub fn sync_to_disk(&self) -> io::Result<()> {
        // Called from shutdown/admin paths, never the request hot path.
        match self.write().store.as_mut() {
            // webre::allow(lock-across-blocking): fsync under the write lock is the durability barrier — no append can land between flushing and the caller observing "synced"
            Some(store) => store.sync_to_disk(),
            None => Ok(()),
        }
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        // Writers never panic while holding the lock (all fallible work
        // under it returns Results), so recovering from poison is safe.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::StoreConfig;
    use std::path::PathBuf;

    fn engine() -> Engine {
        Engine::resume_domain()
    }

    fn convert(engine: &Engine, html: &str) -> (XmlDocument, ConvertStats) {
        engine.converter.convert_str(html)
    }

    #[test]
    fn empty_corpus_has_no_schema() {
        let corpus = LiveCorpus::new();
        let snapshot = corpus.snapshot(&engine());
        assert_eq!(snapshot.version, 0);
        assert_eq!(snapshot.docs, 0);
        assert!(snapshot.schema_text.is_none());
        assert!(snapshot.dtd_text.is_none());
    }

    #[test]
    fn accretion_bumps_version_and_snapshot_follows() {
        let engine = engine();
        let corpus = LiveCorpus::new();
        let html = "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li></ul>";
        for i in 1..=3u64 {
            let (doc, stats) = convert(&engine, html);
            let (version, docs) = corpus.accrete(&doc, &stats).unwrap();
            assert_eq!(version, i);
            assert_eq!(docs, i as usize);
        }
        let snapshot = corpus.snapshot(&engine);
        assert_eq!(snapshot.version, 3);
        let schema = snapshot.schema_text.as_ref().expect("schema discovered");
        assert!(schema.contains("resume"), "{schema}");
        let dtd = snapshot.dtd_text.as_ref().expect("dtd derived");
        assert!(dtd.contains("<!ELEMENT resume"), "{dtd}");
    }

    #[test]
    fn sharded_in_memory_corpus_mines_like_single_shard() {
        let engine = engine();
        let single = LiveCorpus::in_memory(1);
        let sharded = LiveCorpus::in_memory(4);
        for html in [
            "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li></ul>",
            "<h2>Skills</h2><p>C++, Java</p>",
            "<h2>Education</h2><ul><li>MIT, Ph.D., 2001</li></ul>",
        ] {
            let (doc, stats) = convert(&engine, html);
            single.accrete(&doc, &stats).unwrap();
            sharded.accrete(&doc, &stats).unwrap();
        }
        assert_eq!(sharded.shard_count(), 4);
        let a = single.snapshot(&engine);
        let b = sharded.snapshot(&engine);
        assert_eq!(a.schema_text, b.schema_text);
        // The frequent-path table is shard-layout independent too.
        assert_eq!(single.table().0, sharded.table().0);
    }

    #[test]
    fn snapshot_is_cached_until_invalidated() {
        let engine = engine();
        let corpus = LiveCorpus::new();
        let (doc, stats) = convert(&engine, "<h2>Skills</h2><p>C++, Java</p>");
        corpus.accrete(&doc, &stats).unwrap();
        let first = corpus.snapshot(&engine);
        let second = corpus.snapshot(&engine);
        assert!(
            Arc::ptr_eq(&first, &second),
            "unchanged corpus must reuse the cached snapshot"
        );
        corpus.accrete(&doc, &stats).unwrap();
        let third = corpus.snapshot(&engine);
        assert!(!Arc::ptr_eq(&second, &third), "accretion must invalidate");
        assert_eq!(third.version, 2);
    }

    #[test]
    fn burst_of_writes_coalesces_to_one_recompute() {
        // Not directly observable without instrumenting the miner, but
        // the version arithmetic pins the contract: after N accretions
        // and one read, the snapshot carries version N (a per-write
        // recompute would have materialized intermediate versions).
        let engine = engine();
        let corpus = LiveCorpus::new();
        let (doc, stats) = convert(&engine, "<h2>Objective</h2><p>a job</p>");
        for _ in 0..10 {
            corpus.accrete(&doc, &stats).unwrap();
        }
        assert_eq!(corpus.snapshot(&engine).version, 10);
    }

    #[test]
    fn stats_aggregate_across_documents() {
        let engine = engine();
        let corpus = LiveCorpus::new();
        let (doc, stats) = convert(&engine, "<p>zorp blorp, qux flux</p>");
        corpus.accrete(&doc, &stats).unwrap();
        corpus.accrete(&doc, &stats).unwrap();
        assert_eq!(corpus.stats().tokens_total, 2 * stats.tokens_total);
        assert_eq!(corpus.len(), 2);
    }

    #[test]
    fn concurrent_accretion_and_reads_are_consistent() {
        let engine = Arc::new(engine());
        let corpus = Arc::new(LiveCorpus::in_memory(3));
        let html = "<h2>Education</h2><ul><li>MIT, Ph.D., 2001</li></ul>";
        let (doc, stats) = convert(&engine, html);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (corpus, engine, doc, stats) =
                (Arc::clone(&corpus), Arc::clone(&engine), doc.clone(), stats);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    corpus.accrete(&doc, &stats).unwrap();
                    let snapshot = corpus.snapshot(&engine);
                    assert!(snapshot.docs as u64 <= snapshot.version);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snapshot = corpus.snapshot(&engine);
        assert_eq!(snapshot.version, 100);
        assert_eq!(snapshot.docs, 100);
        assert!(snapshot.schema_text.is_some());
    }

    #[test]
    fn durable_corpus_snapshot_survives_a_restart_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!(
            "webre-state-durable-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = StoreConfig {
            data_dir: PathBuf::from(&dir),
            shards: 2,
            sync_every: 4,
            compact_min: 8,
        };
        let engine = engine();
        let first_snapshot;
        {
            let (store, sharded, report) = CorpusStore::open(&cfg).unwrap();
            assert_eq!(report.docs, 0);
            let corpus = LiveCorpus::durable(sharded, store);
            for html in [
                "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li></ul>",
                "<h2>Skills</h2><p>C++, Java</p>",
                "<h2>Education</h2><ul><li>MIT, Ph.D., 2001</li></ul>",
                "<h2>Objective</h2><p>research</p>",
            ] {
                let (doc, stats) = convert(&engine, html);
                corpus.accrete(&doc, &stats).unwrap();
            }
            first_snapshot = corpus.snapshot(&engine);
            corpus.sync_to_disk().unwrap();
        }
        let (store, sharded, report) = CorpusStore::open(&cfg).unwrap();
        assert_eq!(report.docs, 4);
        assert!(report.warnings.is_empty(), "{:?}", report.warnings);
        let corpus = LiveCorpus::durable(sharded, store);
        let restored = corpus.snapshot(&engine);
        assert_eq!(restored.version, first_snapshot.version);
        assert_eq!(restored.schema_text, first_snapshot.schema_text);
        assert_eq!(restored.dtd_text, first_snapshot.dtd_text);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
