//! The live corpus: incrementally accreted documents with a versioned,
//! lazily recomputed schema snapshot.
//!
//! `POST /corpus/docs` accretes converted documents into a
//! [`CorpusIndex`] (O(paths) per document); `GET /schema[/dtd]` reads a
//! [`Snapshot`]. Recomputation is *coalesced*: accreting a document only
//! invalidates the cached snapshot, and the next schema read mines once
//! for however many documents arrived in between — a burst of N writes
//! costs one recompute, not N. This write-invalidate/read-recompute
//! batching is what keeps accretion fast under load.
//!
//! Concurrency: one `RwLock` around the whole state. Writers (accrete)
//! hold it only for the index push — conversion happens *before* the
//! lock, so the critical section is short and panic-free. Readers share
//! the lock; the first reader after a write upgrades to recompute,
//! double-checking under the write lock so racing readers recompute at
//! most once.

use crate::engine::Engine;
use std::sync::{Arc, RwLock};
use webre_convert::ConvertStats;
use webre_obs::Ctx;
use webre_schema::{derive_dtd_obs, extract_paths, CorpusIndex};
use webre_xml::XmlDocument;

/// An immutable view of the discovered schema at some corpus version.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Corpus version this snapshot was computed at (== documents
    /// accreted so far).
    pub version: u64,
    /// Documents in the corpus.
    pub docs: usize,
    /// Rendered majority schema, `None` while the corpus is empty or
    /// the root fails the support threshold.
    pub schema_text: Option<String>,
    /// Serialized DTD, `None` under the same conditions.
    pub dtd_text: Option<String>,
}

struct Inner {
    index: CorpusIndex,
    stats: ConvertStats,
    /// Cached snapshot; `None` marks it stale (writes invalidate).
    snapshot: Option<Arc<Snapshot>>,
}

/// Shared, thread-safe live corpus.
pub struct LiveCorpus {
    inner: RwLock<Inner>,
}

impl Default for LiveCorpus {
    fn default() -> Self {
        LiveCorpus {
            inner: RwLock::new(Inner {
                index: CorpusIndex::new(),
                stats: ConvertStats::default(),
                snapshot: None,
            }),
        }
    }
}

impl LiveCorpus {
    /// An empty corpus.
    pub fn new() -> Self {
        LiveCorpus::default()
    }

    /// Accretes one converted document. Returns `(version, docs)` after
    /// the push. The caller converts *before* calling so no fallible or
    /// slow work happens under the write lock.
    pub fn accrete(&self, doc: &XmlDocument, stats: &ConvertStats) -> (u64, usize) {
        let paths = extract_paths(doc);
        let mut inner = self.write();
        inner.index.push(paths);
        inner.stats.merge(stats);
        inner.snapshot = None;
        (inner.index.version(), inner.index.len())
    }

    /// The current snapshot, recomputing at most once per corpus version.
    pub fn snapshot(&self, engine: &Engine) -> Arc<Snapshot> {
        self.snapshot_obs(engine, Ctx::disabled())
    }

    /// [`LiveCorpus::snapshot`] with observability: a recompute (at most
    /// one per corpus version) records mining and DTD-derivation spans
    /// through `ctx`; cache hits record nothing. The snapshot is
    /// identical.
    pub fn snapshot_obs(&self, engine: &Engine, ctx: Ctx<'_>) -> Arc<Snapshot> {
        if let Some(snapshot) = self.read().snapshot.clone() {
            return snapshot;
        }
        let mut inner = self.write();
        // Double-check: a racing reader may have recomputed already.
        if let Some(snapshot) = inner.snapshot.clone() {
            return snapshot;
        }
        let (schema_text, dtd_text) = match engine.miner.mine_view_obs(&inner.index, ctx) {
            None => (None, None),
            Some(outcome) => {
                let dtd = derive_dtd_obs(
                    &outcome.schema,
                    inner.index.docs(),
                    &engine.dtd_config,
                    ctx,
                );
                (
                    Some(outcome.schema.render()),
                    Some(dtd.to_dtd_string()),
                )
            }
        };
        let snapshot = Arc::new(Snapshot {
            version: inner.index.version(),
            docs: inner.index.len(),
            schema_text,
            dtd_text,
        });
        inner.snapshot = Some(Arc::clone(&snapshot));
        snapshot
    }

    /// Aggregate conversion statistics over every accreted document.
    pub fn stats(&self) -> ConvertStats {
        self.read().stats
    }

    /// Documents accreted so far.
    pub fn len(&self) -> usize {
        self.read().index.len()
    }

    /// Whether no document has been accreted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        // Writers never panic while holding the lock (all fallible work
        // happens before acquisition), so recovering from poison is safe.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::resume_domain()
    }

    fn convert(engine: &Engine, html: &str) -> (XmlDocument, ConvertStats) {
        engine.converter.convert_str(html)
    }

    #[test]
    fn empty_corpus_has_no_schema() {
        let corpus = LiveCorpus::new();
        let snapshot = corpus.snapshot(&engine());
        assert_eq!(snapshot.version, 0);
        assert_eq!(snapshot.docs, 0);
        assert!(snapshot.schema_text.is_none());
        assert!(snapshot.dtd_text.is_none());
    }

    #[test]
    fn accretion_bumps_version_and_snapshot_follows() {
        let engine = engine();
        let corpus = LiveCorpus::new();
        let html = "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li></ul>";
        for i in 1..=3u64 {
            let (doc, stats) = convert(&engine, html);
            let (version, docs) = corpus.accrete(&doc, &stats);
            assert_eq!(version, i);
            assert_eq!(docs, i as usize);
        }
        let snapshot = corpus.snapshot(&engine);
        assert_eq!(snapshot.version, 3);
        let schema = snapshot.schema_text.as_ref().expect("schema discovered");
        assert!(schema.contains("resume"), "{schema}");
        let dtd = snapshot.dtd_text.as_ref().expect("dtd derived");
        assert!(dtd.contains("<!ELEMENT resume"), "{dtd}");
    }

    #[test]
    fn snapshot_is_cached_until_invalidated() {
        let engine = engine();
        let corpus = LiveCorpus::new();
        let (doc, stats) = convert(&engine, "<h2>Skills</h2><p>C++, Java</p>");
        corpus.accrete(&doc, &stats);
        let first = corpus.snapshot(&engine);
        let second = corpus.snapshot(&engine);
        assert!(
            Arc::ptr_eq(&first, &second),
            "unchanged corpus must reuse the cached snapshot"
        );
        corpus.accrete(&doc, &stats);
        let third = corpus.snapshot(&engine);
        assert!(!Arc::ptr_eq(&second, &third), "accretion must invalidate");
        assert_eq!(third.version, 2);
    }

    #[test]
    fn burst_of_writes_coalesces_to_one_recompute() {
        // Not directly observable without instrumenting the miner, but
        // the version arithmetic pins the contract: after N accretions
        // and one read, the snapshot carries version N (a per-write
        // recompute would have materialized intermediate versions).
        let engine = engine();
        let corpus = LiveCorpus::new();
        let (doc, stats) = convert(&engine, "<h2>Objective</h2><p>a job</p>");
        for _ in 0..10 {
            corpus.accrete(&doc, &stats);
        }
        assert_eq!(corpus.snapshot(&engine).version, 10);
    }

    #[test]
    fn stats_aggregate_across_documents() {
        let engine = engine();
        let corpus = LiveCorpus::new();
        let (doc, stats) = convert(&engine, "<p>zorp blorp, qux flux</p>");
        corpus.accrete(&doc, &stats);
        corpus.accrete(&doc, &stats);
        assert_eq!(corpus.stats().tokens_total, 2 * stats.tokens_total);
        assert_eq!(corpus.len(), 2);
    }

    #[test]
    fn concurrent_accretion_and_reads_are_consistent() {
        let engine = Arc::new(engine());
        let corpus = Arc::new(LiveCorpus::new());
        let html = "<h2>Education</h2><ul><li>MIT, Ph.D., 2001</li></ul>";
        let (doc, stats) = convert(&engine, html);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (corpus, engine, doc, stats) =
                (Arc::clone(&corpus), Arc::clone(&engine), doc.clone(), stats);
            handles.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    corpus.accrete(&doc, &stats);
                    let snapshot = corpus.snapshot(&engine);
                    assert!(snapshot.docs as u64 <= snapshot.version);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snapshot = corpus.snapshot(&engine);
        assert_eq!(snapshot.version, 100);
        assert_eq!(snapshot.docs, 100);
        assert!(snapshot.schema_text.is_some());
    }
}
