//! Sharded, content-hash-keyed LRU cache for conversion results.
//!
//! `/convert` is deterministic — identical HTML bodies always produce
//! identical XML — so responses are cached under the FNV-1a hash of the
//! request body. The cache is split into shards, each an independent
//! LRU under its own mutex, so concurrent workers rarely contend on the
//! same lock; a key's shard is a second, independent hash of the key so
//! hot keys spread evenly.
//!
//! Each shard is a classic O(1) LRU: a slot arena threaded into a
//! doubly-linked recency list plus a `HashMap` from key to slot. Hits
//! and misses are counted with relaxed atomics and surfaced through
//! `/metrics`.
//!
//! A capacity of zero disables caching entirely (every lookup misses,
//! nothing is stored) — the configuration the cache-on ≡ cache-off
//! property test exercises.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const NIL: usize = usize::MAX;

/// One shard: an O(1) LRU over a slot arena.
struct Lru {
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used (the eviction victim).
    tail: usize,
    capacity: usize,
}

struct Slot {
    key: u64,
    value: Arc<String>,
    prev: usize,
    next: usize,
}

impl Lru {
    fn new(capacity: usize) -> Self {
        Lru {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: u64) -> Option<Arc<String>> {
        let &i = self.map.get(&key)?;
        self.unlink(i);
        self.push_front(i);
        Some(Arc::clone(&self.slots[i].value))
    }

    fn insert(&mut self, key: u64, value: Arc<String>) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&key) {
            // Refresh an existing entry (racing workers may both insert).
            self.slots[i].value = value;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.free.push(victim);
        }
        let slot = Slot {
            key,
            value,
            prev: NIL,
            next: NIL,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
    }

    /// Keys from most to least recently used (test introspection).
    fn recency_order(&self) -> Vec<u64> {
        let mut order = Vec::with_capacity(self.map.len());
        let mut i = self.head;
        while i != NIL {
            order.push(self.slots[i].key);
            i = self.slots[i].next;
        }
        order
    }
}

/// Cache hit/miss/insert totals.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries currently resident, across all shards.
    pub entries: usize,
}

/// The concurrent cache: N independent LRU shards plus counters.
pub struct ShardedLru {
    shards: Vec<Mutex<Lru>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// FNV-1a over arbitrary bytes — the content-hash key for `/convert`
/// bodies.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

impl ShardedLru {
    /// A cache holding at most `capacity` entries, spread over a
    /// power-of-two shard count scaled to the capacity. `capacity == 0`
    /// disables storage (lookups always miss).
    pub fn new(capacity: usize) -> Self {
        let shards = if capacity == 0 {
            1
        } else {
            // One shard per 128 entries, between 1 and 8.
            capacity.div_ceil(128).clamp(1, 8).next_power_of_two()
        };
        Self::with_shards(capacity, shards)
    }

    /// Explicit shard count (tests use one shard for deterministic
    /// eviction order). Capacity is divided evenly; remainders go to the
    /// first shards.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let base = capacity / shards;
        let extra = capacity % shards;
        ShardedLru {
            shards: (0..shards)
                .map(|i| Mutex::new(Lru::new(base + usize::from(i < extra))))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: u64) -> &Mutex<Lru> {
        // Re-mix so shard choice is independent of HashMap bucketing.
        let mixed = key.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        &self.shards[(mixed as usize) % self.shards.len()]
    }

    fn lock(shard: &Mutex<Lru>) -> std::sync::MutexGuard<'_, Lru> {
        // A worker panicking mid-insert cannot leave the list half
        // linked (all list surgery is between fallible operations), so
        // a poisoned shard is safe to keep using.
        shard.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks `key` up, counting the hit or miss.
    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        let found = Self::lock(self.shard(key)).get(key);
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Whether `key` is resident, without counting a hit or miss and
    /// without touching recency. The event loop uses this to decide
    /// fast-path eligibility; the later real `get` still records the
    /// hit, so cache statistics stay exact.
    pub fn contains(&self, key: u64) -> bool {
        Self::lock(self.shard(key)).map.contains_key(&key)
    }

    /// Stores `value` under `key`, evicting the shard's least recently
    /// used entry if the shard is full.
    pub fn insert(&self, key: u64, value: Arc<String>) {
        Self::lock(self.shard(key)).insert(key, value);
    }

    /// Current totals.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| Self::lock(s).map.len())
                .sum(),
        }
    }

    /// Keys of one shard from most to least recently used (tests only).
    pub fn shard_recency(&self, shard: usize) -> Vec<u64> {
        Self::lock(&self.shards[shard]).recency_order()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(capacity: usize) -> ShardedLru {
        ShardedLru::with_shards(capacity, 1)
    }

    fn value(s: &str) -> Arc<String> {
        Arc::new(s.to_owned())
    }

    #[test]
    fn hit_returns_inserted_value() {
        let cache = single(4);
        cache.insert(1, value("one"));
        assert_eq!(cache.get(1).as_deref().map(String::as_str), Some("one"));
        assert_eq!(cache.get(2), None);
    }

    #[test]
    fn eviction_removes_least_recently_used_first() {
        let cache = single(3);
        for k in 1..=3 {
            cache.insert(k, value("v"));
        }
        // Touch 1 so 2 becomes the LRU victim.
        cache.get(1);
        cache.insert(4, value("v"));
        assert!(cache.get(2).is_none(), "2 was LRU and must be evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.get(4).is_some());
        assert_eq!(cache.stats().entries, 3);
    }

    #[test]
    fn recency_order_tracks_gets_and_inserts() {
        let cache = single(3);
        cache.insert(1, value("a"));
        cache.insert(2, value("b"));
        cache.insert(3, value("c"));
        assert_eq!(cache.shard_recency(0), vec![3, 2, 1]);
        cache.get(1);
        assert_eq!(cache.shard_recency(0), vec![1, 3, 2]);
        cache.insert(2, value("b2")); // refresh moves to front
        assert_eq!(cache.shard_recency(0), vec![2, 1, 3]);
        assert_eq!(cache.get(2).as_deref().map(String::as_str), Some("b2"));
    }

    #[test]
    fn eviction_reuses_slots_without_growth() {
        let cache = single(2);
        for k in 0..100u64 {
            cache.insert(k, value("x"));
        }
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(99).is_some());
        assert!(cache.get(98).is_some());
        assert!(cache.get(97).is_none());
    }

    #[test]
    fn hit_miss_accounting_is_exact() {
        let cache = single(8);
        cache.insert(10, value("x"));
        cache.get(10); // hit
        cache.get(10); // hit
        cache.get(11); // miss
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = single(0);
        cache.insert(1, value("x"));
        assert_eq!(cache.get(1), None);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 0);
    }

    #[test]
    fn sharded_capacity_sums_to_total() {
        let cache = ShardedLru::new(1000);
        for k in 0..5000u64 {
            cache.insert(k, value("x"));
        }
        let entries = cache.stats().entries;
        assert!(
            entries <= 1000 && entries >= 900,
            "sharded occupancy {entries} should approach the 1000 cap"
        );
    }

    #[test]
    fn content_hash_distinguishes_bodies() {
        assert_ne!(content_hash(b"<p>a</p>"), content_hash(b"<p>b</p>"));
        assert_eq!(content_hash(b"same"), content_hash(b"same"));
    }

    #[test]
    fn concurrent_access_stays_consistent() {
        let cache = Arc::new(ShardedLru::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let cache = Arc::clone(&cache);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    let key = (t * 31 + i) % 96;
                    if cache.get(key).is_none() {
                        cache.insert(key, Arc::new(format!("v{key}")));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = cache.stats();
        assert!(stats.entries <= 64);
        assert_eq!(stats.hits + stats.misses, 2000);
        // Any resident key must map to its own value.
        for key in 0..96u64 {
            if let Some(v) = cache.get(key) {
                assert_eq!(*v, format!("v{key}"));
            }
        }
    }
}
