//! `webre load` — a fault-injecting load harness for the readiness core.
//!
//! Drives a running server (usually a child `webre serve` process) with
//! a mixed population of clients chosen to stress exactly the paths the
//! readiness rewrite exists for:
//!
//! | class | behaviour | what it proves |
//! |---|---|---|
//! | idle | keep-alive, one probe, then silence | idle connections cost no threads and stay open |
//! | loris | partial head, one byte per sweep | read-budget reaping from the *first* byte |
//! | hot | pipelined cached `/convert` | inline fast path under concurrency |
//! | cold | sequential unique `/convert` | worker dispatch latency (p50/p99/p999) |
//! | healthz | sequential `GET /healthz` | loop liveness while everything else burns |
//! | burst | deep pipelined cold batches | admission control sheds with 429 |
//! | oversized | `content-length` over the limit | early 413 before the body uploads |
//! | abrupt | half a request, then RST/close | reap with no worker ever involved |
//!
//! The report cross-checks client-side observations against the
//! server's own `/metrics` deltas (shed accounting, reap counts,
//! stalled workers), so a lying server cannot pass.

use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use webre_substrate::http::{read_response, ParsedResponse};

/// Everything the harness needs to know about the server under test.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// `host:port` of the running server.
    pub addr: String,
    /// Total concurrent connections to hold open.
    pub connections: usize,
    /// How many of them are slow-loris attackers.
    pub loris: usize,
    /// Closed-loop driving time (loris observation may run longer).
    pub duration: Duration,
    /// A body whose conversion is pre-warmed into the cache (hot class).
    pub hot_body: Vec<u8>,
    /// Template for cold bodies; a unique comment is appended per
    /// request so every one misses the cache.
    pub cold_template: Vec<u8>,
    /// The server's `--max-body` (the oversized class sends one more).
    pub max_body: usize,
    /// The server's read budget — loris reaps are asserted against 2×
    /// this.
    pub read_timeout: Duration,
    /// Optional serve≡batch probe: `(request body, expected response
    /// body)`; checked after the storm on a fresh connection.
    pub identity_probe: Option<(Vec<u8>, Vec<u8>)>,
}

/// What happened, from both the clients' and the server's perspective.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Connections actually opened across all classes.
    pub connections: u64,
    /// Closed-loop requests answered 200/202.
    pub requests_ok: u64,
    /// Overall request latency percentiles, µs (cold + healthz + hot).
    pub p50_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// 99.9th percentile, µs.
    pub p999_us: u64,
    /// `GET /healthz` p99, µs — loop liveness under load.
    pub healthz_p99_us: u64,
    /// Hot-cache `/convert` responses per second (pipelined clients).
    pub hot_rps: u64,
    /// Hot-cache responses received.
    pub hot_requests: u64,
    /// Cold `/convert` responses received.
    pub cold_requests: u64,
    /// 429s observed by clients (deadline shed + queue full).
    pub shed_client_429: u64,
    /// Server-side `requests_rejected_total{reason="deadline"}` delta.
    pub shed_server: u64,
    /// Server-side `requests_rejected_total{reason="queue_full"}` delta.
    pub rejected_server: u64,
    /// Client 429 count == server shed+rejected delta.
    pub shed_accounted: bool,
    /// Server-side reap deltas by reason.
    pub reaped_read: u64,
    /// Idle-budget reaps.
    pub reaped_idle: u64,
    /// Write-budget reaps.
    pub reaped_write: u64,
    /// Loris connections launched.
    pub loris_total: u64,
    /// Loris connections observed closed by the server.
    pub loris_reaped: u64,
    /// p99 of loris time-to-reap, ms (from the first byte sent).
    pub loris_reap_p99_ms: u64,
    /// Oversized uploads answered 413 before the body finished.
    pub oversized_413: u64,
    /// Oversized probes sent.
    pub oversized_total: u64,
    /// Connections abandoned mid-request.
    pub abrupt: u64,
    /// Idle keep-alive connections still open when the storm ended.
    pub idle_open_after: u64,
    /// Idle connections held.
    pub idle_total: u64,
    /// `requests_in_flight` after quiesce — non-zero means a hung worker.
    pub stalled_workers: u64,
    /// Post-storm `/convert` matched the batch pipeline byte for byte.
    pub byte_identical: bool,
}

/// Shared mutable tallies the client threads write into.
#[derive(Default)]
struct Tallies {
    latencies_us: Mutex<Vec<u64>>,
    healthz_us: Mutex<Vec<u64>>,
    ok: AtomicU64,
    too_many: AtomicU64,
    hot: AtomicU64,
    cold: AtomicU64,
    opened: AtomicU64,
}

/// Runs the storm against `config.addr` and reports. Errors only on
/// harness-level failures (cannot connect at all, metrics unreadable);
/// server misbehaviour shows up as report fields, not errors.
pub fn run(config: &LoadConfig) -> Result<LoadReport, String> {
    let before = scrape_metrics(&config.addr)?;
    warm_cache(config)?;

    let tallies = Arc::new(Tallies::default());
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + config.duration;

    // Class sizing: a handful of closed-loop drivers; everything else
    // splits between loris and idle holders.
    let hot_threads = 2usize;
    let cold_threads = 2usize;
    let burst_conns = 4usize;
    let oversized_total = 16usize.min(config.connections / 8).max(1);
    let abrupt_total = 16usize.min(config.connections / 8).max(1);
    let driver_conns = hot_threads + cold_threads + burst_conns + 1 /* healthz */;
    let idle_total = config
        .connections
        .saturating_sub(config.loris + oversized_total + abrupt_total + driver_conns);

    let mut handles = Vec::new();

    // --- idle holders -------------------------------------------------
    let idle_open_after = Arc::new(AtomicU64::new(0));
    let idle_threads = 8usize.min(idle_total.max(1));
    for t in 0..idle_threads {
        let share = idle_total / idle_threads + usize::from(t < idle_total % idle_threads);
        let addr = config.addr.clone();
        let tallies = Arc::clone(&tallies);
        let open_after = Arc::clone(&idle_open_after);
        handles.push(std::thread::spawn(move || {
            idle_holder(&addr, share, deadline, &tallies, &open_after);
        }));
    }

    // --- slow loris ---------------------------------------------------
    let loris_reaped = Arc::new(AtomicU64::new(0));
    let loris_reap_ms = Arc::new(Mutex::new(Vec::new()));
    {
        let addr = config.addr.clone();
        let total = config.loris;
        let read_timeout = config.read_timeout;
        let reaped = Arc::clone(&loris_reaped);
        let reap_ms = Arc::clone(&loris_reap_ms);
        let tallies = Arc::clone(&tallies);
        handles.push(std::thread::spawn(move || {
            loris_swarm(&addr, total, deadline, read_timeout, &tallies, &reaped, &reap_ms);
        }));
    }

    // --- hot pipelined clients ---------------------------------------
    for _ in 0..hot_threads {
        let addr = config.addr.clone();
        let body = config.hot_body.clone();
        let tallies = Arc::clone(&tallies);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            hot_client(&addr, &body, deadline, &tallies, &stop);
        }));
    }

    // --- cold sequential clients -------------------------------------
    let cold_counter = Arc::new(AtomicU64::new(0));
    for _ in 0..cold_threads {
        let addr = config.addr.clone();
        let template = config.cold_template.clone();
        let tallies = Arc::clone(&tallies);
        let counter = Arc::clone(&cold_counter);
        handles.push(std::thread::spawn(move || {
            cold_client(&addr, &template, deadline, &tallies, &counter);
        }));
    }

    // --- burst (shedding) client -------------------------------------
    {
        let addr = config.addr.clone();
        let template = config.cold_template.clone();
        let tallies = Arc::clone(&tallies);
        let counter = Arc::clone(&cold_counter);
        handles.push(std::thread::spawn(move || {
            burst_client(&addr, &template, burst_conns, deadline, &tallies, &counter);
        }));
    }

    // --- healthz prober ----------------------------------------------
    {
        let addr = config.addr.clone();
        let tallies = Arc::clone(&tallies);
        handles.push(std::thread::spawn(move || {
            healthz_client(&addr, deadline, &tallies);
        }));
    }

    // --- oversized + abrupt faults -----------------------------------
    let oversized_ok = Arc::new(AtomicU64::new(0));
    {
        let addr = config.addr.clone();
        let max_body = config.max_body;
        let tallies = Arc::clone(&tallies);
        let ok = Arc::clone(&oversized_ok);
        handles.push(std::thread::spawn(move || {
            for _ in 0..oversized_total {
                if oversized_probe(&addr, max_body, &tallies) {
                    ok.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    let abrupt_done = Arc::new(AtomicU64::new(0));
    {
        let addr = config.addr.clone();
        let tallies = Arc::clone(&tallies);
        let done = Arc::clone(&abrupt_done);
        handles.push(std::thread::spawn(move || {
            for _ in 0..abrupt_total {
                abrupt_probe(&addr, &tallies);
                done.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    for handle in handles {
        // A panicking client thread is a harness bug; surface it as a
        // short report rather than a hang.
        if handle.join().is_err() {
            return Err("a load-harness client thread panicked".to_owned());
        }
    }
    stop.store(true, Ordering::SeqCst);

    // Quiesce: with every client gone, in-flight work must reach zero.
    let mut stalled = u64::MAX;
    let quiesce_deadline = Instant::now() + Duration::from_secs(5);
    while Instant::now() < quiesce_deadline {
        let metrics = scrape_metrics(&config.addr)?;
        stalled = counter(&metrics, "requests_in_flight");
        if stalled == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let byte_identical = match &config.identity_probe {
        None => true,
        Some((body, expected)) => {
            let response = one_shot(&config.addr, "POST", "/convert", body)
                .map_err(|e| format!("post-storm identity probe failed: {e}"))?;
            response.status == 200 && response.body == *expected
        }
    };

    let after = scrape_metrics(&config.addr)?;
    let shed_server = counter(&after, "requests_rejected_total{reason=\"deadline\"}")
        - counter(&before, "requests_rejected_total{reason=\"deadline\"}");
    let rejected_server = counter(&after, "requests_rejected_total{reason=\"queue_full\"}")
        - counter(&before, "requests_rejected_total{reason=\"queue_full\"}");
    let shed_client = tallies.too_many.load(Ordering::Relaxed);

    let mut all = lock(&tallies.latencies_us).clone();
    let (p50, p99, p999) = percentiles(&mut all);
    let mut healthz = lock(&tallies.healthz_us).clone();
    let (_, healthz_p99, _) = percentiles(&mut healthz);
    let mut reaps = lock(&loris_reap_ms).clone();
    let (_, loris_p99_ms, _) = percentiles(&mut reaps);

    let hot = tallies.hot.load(Ordering::Relaxed);
    Ok(LoadReport {
        connections: tallies.opened.load(Ordering::Relaxed),
        requests_ok: tallies.ok.load(Ordering::Relaxed),
        p50_us: p50,
        p99_us: p99,
        p999_us: p999,
        healthz_p99_us: healthz_p99,
        hot_rps: (hot as f64 / config.duration.as_secs_f64().max(0.001)) as u64,
        hot_requests: hot,
        cold_requests: tallies.cold.load(Ordering::Relaxed),
        shed_client_429: shed_client,
        shed_server,
        rejected_server,
        shed_accounted: shed_client == shed_server + rejected_server,
        reaped_read: counter(&after, "connections_reaped_total{reason=\"read_timeout\"}")
            - counter(&before, "connections_reaped_total{reason=\"read_timeout\"}"),
        reaped_idle: counter(&after, "connections_reaped_total{reason=\"idle_timeout\"}")
            - counter(&before, "connections_reaped_total{reason=\"idle_timeout\"}"),
        reaped_write: counter(&after, "connections_reaped_total{reason=\"write_timeout\"}")
            - counter(&before, "connections_reaped_total{reason=\"write_timeout\"}"),
        loris_total: config.loris as u64,
        loris_reaped: loris_reaped.load(Ordering::Relaxed),
        loris_reap_p99_ms: loris_p99_ms,
        oversized_413: oversized_ok.load(Ordering::Relaxed),
        oversized_total: oversized_total as u64,
        abrupt: abrupt_done.load(Ordering::Relaxed),
        idle_open_after: idle_open_after.load(Ordering::Relaxed),
        idle_total: idle_total as u64,
        stalled_workers: stalled,
        byte_identical,
    })
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Sorted-percentile triple (p50, p99, p999); zeros when empty.
fn percentiles(samples: &mut [u64]) -> (u64, u64, u64) {
    if samples.is_empty() {
        return (0, 0, 0);
    }
    samples.sort_unstable();
    let pick = |q_num: usize, q_den: usize| {
        let rank = (samples.len() * q_num).div_ceil(q_den);
        samples.get(rank.saturating_sub(1).min(samples.len() - 1)).copied().unwrap_or(0)
    };
    (pick(50, 100), pick(99, 100), pick(999, 1000))
}

/// One blocking request on a fresh connection.
fn one_shot(addr: &str, method: &str, path: &str, body: &[u8]) -> io::Result<ParsedResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    write_request(&mut stream, method, path, body, false)?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader, 64 << 20).map_err(|e| io::Error::other(e.to_string()))
}

fn write_request(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: load\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    let mut message = head.into_bytes();
    message.extend_from_slice(body);
    stream.write_all(&message)
}

/// Ensures the hot body's conversion is resident before measurement.
fn warm_cache(config: &LoadConfig) -> Result<(), String> {
    let response = one_shot(&config.addr, "POST", "/convert", &config.hot_body)
        .map_err(|e| format!("cache warm-up failed: {e}"))?;
    if response.status != 200 {
        return Err(format!("cache warm-up answered {}", response.status));
    }
    Ok(())
}

/// Fetches `/metrics` as plain text.
fn scrape_metrics(addr: &str) -> Result<String, String> {
    let response = one_shot(addr, "GET", "/metrics", b"")
        .map_err(|e| format!("metrics scrape failed: {e}"))?;
    Ok(response.text())
}

/// Reads one `name value` sample out of an exposition; 0 when absent.
fn counter(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|line| line.strip_prefix(name).map(str::trim))
        .and_then(|rest| rest.parse::<u64>().ok())
        .unwrap_or(0)
}

/// Opens `share` keep-alive connections, probes each once, then holds
/// them silently until the deadline and counts how many the server kept
/// open (a reaped or closed socket reads EOF instead of `WouldBlock`).
fn idle_holder(
    addr: &str,
    share: usize,
    deadline: Instant,
    tallies: &Tallies,
    open_after: &AtomicU64,
) {
    let mut held = Vec::with_capacity(share);
    for _ in 0..share {
        let Ok(mut stream) = TcpStream::connect(addr) else { continue };
        tallies.opened.fetch_add(1, Ordering::Relaxed);
        if stream.set_read_timeout(Some(Duration::from_secs(10))).is_err() {
            continue;
        }
        if write_request(&mut stream, "GET", "/healthz", b"", true).is_err() {
            continue;
        }
        let mut reader = BufReader::new(stream);
        if let Ok(response) = read_response(&mut reader, 1 << 20) {
            if response.status == 200 {
                tallies.ok.fetch_add(1, Ordering::Relaxed);
                held.push(reader.into_inner());
            }
        }
    }
    let remaining = deadline.saturating_duration_since(Instant::now());
    std::thread::sleep(remaining);
    for stream in held {
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let mut probe = [0u8; 8];
        let open = match (&stream).read(&mut probe) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => true,
            // EOF or any data (server must not have sent anything
            // unsolicited) or error: the server let go of us.
            _ => false,
        };
        if open {
            open_after.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Launches `total` slow-loris connections and trickles one byte to
/// each per sweep, recording when the server cuts each one off.
#[allow(clippy::too_many_arguments)]
fn loris_swarm(
    addr: &str,
    total: usize,
    deadline: Instant,
    read_timeout: Duration,
    tallies: &Tallies,
    reaped: &AtomicU64,
    reap_ms: &Mutex<Vec<u64>>,
) {
    struct Loris {
        stream: TcpStream,
        started: Instant,
        done: bool,
    }
    let mut swarm = Vec::with_capacity(total);
    for _ in 0..total {
        let Ok(stream) = TcpStream::connect(addr) else { continue };
        tallies.opened.fetch_add(1, Ordering::Relaxed);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let mut loris = Loris { stream, started: Instant::now(), done: false };
        // A deliberately incomplete head: the read budget starts here.
        if loris.stream.write(b"POST /convert HTTP/1.1\r\nx-slow: ").is_err() {
            continue;
        }
        swarm.push(loris);
    }
    // Observe reaps for up to 2.5× the read budget past the deadline so
    // the assertion "reaped within 2×" has headroom to actually fail.
    // Anchored to whichever is later of the deadline and the end of the
    // connect phase: under a full connection storm the blocking
    // connects above can contend with every other class for the accept
    // queue, and an observation window anchored to the global deadline
    // alone could expire before the first sweep ever ran.
    let connected = Instant::now();
    let hard_stop = connected.max(deadline) + read_timeout * 2 + read_timeout / 2
        + Duration::from_secs(1);
    let mut live = swarm.len();
    while live > 0 && Instant::now() < hard_stop {
        for loris in swarm.iter_mut().filter(|l| !l.done) {
            let mut buf = [0u8; 256];
            let closed = match loris.stream.read(&mut buf) {
                Ok(0) => true,          // EOF: reaped
                Ok(_) => false,         // courtesy 408 bytes; EOF follows
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // Trickle another header byte to prove the budget
                    // runs from the first byte, not the last.
                    matches!(loris.stream.write(b"z"), Err(ref we) if we.kind() != io::ErrorKind::WouldBlock)
                }
                Err(_) => true,         // reset: reaped
            };
            if closed {
                loris.done = true;
                live -= 1;
                reaped.fetch_add(1, Ordering::Relaxed);
                lock(reap_ms).push(loris.started.elapsed().as_millis() as u64);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Pipeline depth for the hot class.
const HOT_PIPELINE: usize = 16;

/// Closed-loop pipelined hot-cache client: `HOT_PIPELINE` requests per
/// write, read back the same number of responses.
fn hot_client(addr: &str, body: &[u8], deadline: Instant, tallies: &Tallies, stop: &AtomicBool) {
    let Ok(mut stream) = TcpStream::connect(addr) else { return };
    tallies.opened.fetch_add(1, Ordering::Relaxed);
    if stream.set_read_timeout(Some(Duration::from_secs(10))).is_err() {
        return;
    }
    let one = {
        let head = format!(
            "POST /convert HTTP/1.1\r\nhost: load\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
            body.len()
        );
        let mut message = head.into_bytes();
        message.extend_from_slice(body);
        message
    };
    let batch: Vec<u8> = one.repeat(HOT_PIPELINE);
    let Ok(reader_stream) = stream.try_clone() else { return };
    let mut reader = BufReader::new(reader_stream);
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        let started = Instant::now();
        if stream.write_all(&batch).is_err() {
            return;
        }
        for _ in 0..HOT_PIPELINE {
            match read_response(&mut reader, 64 << 20) {
                Ok(response) if response.status == 200 => {
                    tallies.hot.fetch_add(1, Ordering::Relaxed);
                    tallies.ok.fetch_add(1, Ordering::Relaxed);
                }
                Ok(response) if response.status == 429 => {
                    tallies.too_many.fetch_add(1, Ordering::Relaxed);
                }
                _ => return,
            }
        }
        let per_response = started.elapsed().as_micros() as u64 / HOT_PIPELINE as u64;
        let mut latencies = lock(&tallies.latencies_us);
        for _ in 0..HOT_PIPELINE {
            latencies.push(per_response);
        }
    }
}

/// Closed-loop cold client: every body is unique, so every request
/// takes the full conversion path through the worker pool.
fn cold_client(
    addr: &str,
    template: &[u8],
    deadline: Instant,
    tallies: &Tallies,
    counter: &AtomicU64,
) {
    let Ok(mut stream) = TcpStream::connect(addr) else { return };
    tallies.opened.fetch_add(1, Ordering::Relaxed);
    if stream.set_read_timeout(Some(Duration::from_secs(10))).is_err() {
        return;
    }
    let Ok(reader_stream) = stream.try_clone() else { return };
    let mut reader = BufReader::new(reader_stream);
    while Instant::now() < deadline {
        let n = counter.fetch_add(1, Ordering::Relaxed);
        let mut body = template.to_vec();
        body.extend_from_slice(format!("\n<!-- cold {n} -->").as_bytes());
        let started = Instant::now();
        if write_request(&mut stream, "POST", "/convert", &body, true).is_err() {
            return;
        }
        match read_response(&mut reader, 64 << 20) {
            Ok(response) if response.status == 200 => {
                tallies.cold.fetch_add(1, Ordering::Relaxed);
                tallies.ok.fetch_add(1, Ordering::Relaxed);
                lock(&tallies.latencies_us).push(started.elapsed().as_micros() as u64);
            }
            Ok(response) if response.status == 429 => {
                tallies.too_many.fetch_add(1, Ordering::Relaxed);
            }
            _ => return,
        }
    }
}

/// Burst depth for the shedding class.
const BURST_DEPTH: usize = 64;

/// Fires deep pipelined batches of cold conversions across a few
/// connections — offered load far beyond capacity, so with a deadline
/// configured the server must shed (and the 429s are counted).
fn burst_client(
    addr: &str,
    template: &[u8],
    conns: usize,
    deadline: Instant,
    tallies: &Tallies,
    counter: &AtomicU64,
) {
    let mut streams = Vec::new();
    for _ in 0..conns {
        let Ok(stream) = TcpStream::connect(addr) else { continue };
        tallies.opened.fetch_add(1, Ordering::Relaxed);
        if stream.set_read_timeout(Some(Duration::from_secs(10))).is_err() {
            continue;
        }
        let Ok(reader_stream) = stream.try_clone() else { continue };
        streams.push((stream, BufReader::new(reader_stream)));
    }
    while Instant::now() < deadline && !streams.is_empty() {
        let mut dead = Vec::new();
        for (i, (stream, reader)) in streams.iter_mut().enumerate() {
            let mut batch = Vec::new();
            for _ in 0..BURST_DEPTH {
                let n = counter.fetch_add(1, Ordering::Relaxed);
                let mut body = template.to_vec();
                body.extend_from_slice(format!("\n<!-- burst {n} -->").as_bytes());
                let head = format!(
                    "POST /convert HTTP/1.1\r\nhost: load\r\ncontent-length: {}\r\nconnection: keep-alive\r\n\r\n",
                    body.len()
                );
                batch.extend_from_slice(head.as_bytes());
                batch.extend_from_slice(&body);
            }
            if stream.write_all(&batch).is_err() {
                dead.push(i);
                continue;
            }
            for _ in 0..BURST_DEPTH {
                match read_response(reader, 64 << 20) {
                    Ok(response) if response.status == 200 => {
                        tallies.cold.fetch_add(1, Ordering::Relaxed);
                        tallies.ok.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(response) if response.status == 429 => {
                        tallies.too_many.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        dead.push(i);
                        break;
                    }
                }
            }
        }
        for i in dead.into_iter().rev() {
            streams.remove(i);
        }
    }
}

/// Sequential `GET /healthz` prober; its p99 is the headline liveness
/// number for the event loop.
fn healthz_client(addr: &str, deadline: Instant, tallies: &Tallies) {
    let Ok(mut stream) = TcpStream::connect(addr) else { return };
    tallies.opened.fetch_add(1, Ordering::Relaxed);
    if stream.set_read_timeout(Some(Duration::from_secs(10))).is_err() {
        return;
    }
    let Ok(reader_stream) = stream.try_clone() else { return };
    let mut reader = BufReader::new(reader_stream);
    while Instant::now() < deadline {
        let started = Instant::now();
        if write_request(&mut stream, "GET", "/healthz", b"", true).is_err() {
            return;
        }
        match read_response(&mut reader, 1 << 20) {
            Ok(response) if response.status == 200 => {
                let us = started.elapsed().as_micros() as u64;
                tallies.ok.fetch_add(1, Ordering::Relaxed);
                lock(&tallies.healthz_us).push(us);
                lock(&tallies.latencies_us).push(us);
            }
            _ => return,
        }
    }
}

/// Declares a body one byte over the limit and starts uploading it
/// slowly; a correct server answers 413 from the headers alone.
fn oversized_probe(addr: &str, max_body: usize, tallies: &Tallies) -> bool {
    let Ok(mut stream) = TcpStream::connect(addr) else { return false };
    tallies.opened.fetch_add(1, Ordering::Relaxed);
    if stream.set_read_timeout(Some(Duration::from_secs(5))).is_err() {
        return false;
    }
    let head = format!(
        "POST /convert HTTP/1.1\r\nhost: load\r\ncontent-length: {}\r\n\r\n",
        max_body + 1
    );
    if stream.write_all(head.as_bytes()).is_err() {
        return false;
    }
    // A token first chunk — far less than the declared length. The 413
    // must arrive without the server waiting for the rest.
    if stream.write_all(&[b'x'; 1024]).is_err() {
        return false;
    }
    let mut reader = BufReader::new(stream);
    matches!(read_response(&mut reader, 1 << 20), Ok(response) if response.status == 413)
}

/// Sends half a request head and hangs up.
fn abrupt_probe(addr: &str, tallies: &Tallies) {
    let Ok(mut stream) = TcpStream::connect(addr) else { return };
    tallies.opened.fetch_add(1, Ordering::Relaxed);
    // webre::allow(dropped-result): the disconnect IS the fault we inject
    let _ = stream.write_all(b"POST /convert HTTP/1.1\r\ncontent-length: 100\r\n\r\nhalf");
    // Drop closes the socket with the body unfinished.
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_pick_the_expected_ranks() {
        let mut samples: Vec<u64> = (1..=1000).collect();
        let (p50, p99, p999) = percentiles(&mut samples);
        assert_eq!(p50, 500);
        assert_eq!(p99, 990);
        assert_eq!(p999, 999);
        let (a, b, c) = percentiles(&mut []);
        assert_eq!((a, b, c), (0, 0, 0));
    }

    #[test]
    fn counter_parses_exact_sample_names_only() {
        let text = "requests_in_flight 3\nrequests_rejected_total{reason=\"deadline\"} 7\n";
        assert_eq!(counter(text, "requests_in_flight"), 3);
        assert_eq!(counter(text, "requests_rejected_total{reason=\"deadline\"}"), 7);
        assert_eq!(counter(text, "missing_counter"), 0);
    }
}
