//! Method/path → route resolution.
//!
//! Routing is a pure function so it is trivially testable and the
//! handler layer never sees raw targets. Unknown paths map to `404`,
//! known paths with the wrong method to `405` (with an `allow` header),
//! both produced here so every worker answers identically.

use crate::metrics::Endpoint;
use webre_substrate::http::Response;

/// A resolved route.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// `POST /convert`
    Convert,
    /// `POST /map`
    Map,
    /// `POST /corpus/docs`
    CorpusDocs,
    /// `POST /corpus/xml`
    CorpusXml,
    /// `GET /corpus/table`
    CorpusTable,
    /// `GET /schema`
    Schema,
    /// `GET /schema/dtd`
    SchemaDtd,
    /// `GET /metrics`
    Metrics,
    /// `GET /healthz`
    Healthz,
    /// `POST /shutdown`
    Shutdown,
}

impl Route {
    /// The metrics endpoint this route reports under.
    pub fn endpoint(self) -> Endpoint {
        match self {
            Route::Convert => Endpoint::Convert,
            Route::Map => Endpoint::Map,
            Route::CorpusDocs => Endpoint::CorpusDocs,
            Route::CorpusXml => Endpoint::CorpusXml,
            Route::CorpusTable => Endpoint::CorpusTable,
            Route::Schema => Endpoint::Schema,
            Route::SchemaDtd => Endpoint::SchemaDtd,
            Route::Metrics => Endpoint::Metrics,
            Route::Healthz => Endpoint::Healthz,
            Route::Shutdown => Endpoint::Shutdown,
        }
    }
}

/// Resolves a request line; `Err` carries the ready-made error response.
pub fn route(method: &str, path: &str) -> Result<Route, Response> {
    let (expected, route) = match path {
        "/convert" => ("POST", Route::Convert),
        "/map" => ("POST", Route::Map),
        "/corpus/docs" => ("POST", Route::CorpusDocs),
        "/corpus/xml" => ("POST", Route::CorpusXml),
        "/corpus/table" => ("GET", Route::CorpusTable),
        "/schema" => ("GET", Route::Schema),
        "/schema/dtd" => ("GET", Route::SchemaDtd),
        "/metrics" => ("GET", Route::Metrics),
        "/healthz" => ("GET", Route::Healthz),
        "/shutdown" => ("POST", Route::Shutdown),
        _ => {
            return Err(Response::text(
                404,
                format!("no route for {path}\n"),
            ))
        }
    };
    if method != expected {
        return Err(Response::text(
            405,
            format!("{path} expects {expected}, got {method}\n"),
        )
        .with_header("allow", expected));
    }
    Ok(route)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_route_resolves() {
        assert_eq!(route("POST", "/convert"), Ok(Route::Convert));
        assert_eq!(route("POST", "/map"), Ok(Route::Map));
        assert_eq!(route("POST", "/corpus/docs"), Ok(Route::CorpusDocs));
        assert_eq!(route("POST", "/corpus/xml"), Ok(Route::CorpusXml));
        assert_eq!(route("GET", "/corpus/table"), Ok(Route::CorpusTable));
        assert_eq!(route("GET", "/schema"), Ok(Route::Schema));
        assert_eq!(route("GET", "/schema/dtd"), Ok(Route::SchemaDtd));
        assert_eq!(route("GET", "/metrics"), Ok(Route::Metrics));
        assert_eq!(route("GET", "/healthz"), Ok(Route::Healthz));
        assert_eq!(route("POST", "/shutdown"), Ok(Route::Shutdown));
    }

    #[test]
    fn unknown_path_is_404() {
        let err = route("GET", "/nope").unwrap_err();
        assert_eq!(err.status, 404);
    }

    #[test]
    fn wrong_method_is_405_with_allow() {
        let err = route("GET", "/convert").unwrap_err();
        assert_eq!(err.status, 405);
        assert!(err.headers.iter().any(|(n, v)| n == "allow" && v == "POST"));
    }
}
