//! Crash-recovery property tests for the durable corpus store.
//!
//! The contract under test: for ANY prefix of a shard's write-ahead log
//! — including a torn final record — and for any single corrupted byte,
//! reopening the store never panics and yields exactly the corpus that
//! was live when the last intact record was appended. A corrupt suffix
//! is skipped with a warning and truncated away, so subsequent appends
//! replay cleanly.

use std::path::{Path, PathBuf};
use webre_serve::persist::{CorpusStore, StoreConfig};
use webre_schema::{doc_to_record, extract_paths, DocPaths, PathTable, ShardedCorpus};
use webre_xml::parse_xml;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webre-walrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &Path) -> StoreConfig {
    StoreConfig {
        data_dir: dir.to_path_buf(),
        shards: 1,
        sync_every: 1,
        // Never compact: the whole history stays in the tail log, so
        // prefixes of the file are exactly prefixes of the ingest.
        compact_min: usize::MAX,
    }
}

fn docs() -> Vec<DocPaths> {
    [
        "<resume><education><degree/></education></resume>",
        "<resume><education><degree/><degree/></education><contact/></resume>",
        "<resume><skills/></resume>",
        "<resume><education/><skills><skill/><skill/></skills></resume>",
        "<resume><contact/><contact/></resume>",
        "<resume><objective/><education><degree><date/></degree></education></resume>",
    ]
    .iter()
    .map(|xml| extract_paths(&parse_xml(xml).unwrap()))
    .collect()
}

/// Ingests `docs` through a store in `dir` and returns the WAL bytes.
fn build_log(dir: &Path, docs: &[DocPaths]) -> Vec<u8> {
    let (mut store, mut corpus, _) = CorpusStore::open(&config(dir)).unwrap();
    for doc in docs {
        let record = doc_to_record(doc);
        corpus.push_to(0, doc.clone());
        store.log_doc(0, &record, &corpus.shards()[0]).unwrap();
    }
    store.sync_to_disk().unwrap();
    std::fs::read(dir.join("shard-0.wal")).unwrap()
}

/// Expected corpus after the first `n` documents.
fn prefix_table(docs: &[DocPaths], n: usize) -> PathTable {
    PathTable::from_docs(&docs[..n])
}

/// Reopens the store over a log image and returns (corpus, warnings).
fn recover(dir: &Path, wal_bytes: &[u8]) -> (ShardedCorpus, Vec<String>) {
    std::fs::write(dir.join("shard-0.wal"), wal_bytes).unwrap();
    let (_, corpus, report) = CorpusStore::open(&config(dir)).unwrap();
    (corpus, report.warnings)
}

#[test]
fn every_log_prefix_recovers_the_corpus_at_that_point() {
    let dir = temp_dir("prefix");
    let docs = docs();
    let log = build_log(&dir, &docs);
    // Record boundaries: scanning the intact log gives us, for each byte
    // count, how many whole records fit.
    let mut boundaries = vec![0usize];
    {
        let decoded = webre_substrate::wal::decode_records(&log);
        assert_eq!(decoded.records.len(), docs.len());
        let mut offset = 0usize;
        for record in &decoded.records {
            offset += webre_substrate::wal::HEADER_LEN + record.len();
            boundaries.push(offset);
        }
    }
    for cut in 0..=log.len() {
        let complete = boundaries.iter().filter(|b| **b <= cut).count() - 1;
        let (corpus, warnings) = recover(&dir, &log[..cut]);
        assert_eq!(
            corpus.len(),
            complete,
            "cut at byte {cut}: wrong doc count"
        );
        assert_eq!(
            corpus.table(),
            prefix_table(&docs, complete),
            "cut at byte {cut}: recovered corpus diverges from the live corpus at that point"
        );
        let torn = !boundaries.contains(&cut);
        assert_eq!(
            !warnings.is_empty(),
            torn,
            "cut at byte {cut}: torn tails (and only torn tails) must warn: {warnings:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_checksum_drops_the_suffix_not_the_store() {
    let dir = temp_dir("flip");
    let docs = docs();
    let log = build_log(&dir, &docs);
    let boundaries: Vec<usize> = {
        let decoded = webre_substrate::wal::decode_records(&log);
        let mut offsets = vec![0usize];
        for record in &decoded.records {
            offsets.push(offsets.last().unwrap() + webre_substrate::wal::HEADER_LEN + record.len());
        }
        offsets
    };
    // Flip one payload byte inside each record in turn: recovery keeps
    // exactly the records before the flipped one.
    for (i, window) in boundaries.windows(2).enumerate() {
        let mut bad = log.clone();
        let payload_at = window[0] + webre_substrate::wal::HEADER_LEN;
        assert!(payload_at < window[1]);
        bad[payload_at] ^= 0x01;
        let (corpus, warnings) = recover(&dir, &bad);
        assert_eq!(corpus.len(), i, "flip in record {i}");
        assert_eq!(corpus.table(), prefix_table(&docs, i), "flip in record {i}");
        assert_eq!(warnings.len(), 1, "flip in record {i}: {warnings:?}");
        assert!(
            warnings[0].contains("checksum"),
            "flip in record {i}: {warnings:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn appending_after_recovery_continues_from_the_intact_prefix() {
    let dir = temp_dir("append");
    let docs = docs();
    let log = build_log(&dir, &docs);
    // Tear the log mid-way through the last record.
    std::fs::write(dir.join("shard-0.wal"), &log[..log.len() - 2]).unwrap();
    let (mut store, mut corpus, report) = CorpusStore::open(&config(&dir)).unwrap();
    assert_eq!(corpus.len(), docs.len() - 1);
    assert_eq!(report.warnings.len(), 1);
    // The torn suffix was truncated; a fresh append must be replayable.
    let extra = extract_paths(&parse_xml("<resume><awards/></resume>").unwrap());
    let record = doc_to_record(&extra);
    corpus.push_to(0, extra.clone());
    store.log_doc(0, &record, &corpus.shards()[0]).unwrap();
    store.sync_to_disk().unwrap();
    drop(store);
    let (_, recovered, report) = CorpusStore::open(&config(&dir)).unwrap();
    assert!(report.warnings.is_empty(), "{:?}", report.warnings);
    assert_eq!(recovered.len(), docs.len());
    let mut expected: Vec<DocPaths> = docs[..docs.len() - 1].to_vec();
    expected.push(extra);
    assert_eq!(recovered.table(), PathTable::from_docs(&expected));
    std::fs::remove_dir_all(&dir).unwrap();
}
