//! Observability consistency over real TCP: after a concurrent
//! keep-alive workload drains, the per-stage span accounting in the
//! extended `/metrics` must agree exactly with the HTTP-level request
//! counters.
//!
//! The invariant is exact (not `>=`) because both tallies settle before
//! a response is written: the `request` span closes inside the worker's
//! unwind guard and `requests_total` is bumped right after — so once
//! every workload response has been read, both sides have counted
//! precisely those requests, and the in-flight `/metrics` request that
//! reads them appears in neither (spans tally at span *end*).

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use webre_obs::clock::MonotonicClock;
use webre_obs::trace::TraceRecorder;
use webre_obs::{stage, Ctx};
use webre_serve::obs::ObsLayer;
use webre_serve::server::{ServeConfig, Server};
use webre_serve::Engine;
use webre_substrate::http::{read_response, write_request, ParsedResponse};

const RESUME: &str =
    "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li></ul>\
     <h2>Skills</h2><p>C++, Java, XML</p>";

fn ephemeral(workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_cap: 64,
        ..ServeConfig::default()
    }
}

fn roundtrip(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> ParsedResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_request(&mut stream, method, target, body, false).expect("send");
    read_response(&mut BufReader::new(stream), 16 * 1024 * 1024).expect("response")
}

/// Sums every `requests_total{endpoint="..."} N` line.
fn requests_total(metrics: &str) -> u64 {
    metrics
        .lines()
        .filter(|l| l.starts_with("requests_total{endpoint="))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum()
}

/// Reads the value of a single exact-prefix metric line.
fn metric(metrics: &str, prefix: &str) -> Option<u64> {
    metrics
        .lines()
        .find(|l| l.starts_with(prefix))
        .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
}

#[test]
fn request_span_tally_equals_request_counter_after_keepalive_workload() {
    let server = Server::start(ephemeral(3), Engine::resume_domain()).expect("bind");
    let addr = server.local_addr();

    // Concurrent keep-alive clients, each pipelining a mix of endpoints
    // over one connection.
    let clients = 4;
    let per_client = 6;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(10)))
                    .unwrap();
                let mut writer = stream.try_clone().unwrap();
                let mut reader = BufReader::new(stream);
                for i in 0..per_client {
                    let (method, target, body): (&str, &str, &[u8]) = match (c + i) % 4 {
                        0 => ("POST", "/convert", RESUME.as_bytes()),
                        1 => ("POST", "/corpus/docs", RESUME.as_bytes()),
                        2 => ("GET", "/schema", b""),
                        _ => ("GET", "/healthz", b""),
                    };
                    write_request(&mut writer, method, target, body, true).expect("send");
                    let response =
                        read_response(&mut reader, 16 * 1024 * 1024).expect("response");
                    assert!(
                        response.status < 500,
                        "{method} {target}: {}",
                        response.status
                    );
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("client thread");
    }

    // Every workload response has been read, so both tallies are settled.
    let metrics = roundtrip(addr, "GET", "/metrics", b"").text();
    let served = requests_total(&metrics);
    assert_eq!(served, (clients * per_client) as u64, "{metrics}");
    let request_spans = metric(&metrics, "pipeline_spans_total{stage=\"request\"}")
        .expect("request span line present");
    assert_eq!(
        request_spans, served,
        "span tally diverges from the request counter:\n{metrics}"
    );
    // Pipeline stages nested under those requests surfaced too: the
    // conversions ran under `convert` spans with token counters.
    assert!(
        metric(&metrics, "pipeline_spans_total{stage=\"convert\"}").unwrap_or(0) > 0,
        "{metrics}"
    );
    assert!(
        metric(&metrics, "pipeline_counter_total{counter=\"tokens_split\"}").unwrap_or(0) > 0,
        "{metrics}"
    );

    server.request_drain();
    server.join();
}

#[test]
fn traced_server_tees_request_spans_into_the_trace() {
    let trace = Arc::new(TraceRecorder::new(Box::new(MonotonicClock::new())));
    let server = Server::start_with_obs(
        ephemeral(2),
        Engine::resume_domain(),
        ObsLayer::new(Some(Arc::clone(&trace))),
    )
    .expect("bind");
    let addr = server.local_addr();

    for _ in 0..3 {
        let response = roundtrip(addr, "POST", "/convert", RESUME.as_bytes());
        assert_eq!(response.status, 200);
    }
    let metrics = roundtrip(addr, "GET", "/metrics", b"").text();
    server.request_drain();
    server.join();

    let spans = trace.spans();
    let requests = spans.iter().filter(|s| s.name == stage::REQUEST).count();
    // 3 converts + the /metrics read (drain went through request_drain,
    // not HTTP). Every request span must be closed after join, and the
    // stats side of the tee saw the same spans — minus the /metrics
    // request itself, which was still open while rendering.
    assert_eq!(requests, 4, "request spans: {spans:?}");
    assert!(spans.iter().all(|s| s.end_ns.is_some()));
    let stats_requests = metric(&metrics, "pipeline_spans_total{stage=\"request\"}").unwrap();
    assert_eq!(stats_requests, 3, "{metrics}");
    // The chrome export of a server trace parses and tracks each request
    // on its own tid.
    let json = trace.to_chrome_json();
    let doc = webre_substrate::json::Json::parse(&json).expect("chrome export parses");
    let events = doc
        .get("traceEvents")
        .and_then(webre_substrate::json::Json::as_arr)
        .unwrap();
    assert_eq!(events.len(), spans.len());
}

#[test]
fn in_flight_metrics_request_is_excluded_from_both_tallies() {
    // Driven through the handler directly (no TCP): the /metrics request
    // renders while its own span is still open, so a fresh app reports
    // zero request spans — the exclusion that makes the equality above
    // exact rather than off-by-one.
    use webre_serve::handlers::{handle_obs, App};
    let app = App::new(Engine::resume_domain(), 16, 1);
    let request = webre_substrate::http::Request {
        method: "GET".into(),
        target: "/metrics".into(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let ctx = Ctx::new(app.obs.recorder());
    let scope = ctx.span(stage::REQUEST);
    let response = handle_obs(&app, &request, scope.ctx());
    drop(scope);
    let text = String::from_utf8(response.body).unwrap();
    assert!(
        !text.contains("pipeline_spans_total{stage=\"request\"}"),
        "open request span leaked into its own /metrics render:\n{text}"
    );
    // After the span closes, the next render counts it.
    let rendered = app.obs.stats().render();
    assert!(
        rendered.contains("pipeline_spans_total{stage=\"request\"} 1"),
        "{rendered}"
    );
}
