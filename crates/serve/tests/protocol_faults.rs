//! Wire-level fault injection against a live server: torn writes,
//! malformed framing, and mid-request disconnects. Every scenario must
//! end in an exact status code or a clean reap — never a hung worker,
//! never a panic. Each test finishes by proving the server is still
//! fully live (`requests_in_flight == 0` and a fresh `/healthz` works).

use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use webre_serve::handlers::App;
use webre_serve::server::{ServeConfig, Server};
use webre_serve::Engine;
use webre_substrate::http::read_response;

const RESUME: &str =
    "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li>\
     <li>MIT, B.S., 1994</li></ul><h2>Skills</h2><p>C++, Java, XML</p>";

fn start() -> Server {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_cap: 16,
        ..ServeConfig::default()
    };
    Server::start(config, Engine::resume_domain()).expect("bind ephemeral port")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream
}

/// After any fault, the server must have zero requests in flight and
/// still answer a fresh connection — the "no hung worker" postcondition.
fn assert_fully_live(addr: SocketAddr, app: &App) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while app.metrics.in_flight.load(Ordering::Relaxed) != 0 {
        assert!(
            Instant::now() < deadline,
            "a worker is still stuck in a request after the fault"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut probe = connect(addr);
    probe
        .write_all(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n")
        .unwrap();
    let response = read_response(&mut BufReader::new(probe), 1024).expect("healthz after fault");
    assert_eq!(response.status, 200, "server unhealthy after the fault");
}

#[test]
fn byte_at_a_time_delivery_still_yields_a_complete_response() {
    let server = start();
    let addr = server.local_addr();

    let request = format!(
        "POST /convert HTTP/1.1\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{}",
        RESUME.len(),
        RESUME
    );
    let mut stream = connect(addr);
    // One byte per write for the head, so the parser sees dozens of
    // partial states; the body goes in small chunks to keep the test
    // under a second.
    let (head, body) = request.split_at(request.find("\r\n\r\n").unwrap() + 4);
    for byte in head.as_bytes() {
        stream.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(Duration::from_micros(200));
    }
    for chunk in body.as_bytes().chunks(7) {
        stream.write_all(chunk).unwrap();
        std::thread::sleep(Duration::from_micros(200));
    }
    let response = read_response(&mut BufReader::new(stream), 16 << 20).unwrap();
    assert_eq!(response.status, 200, "{}", response.text());
    assert_eq!(response.text(), Engine::resume_domain().convert_to_xml(RESUME).2);

    assert_fully_live(addr, &server.app());
    server.request_drain();
    server.join();
}

#[test]
fn headers_split_across_writes_parse_once_complete() {
    let server = start();
    let addr = server.local_addr();

    let mut stream = connect(addr);
    // Split in the middle of a header name, value, and the blank line.
    for part in [
        "GET /hea",
        "lthz HTTP/1.1\r\nconn",
        "ection: cl",
        "ose\r\n",
        "\r",
        "\n",
    ] {
        stream.write_all(part.as_bytes()).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let response = read_response(&mut BufReader::new(stream), 1024).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.text(), "ok\n");

    assert_fully_live(addr, &server.app());
    server.request_drain();
    server.join();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let server = start();
    let addr = server.local_addr();

    // Mixed fast-path (/healthz inline) and worker-path (cold convert)
    // requests in one write: responses must come back in request order.
    let mut batch = Vec::new();
    batch.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
    batch.extend_from_slice(
        format!(
            "POST /convert HTTP/1.1\r\ncontent-length: {}\r\n\r\n{}",
            RESUME.len(),
            RESUME
        )
        .as_bytes(),
    );
    batch.extend_from_slice(b"GET /healthz HTTP/1.1\r\nconnection: close\r\n\r\n");

    let mut stream = connect(addr);
    stream.write_all(&batch).unwrap();
    let mut reader = BufReader::new(stream);
    let first = read_response(&mut reader, 16 << 20).unwrap();
    assert_eq!((first.status, first.text().as_str()), (200, "ok\n"));
    let second = read_response(&mut reader, 16 << 20).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("content-type"), Some("application/xml"));
    let third = read_response(&mut reader, 16 << 20).unwrap();
    assert_eq!((third.status, third.text().as_str()), (200, "ok\n"));
    // The final `connection: close` is honoured.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0);

    assert_fully_live(addr, &server.app());
    server.request_drain();
    server.join();
}

#[test]
fn oversized_head_answers_413_and_closes() {
    let server = start();
    let addr = server.local_addr();

    let mut stream = connect(addr);
    stream.write_all(b"GET /healthz HTTP/1.1\r\n").unwrap();
    // Pour header bytes past the 16 KiB head cap without ever
    // finishing the head.
    let filler = format!("x-padding: {}\r\n", "p".repeat(250));
    for _ in 0..80 {
        if stream.write_all(filler.as_bytes()).is_err() {
            break; // the server already slammed the door — fine
        }
    }
    let response = read_response(&mut BufReader::new(&mut stream), 1024).unwrap();
    assert_eq!(response.status, 413, "{}", response.text());
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest); // connection is closed after the error

    assert_fully_live(addr, &server.app());
    server.request_drain();
    server.join();
}

#[test]
fn body_longer_than_content_length_gets_400_for_the_trailing_garbage() {
    let server = start();
    let addr = server.local_addr();

    let mut stream = connect(addr);
    // content-length covers only "hello"; the rest must be parsed as
    // the start of a next request, which it is not.
    stream
        .write_all(b"POST /convert HTTP/1.1\r\ncontent-length: 5\r\n\r\nhelloTRAILING GARBAGE\r\n\r\n")
        .unwrap();
    let mut reader = BufReader::new(stream);
    let first = read_response(&mut reader, 16 << 20).unwrap();
    assert_eq!(first.status, 200, "{}", first.text());
    let second = read_response(&mut reader, 1024).unwrap();
    assert_eq!(second.status, 400, "{}", second.text());
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap(), 0, "closed after 400");

    assert_fully_live(addr, &server.app());
    server.request_drain();
    server.join();
}

#[test]
fn body_shorter_than_content_length_reaps_cleanly_on_disconnect() {
    let server = start();
    let addr = server.local_addr();
    let app = server.app();

    let stream = connect(addr);
    (&stream)
        .write_all(b"POST /convert HTTP/1.1\r\ncontent-length: 100\r\n\r\nonly-fifty-bytes-arrive")
        .unwrap();
    // Half-close: the server sees EOF mid-body. No response is owed;
    // the connection must be reaped without a worker ever seeing it.
    stream.shutdown(Shutdown::Write).unwrap();
    let mut tail = Vec::new();
    (&stream).read_to_end(&mut tail).unwrap();
    assert!(tail.is_empty(), "no response for a request that never completed");

    let deadline = Instant::now() + Duration::from_secs(5);
    while app.metrics.open_connections.load(Ordering::Relaxed) != 0 {
        assert!(Instant::now() < deadline, "mid-body EOF connection never reaped");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_fully_live(addr, &app);
    server.request_drain();
    server.join();
}

#[test]
fn mid_body_disconnect_never_hangs_a_worker() {
    let server = start();
    let addr = server.local_addr();
    let app = server.app();

    // A burst of abrupt disconnects at different points in the request.
    for cut in [
        &b"POST /conv"[..],
        &b"POST /convert HTTP/1.1\r\ncontent-le"[..],
        &b"POST /convert HTTP/1.1\r\ncontent-length: 40\r\n\r\n"[..],
        &b"POST /convert HTTP/1.1\r\ncontent-length: 40\r\n\r\nhalf of the bo"[..],
    ] {
        let stream = connect(addr);
        (&stream).write_all(cut).unwrap();
        drop(stream); // RST or FIN mid-request
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    while app.metrics.open_connections.load(Ordering::Relaxed) != 0 {
        assert!(Instant::now() < deadline, "abandoned connections never reaped");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_fully_live(addr, &app);
    server.request_drain();
    server.join();
}
