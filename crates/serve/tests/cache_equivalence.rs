//! Property: the `/convert` cache is invisible. For arbitrary tag-soup
//! inputs replayed in arbitrary orders, a server with the cache enabled
//! returns byte-identical responses to one with the cache disabled.

use webre_serve::handlers::{handle, App};
use webre_serve::Engine;
use webre_substrate::http::Request;
use webre_substrate::prop::{check, Gen};

fn post_convert(body: &[u8]) -> Request {
    Request {
        method: "POST".into(),
        target: "/convert".into(),
        headers: Vec::new(),
        body: body.to_vec(),
    }
}

/// A small pool of soup-ish documents; repeats force cache hits.
fn soup_pool(g: &mut Gen) -> Vec<String> {
    let tags = ["h1", "h2", "p", "ul", "li", "b", "table", "td"];
    g.vec(2, 5, |g| {
        let mut html = String::new();
        for _ in 0..g.len(1, 6) {
            let tag = *g.pick(&tags);
            let open = g.bool(0.85);
            if open {
                html.push_str(&format!("<{tag}>"));
            }
            html.push_str(&g.arbitrary_text(0, 24));
            if g.bool(0.7) {
                html.push_str(&format!("</{tag}>"));
            }
        }
        html
    })
}

#[test]
fn prop_cache_on_equals_cache_off() {
    check("serve_cache_transparent", |g| {
        let cached = App::new(Engine::resume_domain(), 64, 1);
        let uncached = App::new(Engine::resume_domain(), 0, 1);
        let pool = soup_pool(g);
        let plays = g.vec(6, 16, |g| g.int(0..u32::MAX) as usize % 64);
        for (turn, pick) in plays.iter().enumerate() {
            let body = pool[pick % pool.len()].clone();
            let request = post_convert(body.as_bytes());
            let a = handle(&cached, &request);
            let b = handle(&uncached, &request);
            if a.status != b.status || a.body != b.body {
                return Err(format!(
                    "turn {turn}: cached ({}, {} bytes) != uncached ({}, {} bytes) for {body:?}",
                    a.status,
                    a.body.len(),
                    b.status,
                    b.body.len(),
                ));
            }
        }
        // ≥6 plays over ≤5 documents: the pigeonhole forces a repeat, so
        // equality above genuinely exercised the hit path.
        let stats = cached.cache.stats();
        if stats.hits == 0 {
            return Err("no cache hit despite guaranteed repeats".into());
        }
        if stats.hits + stats.misses != plays.len() as u64 {
            return Err(format!(
                "cache accounting drifted: {} hits + {} misses != {} requests",
                stats.hits,
                stats.misses,
                plays.len()
            ));
        }
        Ok(())
    });
}
