//! Property tests for deadline-based admission control, driven by a
//! discrete-event simulation on a fake nanosecond clock — no real
//! sockets, no real time, fully deterministic per seed.
//!
//! The simulated server mirrors the production wiring exactly: arrivals
//! consult [`Admission::admit`], admitted work is queued FIFO
//! (`enqueued`), workers pick it up (`dequeued`), and completions feed
//! the latency estimator (`observe`) — the same call sequence the event
//! loop and worker pool make, just on simulated time.
//!
//! Two properties, across many random seeds:
//!
//! 1. **Bounded queue delay** — no *admitted* request waits more than
//!    the deadline plus one service time (the estimator cannot see the
//!    residual of requests already being served, which is why the slack
//!    is exactly one service time, not zero).
//! 2. **Monotone shedding** — for the same arrival pattern, raising the
//!    offered load never lowers the shed fraction.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Duration;
use webre_serve::admission::Admission;
use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::{Rng, SeedableRng};

/// One simulated run's outcome.
struct SimOutcome {
    admitted: u64,
    shed: u64,
    /// Worst queue delay over all admitted requests, ns.
    max_delay_ns: u64,
}

/// Simulates `arrivals` requests with fixed `service_ns` per request on
/// `workers` parallel workers, admission-gated by `deadline`.
///
/// `load_factor` scales the arrival rate relative to capacity: 1.0 is
/// exactly saturating, 4.0 offers 4× what the workers can serve.
fn simulate(
    seed: u64,
    arrivals: usize,
    workers: usize,
    service_ns: u64,
    deadline: Duration,
    load_factor: f64,
) -> SimOutcome {
    let admission = Admission::new(Some(deadline), workers, Duration::from_nanos(service_ns));
    // Steady state: the estimator has already seen this workload.
    for _ in 0..64 {
        admission.observe(Duration::from_nanos(service_ns));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    // Random arrival schedule: mean gap set by the load factor, drawn
    // uniformly from [0, 2×mean] so the stream is bursty.
    let mean_gap = (service_ns as f64 / workers as f64 / load_factor) as u64;
    let mut schedule = Vec::with_capacity(arrivals);
    let mut t = 0u64;
    for _ in 0..arrivals {
        t += rng.gen_range(0..=mean_gap * 2);
        schedule.push(t);
    }

    // Min-heap of (time, seq, is_arrival, arrival index); the insertion
    // sequence breaks time ties deterministically.
    let mut events: BinaryHeap<Reverse<(u64, u64, bool, usize)>> = BinaryHeap::new();
    let mut seq = 0u64;
    for (i, &at) in schedule.iter().enumerate() {
        events.push(Reverse((at, seq, true, i)));
        seq += 1;
    }

    let mut queue: VecDeque<u64> = VecDeque::new(); // admission times
    let mut idle = workers;
    let mut outcome = SimOutcome { admitted: 0, shed: 0, max_delay_ns: 0 };

    while let Some(Reverse((now, _, is_arrival, _index))) = events.pop() {
        if is_arrival {
            match admission.admit(1) {
                Ok(()) => {
                    admission.enqueued(1);
                    queue.push_back(now);
                    outcome.admitted += 1;
                }
                Err(_estimate) => outcome.shed += 1,
            }
        } else {
            // A worker finished; it observed one full service.
            admission.observe(Duration::from_nanos(service_ns));
            idle += 1;
        }
        // Idle workers drain the queue at the current instant.
        while idle > 0 {
            let Some(admitted_at) = queue.pop_front() else { break };
            admission.dequeued(1);
            let delay = now - admitted_at;
            outcome.max_delay_ns = outcome.max_delay_ns.max(delay);
            idle -= 1;
            events.push(Reverse((now + service_ns, seq, false, 0)));
            seq += 1;
        }
    }
    outcome
}

#[test]
fn admitted_queue_delay_never_exceeds_deadline_plus_one_service_time() {
    let deadline = Duration::from_millis(5);
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1A6);
        let workers = rng.gen_range(1..=4usize);
        let service_ns = rng.gen_range(500_000..=2_000_000u64); // 0.5–2 ms
        for load in [2.0, 4.0, 8.0] {
            let outcome = simulate(seed, 2_000, workers, service_ns, deadline, load);
            // One service time of slack: the estimator counts queued
            // work only, never the residual of in-service requests.
            // A little more covers EWMA integer truncation.
            let bound = deadline.as_nanos() as u64 + service_ns + service_ns / 4;
            assert!(
                outcome.max_delay_ns <= bound,
                "seed {seed} load {load} workers {workers} service {service_ns}ns: \
                 worst admitted delay {}ns exceeds bound {bound}ns \
                 (admitted {} shed {})",
                outcome.max_delay_ns,
                outcome.admitted,
                outcome.shed,
            );
            // Sanity: overload must actually shed — otherwise the
            // delay bound above is vacuously easy.
            assert!(
                outcome.shed > 0,
                "seed {seed} load {load}: {}x overload shed nothing",
                load
            );
        }
    }
}

#[test]
fn shed_fraction_is_monotone_in_offered_load() {
    for seed in 0..12u64 {
        let workers = 2;
        let service_ns = 1_000_000; // 1 ms
        let deadline = Duration::from_millis(5);
        let mut previous = 0.0f64;
        for load in [1.0, 2.0, 4.0, 8.0] {
            let outcome = simulate(seed, 2_000, workers, service_ns, deadline, load);
            let fraction = outcome.shed as f64 / (outcome.admitted + outcome.shed) as f64;
            assert!(
                fraction + 1e-9 >= previous,
                "seed {seed}: shed fraction fell from {previous:.4} to {fraction:.4} \
                 when load rose to {load}x"
            );
            previous = fraction;
        }
        // At 8× overload roughly 7/8 of traffic must go: allow slack
        // but require the shed fraction to be in the right regime.
        assert!(
            previous > 0.5,
            "seed {seed}: only {previous:.4} shed at 8x overload"
        );
    }
}

#[test]
fn disabled_deadline_admits_everything_even_at_extreme_load() {
    let admission = Admission::new(None, 1, Duration::from_millis(1));
    admission.enqueued(1_000_000);
    for _ in 0..1_000 {
        assert!(admission.admit(1).is_ok());
    }
}
