//! End-to-end tests over real TCP: a server on an ephemeral port, raw
//! `TcpStream` clients speaking the substrate codec.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};
use webre_serve::server::{ServeConfig, Server};
use webre_serve::Engine;
use webre_substrate::http::{read_response, write_request, ParsedResponse};

const RESUME: &str =
    "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li>\
     <li>MIT, B.S., 1994</li></ul><h2>Skills</h2><p>C++, Java, XML</p>";

fn start(config: ServeConfig) -> Server {
    Server::start(config, Engine::resume_domain()).expect("bind ephemeral port")
}

fn ephemeral(workers: usize, queue_cap: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_cap,
        ..ServeConfig::default()
    }
}

/// One request on a fresh connection; `connection: close`.
fn roundtrip(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> ParsedResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_request(&mut stream, method, target, body, false).expect("send");
    read_response(&mut BufReader::new(stream), 16 * 1024 * 1024).expect("response")
}

/// Spins until `predicate` holds or panics after 5s.
fn wait_until(what: &str, predicate: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !predicate() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn convert_roundtrip_matches_engine_and_caches() {
    let server = start(ephemeral(2, 16));
    let addr = server.local_addr();

    let first = roundtrip(addr, "POST", "/convert", RESUME.as_bytes());
    assert_eq!(first.status, 200, "{}", first.text());
    assert_eq!(first.header("x-cache"), Some("miss"));
    assert_eq!(first.header("content-type"), Some("application/xml"));

    // Byte-identical to the in-process engine (what the batch CLI runs).
    let expected = Engine::resume_domain().convert_to_xml(RESUME).2;
    assert_eq!(first.text(), expected);

    let second = roundtrip(addr, "POST", "/convert", RESUME.as_bytes());
    assert_eq!(second.header("x-cache"), Some("hit"));
    assert_eq!(second.body, first.body);

    let metrics = roundtrip(addr, "GET", "/metrics", b"").text();
    assert!(metrics.contains("cache_hits_total 1"), "{metrics}");
    assert!(metrics.contains("cache_misses_total 1"), "{metrics}");

    server.request_drain();
    server.join();
}

#[test]
fn keep_alive_carries_multiple_requests() {
    let server = start(ephemeral(1, 16));
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    for _ in 0..3 {
        write_request(&mut writer, "GET", "/healthz", b"", true).unwrap();
        let response = read_response(&mut reader, 1024).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.text(), "ok\n");
    }
    drop((writer, reader));

    server.request_drain();
    server.join();
}

#[test]
fn corpus_accretes_and_schema_appears() {
    let server = start(ephemeral(2, 16));
    let addr = server.local_addr();

    assert_eq!(roundtrip(addr, "GET", "/schema", b"").status, 404);
    for expected_docs in 1..=3 {
        let response = roundtrip(addr, "POST", "/corpus/docs", RESUME.as_bytes());
        assert_eq!(response.status, 202, "{}", response.text());
        assert_eq!(
            response.header("x-corpus-version"),
            Some(expected_docs.to_string().as_str())
        );
        assert!(response.text().contains("\"accepted\":true"), "{}", response.text());
    }
    let schema = roundtrip(addr, "GET", "/schema", b"");
    assert_eq!(schema.status, 200);
    assert!(schema.text().contains("resume"), "{}", schema.text());
    let dtd = roundtrip(addr, "GET", "/schema/dtd", b"");
    assert_eq!(dtd.status, 200);
    assert!(dtd.text().contains("<!ELEMENT resume"), "{}", dtd.text());
    assert_eq!(dtd.header("x-corpus-docs"), Some("3"));

    server.request_drain();
    server.join();
}

#[test]
fn routing_and_limit_errors_over_the_wire() {
    let server = start(ephemeral(1, 16));
    let addr = server.local_addr();

    assert_eq!(roundtrip(addr, "GET", "/nope", b"").status, 404);
    let wrong = roundtrip(addr, "GET", "/convert", b"");
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("allow"), Some("POST"));

    // Over the default 1 MiB body cap → 413 before any conversion work.
    let oversized = vec![b'x'; ServeConfig::default().max_body + 1];
    let too_large = roundtrip(addr, "POST", "/convert", &oversized);
    assert_eq!(too_large.status, 413, "{}", too_large.text());

    let metrics = roundtrip(addr, "GET", "/metrics", b"").text();
    assert!(metrics.contains("requests_bad_total 1"), "{metrics}");

    server.request_drain();
    server.join();
}

/// A cold conversion big enough to hold the sole worker busy for a
/// long, observable window (hundreds of ms even in release builds).
fn parking_body() -> Vec<u8> {
    RESUME.repeat(4000).into_bytes()
}

#[test]
fn queue_overflow_rejects_with_429_and_recovers() {
    // One worker, one queue slot: occupy the worker with a slow cold
    // conversion, fill the slot with a second one, and the third must
    // bounce deterministically. (Idle connections no longer park
    // workers — the event loop owns them — so occupancy takes real
    // work now.)
    let server = start(ephemeral(1, 1));
    let addr = server.local_addr();
    let app = server.app();

    // A: a large cold conversion the sole worker picks up.
    let mut parked = TcpStream::connect(addr).unwrap();
    parked
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write_request(&mut parked, "POST", "/convert", &parking_body(), false).unwrap();
    wait_until("worker to pick up the slow conversion", || {
        app.metrics.in_flight.load(Ordering::Relaxed) == 1
            && app.metrics.queue_depth.load(Ordering::Relaxed) == 0
    });

    // B: a second cold conversion, sits in the queue's only slot.
    let mut queued = TcpStream::connect(addr).unwrap();
    queued
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let queued_body = format!("{RESUME}<!-- queued -->");
    write_request(&mut queued, "POST", "/convert", queued_body.as_bytes(), false).unwrap();
    wait_until("second conversion to occupy the queue", || {
        app.metrics.queue_depth.load(Ordering::Relaxed) == 1
    });

    // C: queue full → 429 inline from the event loop, without
    // unbounded buffering or a hang. Must be a cold conversion —
    // `/healthz` is always served on the fast path and never queues.
    let rejected_body = format!("{RESUME}<!-- rejected -->");
    let rejected = roundtrip(addr, "POST", "/convert", rejected_body.as_bytes());
    assert_eq!(rejected.status, 429, "{}", rejected.text());
    assert_eq!(rejected.header("retry-after"), Some("1"));
    assert_eq!(app.metrics.rejected.load(Ordering::Relaxed), 1);

    // The worker frees itself; both accepted conversions complete.
    let response = read_response(&mut BufReader::new(parked), 64 * 1024 * 1024).unwrap();
    assert_eq!(response.status, 200);
    let response = read_response(&mut BufReader::new(queued), 64 * 1024 * 1024).unwrap();
    assert_eq!(response.status, 200);

    server.request_drain();
    server.join();
}

#[test]
fn shutdown_endpoint_drains_queued_work_before_exit() {
    let server = start(ephemeral(1, 4));
    let addr = server.local_addr();
    let app = server.app();

    // Park the sole worker on a slow conversion, then queue a second
    // request behind it.
    let mut parked = TcpStream::connect(addr).unwrap();
    parked
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write_request(&mut parked, "POST", "/convert", &parking_body(), false).unwrap();
    wait_until("worker pickup", || {
        app.metrics.in_flight.load(Ordering::Relaxed) == 1
            && app.metrics.queue_depth.load(Ordering::Relaxed) == 0
    });
    let mut queued = TcpStream::connect(addr).unwrap();
    queued
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write_request(&mut queued, "POST", "/convert", RESUME.as_bytes(), true).unwrap();
    wait_until("request queued", || {
        app.metrics.queue_depth.load(Ordering::Relaxed) == 1
    });

    // Drain while work is still queued.
    server.request_drain();

    // The queued request is served — and the response closes the
    // connection despite the client asking for keep-alive.
    let mut reader = BufReader::new(queued);
    let response = read_response(&mut reader, 16 * 1024 * 1024).unwrap();
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
    let response = read_response(&mut BufReader::new(parked), 64 * 1024 * 1024).unwrap();
    assert_eq!(response.status, 200);

    server.join(); // event loop + workers all exited
    assert_eq!(app.metrics.total_requests(), 2);
}

#[test]
fn shutdown_over_http_unblocks_join() {
    let server = start(ephemeral(2, 8));
    let addr = server.local_addr();

    let response = roundtrip(addr, "POST", "/shutdown", b"");
    assert_eq!(response.status, 200);
    assert_eq!(response.text(), "draining\n");
    server.join();

    // The listener is gone: new connections are refused (or reset).
    wait_until("listener to close", || TcpStream::connect(addr).is_err());
}
