//! Restart equivalence over real HTTP: ingest a corpus into a durable
//! server, drain it, restart on the same data directory, and the schema
//! endpoints must answer byte-identically — the WAL replay rebuilt the
//! exact live corpus, shard layout included.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;
use webre_serve::server::{ServeConfig, Server};
use webre_serve::Engine;
use webre_substrate::http::{read_response, write_request, ParsedResponse};

fn roundtrip(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> ParsedResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write_request(&mut stream, method, target, body, false).expect("send");
    read_response(&mut BufReader::new(stream), 16 * 1024 * 1024).expect("response")
}

fn durable_config(dir: &PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        data_dir: Some(dir.clone()),
        shards: 3,
        sync_every: 4,
        compact_min: 8,
        ..ServeConfig::default()
    }
}

const PAGES: &[&str] = &[
    "<h2>Education</h2><ul><li>Stanford University, M.S., 1996</li></ul>",
    "<h2>Skills</h2><p>C++, Java, XML</p>",
    "<h2>Education</h2><ul><li>MIT, Ph.D., 2001</li><li>MIT, B.S., 1994</li></ul>",
    "<h2>Objective</h2><p>research scientist</p>",
    "<h2>Education</h2><ul><li>CMU, B.S., 1999</li></ul><h2>Skills</h2><p>SQL</p>",
];

#[test]
fn schema_and_dtd_are_byte_identical_across_a_restart() {
    let dir = std::env::temp_dir().join(format!("webre-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: ingest over HTTP through both accretion endpoints.
    let engine = Engine::resume_domain();
    let server = Server::start(durable_config(&dir), Engine::resume_domain()).expect("bind");
    let addr = server.local_addr();
    for (i, page) in PAGES.iter().enumerate() {
        let response = if i % 2 == 0 {
            roundtrip(addr, "POST", "/corpus/docs", page.as_bytes())
        } else {
            // The fast path ingests pre-converted XML.
            let xml = engine.convert_to_xml(page).2;
            roundtrip(addr, "POST", "/corpus/xml", xml.as_bytes())
        };
        assert_eq!(response.status, 202, "{}", response.text());
    }
    let schema_before = roundtrip(addr, "GET", "/schema", b"");
    let dtd_before = roundtrip(addr, "GET", "/schema/dtd", b"");
    let table_before = roundtrip(addr, "GET", "/corpus/table", b"");
    assert_eq!(schema_before.status, 200, "{}", schema_before.text());
    assert_eq!(dtd_before.status, 200);
    assert_eq!(table_before.status, 200);
    server.request_drain();
    server.join();

    // Second life: same data directory, fresh process state.
    let server = Server::start(durable_config(&dir), Engine::resume_domain()).expect("rebind");
    let addr = server.local_addr();
    let schema_after = roundtrip(addr, "GET", "/schema", b"");
    let dtd_after = roundtrip(addr, "GET", "/schema/dtd", b"");
    let table_after = roundtrip(addr, "GET", "/corpus/table", b"");
    assert_eq!(schema_after.status, 200, "{}", schema_after.text());
    assert_eq!(schema_after.body, schema_before.body, "schema changed across restart");
    assert_eq!(dtd_after.body, dtd_before.body, "dtd changed across restart");
    assert_eq!(table_after.body, table_before.body, "path table changed across restart");
    assert_eq!(
        schema_after.header("x-corpus-docs"),
        Some(PAGES.len().to_string().as_str())
    );

    // The restarted corpus keeps accreting: version picks up where the
    // first life stopped.
    let response = roundtrip(addr, "POST", "/corpus/docs", PAGES[0].as_bytes());
    assert_eq!(response.status, 202);
    assert_eq!(
        response.header("x-corpus-version"),
        Some((PAGES.len() as u64 + 1).to_string().as_str())
    );
    server.request_drain();
    server.join();

    std::fs::remove_dir_all(&dir).unwrap();
}
