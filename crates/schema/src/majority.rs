//! The majority schema: the tree `T_F` formed by the frequent paths.

use crate::paths::LabelPath;
use webre_tree::{NodeId, Tree};

/// One node of the majority-schema tree.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemaNode {
    /// Element label (concept name).
    pub label: String,
    /// Document support of the path ending at this node, in `[0, 1]`.
    pub support: f64,
    /// Number of corpus documents containing the path.
    pub doc_count: usize,
}

/// A majority schema: frequent label paths arranged as a tree.
#[derive(Clone, Debug)]
pub struct MajoritySchema {
    pub tree: Tree<SchemaNode>,
    /// Number of documents the schema was mined from.
    pub corpus_size: usize,
}

impl MajoritySchema {
    /// Creates a schema with only a root node.
    pub fn new(root_label: impl Into<String>, support: f64, doc_count: usize, corpus_size: usize) -> Self {
        MajoritySchema {
            tree: Tree::new(SchemaNode {
                label: root_label.into(),
                support,
                doc_count,
            }),
            corpus_size,
        }
    }

    /// The root label.
    pub fn root_label(&self) -> &str {
        &self.tree.value(self.tree.root()).label
    }

    /// Number of schema nodes (frequent paths).
    pub fn len(&self) -> usize {
        self.tree.subtree_size(self.tree.root())
    }

    /// Whether the schema contains only the root.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// The label path from the root to `id`.
    pub fn path_of(&self, id: NodeId) -> LabelPath {
        let mut path: LabelPath = self
            .tree
            .ancestors(id)
            .map(|a| self.tree.value(a).label.clone())
            .collect();
        path.reverse();
        path.push(self.tree.value(id).label.clone());
        path
    }

    /// Finds the node for a label path, if the path is in the schema.
    pub fn find(&self, path: &[String]) -> Option<NodeId> {
        let mut current = self.tree.root();
        let mut parts = path.iter();
        if parts.next().map(String::as_str) != Some(self.root_label()) {
            return None;
        }
        for part in parts {
            current = self
                .tree
                .children(current)
                .find(|c| self.tree.value(*c).label == *part)?;
        }
        Some(current)
    }

    /// Whether the schema contains a label path.
    pub fn contains(&self, path: &[String]) -> bool {
        self.find(path).is_some()
    }

    /// All label paths in the schema, in pre-order.
    pub fn paths(&self) -> Vec<LabelPath> {
        self.tree
            .descendants(self.tree.root())
            .map(|id| self.path_of(id))
            .collect()
    }

    /// Renders the schema as an indented tree with supports (for reports).
    pub fn render(&self) -> String {
        webre_tree::render_with(&self.tree, self.tree.root(), |n| {
            format!("{} (support {:.2})", n.label, n.support)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MajoritySchema {
        let mut s = MajoritySchema::new("resume", 1.0, 10, 10);
        let root = s.tree.root();
        let edu = s.tree.append_child(
            root,
            SchemaNode {
                label: "education".into(),
                support: 0.9,
                doc_count: 9,
            },
        );
        s.tree.append_child(
            edu,
            SchemaNode {
                label: "degree".into(),
                support: 0.8,
                doc_count: 8,
            },
        );
        s.tree.append_child(
            root,
            SchemaNode {
                label: "contact".into(),
                support: 0.7,
                doc_count: 7,
            },
        );
        s
    }

    fn p(parts: &[&str]) -> LabelPath {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn find_and_contains() {
        let s = sample();
        assert!(s.contains(&p(&["resume"])));
        assert!(s.contains(&p(&["resume", "education", "degree"])));
        assert!(!s.contains(&p(&["resume", "degree"])));
        assert!(!s.contains(&p(&["cv", "education"])));
    }

    #[test]
    fn path_of_round_trips_with_find() {
        let s = sample();
        for id in s.tree.descendants(s.tree.root()).collect::<Vec<_>>() {
            let path = s.path_of(id);
            assert_eq!(s.find(&path), Some(id));
        }
    }

    #[test]
    fn len_and_paths() {
        let s = sample();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        let paths = s.paths();
        assert_eq!(paths.len(), 4);
        assert_eq!(paths[0], p(&["resume"]));
    }

    #[test]
    fn render_mentions_supports() {
        let out = sample().render();
        assert!(out.contains("resume (support 1.00)"));
        assert!(out.contains("  education (support 0.90)"));
    }
}
