//! The Section 4.2 search-space experiment.
//!
//! The paper quantifies how concept constraints shrink the space of
//! candidate label paths: "Without any relationships and constraints
//! specified, exhaustive enumeration and testing of all possible label
//! paths up to length 4 against the input HTML documents would explore
//! 24⁵ − 1 = 7,962,623 nodes. With the above simple constraints specified,
//! the search space is dramatically reduced to 1,871 nodes [...]. Without
//! extending nodes with zero support, the actual number of nodes explored
//! is 73."
//!
//! This module reproduces all three counts: the exhaustive enumeration
//! formula, constrained enumeration over the concept alphabet, and the
//! data-driven exploration (the frequent-path miner's `nodes_explored`).

use crate::paths::{doc_frequency, DocPaths};
use webre_concepts::{ConceptSet, ConstraintSet};

/// The paper's exhaustive search-space size for `n` concepts and paths up
/// to length `len` (the paper reports `n^(len+1) − 1` for `n = 24`,
/// `len = 4`: 7,962,623).
pub fn exhaustive_size(n: usize, len: usize) -> u64 {
    (n as u64).pow(len as u32 + 1) - 1
}

/// Alternative (trie-sum) count: `Σ_{k=0..len} n^k` nodes of a complete
/// trie of depth `len` over `n` labels. Documented for comparison — the
/// paper's own formula above counts differently.
pub fn trie_size(n: usize, len: usize) -> u64 {
    (0..=len as u32).map(|k| (n as u64).pow(k)).sum()
}

/// Result of a constrained enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EnumerationResult {
    /// Admissible candidate nodes (paths), root included.
    pub admissible: u64,
    /// Candidates tested (admissible or not), root included.
    pub tested: u64,
}

/// Enumerates all label paths over the concept alphabet starting from
/// `root`, up to `max_len` labels per path (root included), pruned by the
/// constraint set. Counts admissible paths (nodes of the constrained
/// search tree).
///
/// Pruning is hierarchical: an inadmissible path is not extended, exactly
/// like the miner's anti-monotone pruning.
pub fn constrained_enumeration(
    concepts: &ConceptSet,
    constraints: &ConstraintSet,
    root: &str,
    max_len: usize,
) -> EnumerationResult {
    let names: Vec<&str> = concepts.names().collect();
    let mut result = EnumerationResult {
        admissible: 0,
        tested: 0,
    };
    let mut path: Vec<&str> = vec![root];
    result.tested += 1;
    if !constraints.admits_path(&path) {
        return result;
    }
    result.admissible += 1;
    enumerate(&names, constraints, &mut path, max_len, &mut result);
    result
}

fn enumerate<'a>(
    names: &[&'a str],
    constraints: &ConstraintSet,
    path: &mut Vec<&'a str>,
    max_len: usize,
    result: &mut EnumerationResult,
) {
    if path.len() >= max_len {
        return;
    }
    for name in names {
        path.push(name);
        result.tested += 1;
        if constraints.admits_path(path) {
            result.admissible += 1;
            enumerate(names, constraints, path, max_len, result);
        }
        path.pop();
    }
}

/// Counts the nodes a data-driven exploration visits: candidate paths over
/// the concept alphabet whose prefix has non-zero support in the corpus
/// (the paper's "73 nodes" figure), under the same constraints.
pub fn data_driven_exploration(
    concepts: &ConceptSet,
    constraints: &ConstraintSet,
    corpus: &[DocPaths],
    root: &str,
    max_len: usize,
) -> u64 {
    let names: Vec<&str> = concepts.names().collect();
    let mut path: Vec<String> = vec![root.to_owned()];
    if doc_frequency(corpus, &path) == 0 {
        return 0;
    }
    let mut count = 1;
    explore_data(&names, constraints, corpus, &mut path, max_len, &mut count);
    count
}

fn explore_data(
    names: &[&str],
    constraints: &ConstraintSet,
    corpus: &[DocPaths],
    path: &mut Vec<String>,
    max_len: usize,
    count: &mut u64,
) {
    if path.len() >= max_len {
        return;
    }
    for name in names {
        path.push((*name).to_owned());
        let refs: Vec<&str> = path.iter().map(String::as_str).collect();
        if constraints.admits_path(&refs) && doc_frequency(corpus, path) > 0 {
            *count += 1;
            explore_data(names, constraints, corpus, path, max_len, count);
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::extract_paths;
    use webre_concepts::resume;
    use webre_xml::parse_xml;

    #[test]
    fn paper_exhaustive_number() {
        assert_eq!(exhaustive_size(24, 4), 7_962_623);
    }

    #[test]
    fn trie_size_alternative() {
        assert_eq!(trie_size(24, 4), 1 + 24 + 576 + 13_824 + 331_776);
    }

    #[test]
    fn paper_constrained_number() {
        // 1 root + 11 title names + 11×13 content + 11×13×12 (no-repeat)
        // = 1871, the paper's Section 4.2 count.
        let result = constrained_enumeration(
            &resume::concepts(),
            &resume::constraints(),
            "resume",
            4,
        );
        assert_eq!(result.admissible, 1 + 11 + 11 * 13 + 11 * 13 * 12);
        assert_eq!(result.admissible, 1871);
    }

    #[test]
    fn unconstrained_enumeration_matches_trie() {
        use webre_concepts::{Concept, ConceptRole, ConceptSet, ConstraintSet};
        let set: ConceptSet = ["a", "b", "c"]
            .into_iter()
            .map(|n| Concept::new(n, ConceptRole::Generic, Vec::<String>::new()))
            .collect();
        let result =
            constrained_enumeration(&set, &ConstraintSet::new(), "a", 3);
        // Root + 3 children + 9 grandchildren = 13 = trie_size(3, 2).
        assert_eq!(result.admissible, trie_size(3, 2));
    }

    #[test]
    fn data_driven_explores_only_support() {
        let corpus: Vec<DocPaths> = [
            "<resume><education><institution/></education></resume>",
            "<resume><education><degree/></education></resume>",
        ]
        .iter()
        .map(|x| extract_paths(&parse_xml(x).unwrap()))
        .collect();
        let count = data_driven_exploration(
            &resume::concepts(),
            &resume::constraints(),
            &corpus,
            "resume",
            4,
        );
        // resume, resume/education, .../institution, .../degree.
        assert_eq!(count, 4);
    }

    #[test]
    fn data_driven_zero_for_empty_corpus() {
        let count = data_driven_exploration(
            &resume::concepts(),
            &resume::constraints(),
            &[],
            "resume",
            4,
        );
        assert_eq!(count, 0);
    }

    #[test]
    fn constraints_reduce_both_counts() {
        use webre_concepts::ConstraintSet;
        let concepts = resume::concepts();
        let unconstrained =
            constrained_enumeration(&concepts, &ConstraintSet::new(), "resume", 3);
        let constrained =
            constrained_enumeration(&concepts, &resume::constraints(), "resume", 3);
        assert!(constrained.admissible < unconstrained.admissible);
    }

    #[test]
    fn trie_and_exhaustive_formulas_agree_via_geometric_identity() {
        // (n − 1) · Σ_{k=0..len} n^k = n^(len+1) − 1: the paper's count is
        // the trie count scaled by the branching factor minus one.
        for n in 2..=24usize {
            for len in 0..=4usize {
                assert_eq!(
                    (n as u64 - 1) * trie_size(n, len),
                    exhaustive_size(n, len),
                    "identity fails for n={n}, len={len}"
                );
            }
        }
    }

    #[test]
    fn enumeration_counts_are_monotone_in_max_len() {
        let concepts = resume::concepts();
        let constraints = resume::constraints();
        let mut previous = EnumerationResult {
            admissible: 0,
            tested: 0,
        };
        for max_len in 1..=5usize {
            let result =
                constrained_enumeration(&concepts, &constraints, "resume", max_len);
            assert!(result.admissible <= result.tested, "max_len {max_len}");
            assert!(
                result.admissible >= previous.admissible
                    && result.tested >= previous.tested,
                "counts shrank going to max_len {max_len}"
            );
            previous = result;
        }
    }

    /// A random corpus whose labels all come from the resume concept
    /// alphabet and whose documents all share the `resume` root, so the
    /// miner's candidate space and the alphabet-driven exploration range
    /// over the same labels.
    fn random_resume_corpus(
        rng: &mut webre_substrate::rand::rngs::StdRng,
        labels: &[&str],
    ) -> Vec<DocPaths> {
        use webre_substrate::rand::seq::SliceRandom;
        use webre_substrate::rand::Rng;
        fn element(
            rng: &mut webre_substrate::rand::rngs::StdRng,
            labels: &[&str],
            name: &str,
            depth: u32,
        ) -> String {
            let arity = if depth == 0 { 0 } else { rng.gen_range(0..=3u32) };
            if arity == 0 {
                return format!("<{name}/>");
            }
            let children: String = (0..arity)
                .map(|_| {
                    let child = *labels.choose(rng).expect("non-empty");
                    element(rng, labels, child, depth - 1)
                })
                .collect();
            format!("<{name}>{children}</{name}>")
        }
        let n = rng.gen_range(1..=5usize);
        (0..n)
            .map(|_| {
                let xml = element(rng, labels, "resume", 4);
                extract_paths(&parse_xml(&xml).unwrap())
            })
            .collect()
    }

    #[test]
    fn data_driven_count_matches_miner_acceptance_on_random_corpora() {
        // With the support threshold at zero (every observed path is
        // frequent) and no ratio cut, the miner accepts exactly the
        // constraint-admissible paths with non-zero corpus support — the
        // set `data_driven_exploration` counts. Randomized corpora over
        // the concept alphabet exercise the equivalence beyond the paper's
        // single fixture.
        use crate::frequent::FrequentPathMiner;
        use webre_substrate::rand::{Rng, SeedableRng};
        let concepts = resume::concepts();
        let constraints = resume::constraints();
        let labels: Vec<&str> = concepts.names().collect();
        for seed in 0..30u64 {
            let mut rng = webre_substrate::rand::rngs::StdRng::seed_from_u64(seed);
            let corpus = random_resume_corpus(&mut rng, &labels);
            let max_len = rng.gen_range(2..=5usize);
            let counted = data_driven_exploration(
                &concepts,
                &constraints,
                &corpus,
                "resume",
                max_len,
            );
            let miner = FrequentPathMiner {
                sup_threshold: 0.0,
                ratio_threshold: 0.0,
                constraints: Some(constraints.clone()),
                max_len: Some(max_len),
            };
            let accepted = miner
                .mine(&corpus)
                .map_or(0, |outcome| outcome.nodes_accepted as u64);
            assert_eq!(
                counted, accepted,
                "seed {seed}, max_len {max_len}: exploration count diverges \
                 from miner acceptance"
            );
        }
    }
}
