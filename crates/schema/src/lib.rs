//! Schema discovery: frequent paths, majority schema and DTD derivation
//! (Section 3 of the paper).
//!
//! A set of XML documents produced by the conversion process is reduced to
//! label paths ([`paths`]); paths frequent under a support threshold and a
//! support-ratio threshold form the *majority schema* ([`frequent`],
//! [`majority`]); ordering and repetition information is then recovered to
//! emit a DTD ([`dtd_rules`]).
//!
//! [`baselines`] provides the two classical alternatives the paper argues
//! against — the DataGuide upper-bound schema and the lower-bound schema —
//! and [`search_space`] reproduces the Section 4.2 constraint-pruning
//! experiment.

pub mod baselines;
pub mod codec;
pub mod dtd_rules;
pub mod frequent;
pub mod incremental;
pub mod majority;
pub mod paths;
pub mod search_space;
pub mod sharded;

pub use codec::{doc_from_record, doc_to_record};
pub use dtd_rules::{
    derive_dtd, derive_dtd_obs, derive_dtd_sharded, derive_dtd_sharded_obs, DtdConfig,
};
pub use frequent::{CorpusView, FrequentPathMiner, MiningOutcome};
pub use incremental::CorpusIndex;
pub use majority::{MajoritySchema, SchemaNode};
pub use paths::{average_position, doc_frequency, extract_paths, DocPaths, LabelPath};
pub use sharded::{PathTable, ShardedCorpus};
