//! DTD derivation from a majority schema (Section 3.3).
//!
//! Two rules turn the frequent-path tree `T_F` into element content models:
//!
//! * **Ordering rule** — the children `q₁ … q_m` of a node `p` are ordered
//!   by the average position at which each `qᵢ` occurs as a child of `p`
//!   across the documents containing the prefix;
//! * **Repetitive elements** — using the multiplicity recorded during path
//!   extraction: `rep(T_D, p) = 1` iff the document contains `⟨p, num⟩`
//!   with `num ≥ repThreshold` (the paper finds 3 useful, citing XTRACT);
//!   `mult(e)` is the fraction of prefix-containing documents with
//!   `rep = 1`, and `mult(e) > multThreshold` (0.5) makes the element `e+`.
//!
//! Because every path in `T_F` is frequent, no element is optional by
//! default; the same multiplicity information *can* mark elements optional
//! if desired — [`DtdConfig::optional_below`] enables that extension, and
//! per-label unification (see [`derive_dtd`]) introduces optionality where
//! homonym contexts disagree. [`DtdConfig::group_patterns`] additionally
//! enables the XTRACT-style `(e1, e2)+` patterns the paper's Section 3.3
//! closes with. Every derived element allows leading `#PCDATA` (the
//! conversion stores recovered text in `val` attributes, but paper-style
//! DTDs spell the text slot explicitly, e.g.
//! `<!ELEMENT resume ((#PCDATA), contact+, ...)>`).

use crate::majority::MajoritySchema;
use crate::paths::DocPaths;
use webre_xml::{ContentExpr, Dtd};

/// Thresholds for DTD derivation.
#[derive(Clone, Copy, Debug)]
pub struct DtdConfig {
    /// `⟨p, num⟩ ≥ repThreshold` marks a repetitive occurrence (paper: 3).
    pub rep_threshold: u32,
    /// `mult(e) > multThreshold` makes the element `e+` (paper: 0.5).
    pub mult_threshold: f64,
    /// If set, an element present in fewer than this fraction of its
    /// parent's documents becomes optional (`e?`) — the paper's optional
    /// extension. `None` keeps every frequent element required.
    pub optional_below: Option<f64>,
    /// Detect repetitive *group* patterns like `(degree, date)+` from the
    /// recorded child sequences (the paper's closing Section 3.3 remark:
    /// "repetitive structures of more general types, e.g., of the form
    /// (e1,e2)*" à la XTRACT). When a group pattern explains a majority of
    /// the observed child sequences, it replaces the per-element rules for
    /// that node.
    pub group_patterns: bool,
}

impl Default for DtdConfig {
    fn default() -> Self {
        DtdConfig {
            rep_threshold: 3,
            mult_threshold: 0.5,
            optional_below: None,
            group_patterns: false,
        }
    }
}

/// The smallest period of `seq`: the shortest prefix `g` with
/// `seq = g^k`. Returns the period length.
fn smallest_period(seq: &[String]) -> usize {
    'outer: for p in 1..=seq.len() {
        if !seq.len().is_multiple_of(p) {
            continue;
        }
        for (i, label) in seq.iter().enumerate() {
            if *label != seq[i % p] {
                continue 'outer;
            }
        }
        return p;
    }
    seq.len()
}

/// Tries to explain the child sequences of a node as repetitions of one
/// group `g` (with varying repeat counts). Returns the group when:
/// * every element mentioned belongs to the schema's children of the node,
/// * a strict majority (> `mult_threshold`) of the sequences are exact
///   repetitions of the same group, and
/// * at least one sequence repeats the group more than once (otherwise the
///   plain per-element rules describe the node better).
fn detect_group_pattern(
    sequences: &[Vec<String>],
    allowed: &[String],
    mult_threshold: f64,
) -> Option<Vec<String>> {
    let first = sequences.iter().find(|s| !s.is_empty())?;
    let period = smallest_period(first);
    let group: Vec<String> = first[..period].to_vec();
    if group.len() < 2 || group.iter().any(|l| !allowed.contains(l)) {
        return None;
    }
    let mut matching = 0usize;
    let mut repeated = false;
    for seq in sequences {
        if seq.len().is_multiple_of(group.len())
            && seq
                .iter()
                .enumerate()
                .all(|(i, l)| *l == group[i % group.len()])
        {
            matching += 1;
            if seq.len() > group.len() {
                repeated = true;
            }
        }
    }
    (repeated && (matching as f64) > mult_threshold * sequences.len() as f64)
        .then_some(group)
}

/// Per-child aggregation across every schema node carrying one label.
#[derive(Default)]
struct ChildAgg {
    pos_sum: f64,
    pos_count: u64,
    repetitive: bool,
    /// Schema contexts (nodes of the parent label) this child occurs under.
    contexts: usize,
    /// Max presence ratio (docs with child path / docs with parent path)
    /// over the contexts, for the optional-element extension.
    presence: f64,
}

/// Derives a DTD from a majority schema and the corpus it was mined from.
///
/// DTD element declarations are *global per name*, while the majority
/// schema is a tree in which the same label may occur on several paths with
/// different children (the paper's homonyms, e.g. `date` under `education`
/// versus elsewhere). The derivation therefore **unifies** all schema nodes
/// sharing a label into one content model — the schema-unification step the
/// paper defers to its companion thesis [13]: children are unioned, the
/// ordering rule averages positions over every context, the repetition rule
/// fires if any context shows repetition, and a child missing from some
/// context becomes optional (required for soundness: a document following
/// the child-free context must still validate).
pub fn derive_dtd(schema: &MajoritySchema, corpus: &[DocPaths], config: &DtdConfig) -> Dtd {
    derive_dtd_sharded_obs(
        schema,
        &[corpus.iter().collect()],
        config,
        webre_obs::Ctx::disabled(),
    )
}

/// [`derive_dtd`] with observability: the derivation runs under a
/// `derive-dtd` span. The resulting DTD is identical.
pub fn derive_dtd_obs(
    schema: &MajoritySchema,
    corpus: &[DocPaths],
    config: &DtdConfig,
    ctx: webre_obs::Ctx<'_>,
) -> Dtd {
    derive_dtd_sharded_obs(schema, &[corpus.iter().collect()], config, ctx)
}

/// [`derive_dtd`] over a corpus split into shard slices.
///
/// Every statistic the two derivation rules consume is an associative
/// aggregate over documents — position sums, per-path document counts,
/// repetition counts — so deriving from shard slices is byte-identical
/// to deriving from the concatenated corpus under the default
/// configuration. The one exception is [`DtdConfig::group_patterns`]:
/// group detection seeds from the *first* non-empty child sequence, so
/// with it enabled the derived DTD depends on document order and the
/// identity only holds when shard order is arrival order.
pub fn derive_dtd_sharded(
    schema: &MajoritySchema,
    shards: &[Vec<&DocPaths>],
    config: &DtdConfig,
) -> Dtd {
    derive_dtd_sharded_obs(schema, shards, config, webre_obs::Ctx::disabled())
}

/// [`derive_dtd_sharded`] with observability; the DTD is identical.
pub fn derive_dtd_sharded_obs(
    schema: &MajoritySchema,
    shards: &[Vec<&DocPaths>],
    config: &DtdConfig,
    ctx: webre_obs::Ctx<'_>,
) -> Dtd {
    let _span = ctx.span(webre_obs::stage::DERIVE_DTD);
    let mut dtd = Dtd::new(schema.root_label());

    // Group schema nodes by label, preserving first-seen (pre-order) order.
    let mut labels: Vec<String> = Vec::new();
    let mut nodes_by_label: std::collections::HashMap<String, Vec<webre_tree::NodeId>> =
        std::collections::HashMap::new();
    for id in schema.tree.descendants(schema.tree.root()) {
        let label = schema.tree.value(id).label.clone();
        if !labels.contains(&label) {
            labels.push(label.clone());
        }
        nodes_by_label.entry(label).or_default().push(id);
    }

    for label in labels {
        let nodes = &nodes_by_label[&label];

        // XTRACT-style extension: a repeating group pattern takes
        // precedence over the per-element ordering/repetition rules, but
        // only when it holds across every context of the label.
        if config.group_patterns {
            if let Some(content) = group_pattern_content(schema, shards, nodes, config) {
                dtd.declare(label, content);
                continue;
            }
        }

        // Aggregate children over all contexts of this label.
        let mut child_order: Vec<String> = Vec::new();
        let mut agg: std::collections::HashMap<String, ChildAgg> =
            std::collections::HashMap::new();
        for &id in nodes {
            let prefix = schema.path_of(id);
            let prefix_docs = sharded_doc_frequency(shards, &prefix).max(1);
            for child in schema.tree.children(id) {
                let child_label = schema.tree.value(child).label.clone();
                let mut path = prefix.clone();
                path.push(child_label.clone());
                if !child_order.contains(&child_label) {
                    child_order.push(child_label.clone());
                }
                let entry = agg.entry(child_label).or_default();
                for doc in all_docs(shards) {
                    if let Some((s, c)) = doc.positions.get(&path) {
                        entry.pos_sum += s;
                        entry.pos_count += c;
                    }
                }
                let rep_docs = all_docs(shards)
                    .filter(|d| d.multiplicity_of(&path) >= config.rep_threshold)
                    .count();
                let path_docs = sharded_doc_frequency(shards, &path);
                if rep_docs as f64 > config.mult_threshold * path_docs.max(1) as f64 {
                    entry.repetitive = true;
                }
                entry.contexts += 1;
                entry.presence = entry
                    .presence
                    .max(path_docs as f64 / prefix_docs as f64);
            }
        }

        // Ordering rule over the aggregated positions.
        let mut children: Vec<(f64, String)> = child_order
            .into_iter()
            .map(|l| {
                let a = &agg[&l];
                let avg = if a.pos_count > 0 {
                    a.pos_sum / a.pos_count as f64
                } else {
                    f64::MAX
                };
                (avg, l)
            })
            .collect();
        children.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite").then(a.1.cmp(&b.1)));

        let content = if children.is_empty() {
            ContentExpr::PcData
        } else {
            let mut items = vec![ContentExpr::PcData];
            for (_, child_label) in children {
                let a = &agg[&child_label];
                let mut expr = ContentExpr::Name(child_label);
                if a.repetitive {
                    expr = ContentExpr::Plus(Box::new(expr));
                } else if a.contexts < nodes.len()
                    || config.optional_below.is_some_and(|t| a.presence < t)
                {
                    // Unification: a child absent from some context of the
                    // label must be optional for documents following that
                    // context to validate.
                    expr = ContentExpr::Opt(Box::new(expr));
                }
                items.push(expr);
            }
            ContentExpr::Seq(items)
        };
        dtd.declare(label, content);
    }
    dtd
}

/// Documents of every shard, in shard order then arrival order.
fn all_docs<'a>(shards: &'a [Vec<&'a DocPaths>]) -> impl Iterator<Item = &'a DocPaths> {
    shards.iter().flatten().copied()
}

/// Document frequency of a path summed across shard views (shards hold
/// disjoint document sets, so the sum is the union's frequency).
fn sharded_doc_frequency(shards: &[Vec<&DocPaths>], path: &[String]) -> usize {
    shards
        .iter()
        .map(|s| s.iter().filter(|d| d.contains(path)).count())
        .sum()
}

/// Group-pattern content model for a label, if one group explains every
/// context's sequences.
fn group_pattern_content(
    schema: &MajoritySchema,
    shards: &[Vec<&DocPaths>],
    nodes: &[webre_tree::NodeId],
    config: &DtdConfig,
) -> Option<ContentExpr> {
    let mut allowed: Vec<String> = Vec::new();
    let mut sequences: Vec<Vec<String>> = Vec::new();
    for &id in nodes {
        for c in schema.tree.children(id) {
            let l = schema.tree.value(c).label.clone();
            if !allowed.contains(&l) {
                allowed.push(l);
            }
        }
        let prefix = schema.path_of(id);
        for doc in all_docs(shards) {
            if let Some(seqs) = doc.child_sequences.get(&prefix) {
                sequences.extend(seqs.iter().cloned());
            }
        }
    }
    if sequences.is_empty() {
        return None;
    }
    let group = detect_group_pattern(&sequences, &allowed, config.mult_threshold)?;
    let body = ContentExpr::Plus(Box::new(ContentExpr::Seq(
        group.into_iter().map(ContentExpr::Name).collect(),
    )));
    Some(ContentExpr::Seq(vec![ContentExpr::PcData, body]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequent::FrequentPathMiner;
    use crate::paths::extract_paths;
    use webre_xml::parse_xml;

    fn corpus(xmls: &[&str]) -> Vec<DocPaths> {
        xmls.iter()
            .map(|x| extract_paths(&parse_xml(x).unwrap()))
            .collect()
    }

    fn mine(corpus: &[DocPaths], sup: f64) -> MajoritySchema {
        FrequentPathMiner {
            sup_threshold: sup,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(corpus)
        .unwrap()
        .schema
    }

    #[test]
    fn leaves_are_pcdata() {
        let docs = corpus(&["<r><a/></r>", "<r><a/></r>"]);
        let dtd = derive_dtd(&mine(&docs, 0.5), &docs, &DtdConfig::default());
        assert_eq!(dtd.content_of("a"), Some(&ContentExpr::PcData));
    }

    #[test]
    fn ordering_follows_average_position() {
        // b usually precedes a.
        let docs = corpus(&[
            "<r><b/><a/></r>",
            "<r><b/><a/></r>",
            "<r><a/><b/></r>",
        ]);
        let dtd = derive_dtd(&mine(&docs, 0.5), &docs, &DtdConfig::default());
        let decl = dtd.elements.get("r").unwrap().to_string();
        assert_eq!(decl, "<!ELEMENT r ((#PCDATA), b, a)>");
    }

    #[test]
    fn repetition_marks_plus() {
        // Three or more a-siblings in most documents → a+.
        let docs = corpus(&[
            "<r><a/><a/><a/><b/></r>",
            "<r><a/><a/><a/><a/><b/></r>",
            "<r><a/><b/></r>",
        ]);
        let dtd = derive_dtd(&mine(&docs, 0.5), &docs, &DtdConfig::default());
        let decl = dtd.elements.get("r").unwrap().to_string();
        assert_eq!(decl, "<!ELEMENT r ((#PCDATA), a+, b)>");
    }

    #[test]
    fn repetition_below_threshold_stays_single() {
        // Only two siblings: below the repThreshold of 3.
        let docs = corpus(&["<r><a/><a/></r>", "<r><a/><a/></r>"]);
        let dtd = derive_dtd(&mine(&docs, 0.5), &docs, &DtdConfig::default());
        let decl = dtd.elements.get("r").unwrap().to_string();
        assert_eq!(decl, "<!ELEMENT r ((#PCDATA), a)>");
    }

    #[test]
    fn lower_rep_threshold_changes_outcome() {
        let docs = corpus(&["<r><a/><a/></r>", "<r><a/><a/></r>"]);
        let config = DtdConfig {
            rep_threshold: 2,
            ..DtdConfig::default()
        };
        let dtd = derive_dtd(&mine(&docs, 0.5), &docs, &config);
        assert_eq!(
            dtd.elements.get("r").unwrap().to_string(),
            "<!ELEMENT r ((#PCDATA), a+)>"
        );
    }

    #[test]
    fn optional_extension_marks_rare_elements() {
        // b present in 2 of 4 documents that contain r.
        let docs = corpus(&[
            "<r><a/><b/></r>",
            "<r><a/><b/></r>",
            "<r><a/></r>",
            "<r><a/></r>",
        ]);
        let schema = mine(&docs, 0.4);
        let strict = derive_dtd(&schema, &docs, &DtdConfig::default());
        assert_eq!(
            strict.elements.get("r").unwrap().to_string(),
            "<!ELEMENT r ((#PCDATA), a, b)>"
        );
        let optional = derive_dtd(
            &schema,
            &docs,
            &DtdConfig {
                optional_below: Some(0.75),
                ..DtdConfig::default()
            },
        );
        assert_eq!(
            optional.elements.get("r").unwrap().to_string(),
            "<!ELEMENT r ((#PCDATA), a, b?)>"
        );
    }

    #[test]
    fn derived_dtd_validates_conforming_documents() {
        let docs = corpus(&[
            "<r><a/><a/><a/><b><c/></b></r>",
            "<r><a/><a/><a/><b><c/></b></r>",
        ]);
        let dtd = derive_dtd(&mine(&docs, 0.5), &docs, &DtdConfig::default());
        let doc = parse_xml("<r><a/><a/><b><c/></b></r>").unwrap();
        assert!(
            webre_xml::validate::conforms(&doc, &dtd),
            "{}",
            dtd.to_dtd_string()
        );
        let bad = parse_xml("<r><b><c/></b><a/></r>").unwrap();
        assert!(!webre_xml::validate::conforms(&bad, &dtd));
    }

    #[test]
    fn smallest_period_basics() {
        let seq = |labels: &[&str]| -> Vec<String> {
            labels.iter().map(|s| (*s).to_owned()).collect()
        };
        assert_eq!(smallest_period(&seq(&["a", "b", "a", "b"])), 2);
        assert_eq!(smallest_period(&seq(&["a", "a", "a"])), 1);
        assert_eq!(smallest_period(&seq(&["a", "b", "c"])), 3);
        assert_eq!(smallest_period(&seq(&["a", "b", "a"])), 3);
    }

    #[test]
    fn group_pattern_detected() {
        // Alternating degree/date children — the (e1, e2)+ case the paper
        // mentions at the end of Section 3.3.
        let docs = corpus(&[
            "<r><e><d/><t/><d/><t/></e></r>",
            "<r><e><d/><t/><d/><t/><d/><t/></e></r>",
            "<r><e><d/><t/></e></r>",
        ]);
        let schema = mine(&docs, 0.5);
        let config = DtdConfig {
            group_patterns: true,
            ..DtdConfig::default()
        };
        let dtd = derive_dtd(&schema, &docs, &config);
        assert_eq!(
            dtd.elements.get("e").unwrap().to_string(),
            "<!ELEMENT e ((#PCDATA), (d, t)+)>"
        );
        // Validation accepts any repeat count.
        let doc = parse_xml("<r><e><d/><t/><d/><t/><d/><t/><d/><t/></e></r>").unwrap();
        assert!(webre_xml::validate::conforms(&doc, &dtd));
        let bad = parse_xml("<r><e><d/><d/></e></r>").unwrap();
        assert!(!webre_xml::validate::conforms(&bad, &dtd));
    }

    #[test]
    fn group_pattern_disabled_by_default() {
        let docs = corpus(&[
            "<r><e><d/><t/><d/><t/></e></r>",
            "<r><e><d/><t/><d/><t/></e></r>",
        ]);
        let schema = mine(&docs, 0.5);
        let dtd = derive_dtd(&schema, &docs, &DtdConfig::default());
        assert!(!dtd.elements.get("e").unwrap().to_string().contains("(d, t)+"));
    }

    #[test]
    fn group_pattern_falls_back_on_irregular_sequences() {
        // Half the sequences do not follow the group: fall back to the
        // plain ordering/repetition rules.
        let docs = corpus(&[
            "<r><e><d/><t/><d/><t/></e></r>",
            "<r><e><t/><d/></e></r>",
            "<r><e><t/><t/><d/></e></r>",
            "<r><e><t/><d/><d/></e></r>",
        ]);
        let schema = mine(&docs, 0.5);
        let config = DtdConfig {
            group_patterns: true,
            ..DtdConfig::default()
        };
        let dtd = derive_dtd(&schema, &docs, &config);
        assert!(
            !dtd.elements.get("e").unwrap().to_string().contains("(d, t)+"),
            "{}",
            dtd.to_dtd_string()
        );
    }

    #[test]
    fn group_pattern_requires_actual_repetition() {
        // Every document has exactly one (d, t) pair: plain rules suffice,
        // no group pattern should be emitted.
        let docs = corpus(&["<r><e><d/><t/></e></r>", "<r><e><d/><t/></e></r>"]);
        let schema = mine(&docs, 0.5);
        let config = DtdConfig {
            group_patterns: true,
            ..DtdConfig::default()
        };
        let dtd = derive_dtd(&schema, &docs, &config);
        assert_eq!(
            dtd.elements.get("e").unwrap().to_string(),
            "<!ELEMENT e ((#PCDATA), d, t)>"
        );
    }

    #[test]
    fn homonym_labels_unify_into_one_declaration() {
        // `d` occurs under `e` with a child `x`, and directly under `r` as
        // a leaf. The single DTD declaration for `d` must admit both
        // contexts: x becomes optional.
        let docs = corpus(&[
            "<r><e><d><x/></d></e><d/></r>",
            "<r><e><d><x/></d></e><d/></r>",
        ]);
        let dtd = derive_dtd(&mine(&docs, 0.5), &docs, &DtdConfig::default());
        assert_eq!(
            dtd.elements.get("d").unwrap().to_string(),
            "<!ELEMENT d ((#PCDATA), x?)>"
        );
        // Both original documents validate against the unified DTD.
        for xml in [
            "<r><e><d><x/></d></e><d/></r>",
            "<r><e><d><x/></d></e><d/></r>",
        ] {
            let doc = parse_xml(xml).unwrap();
            assert!(
                webre_xml::validate::conforms(&doc, &dtd),
                "{xml} vs
{}",
                dtd.to_dtd_string()
            );
        }
    }

    #[test]
    fn sharded_derivation_equals_batch_for_every_split() {
        // The derivation rules consume only associative aggregates, so
        // any 2-way split of the corpus must derive the identical DTD
        // (group_patterns off — the default — is the documented scope).
        let docs = corpus(&[
            "<r><a/><a/><a/><b><c/></b></r>",
            "<r><b><c/></b><a/></r>",
            "<r><a/><a/><a/><b><c/></b></r>",
            "<s><a/></s>",
            "<r><a/><b><c/><c/><c/></b></r>",
        ]);
        let schema = mine(&docs, 0.4);
        for config in [
            DtdConfig::default(),
            DtdConfig {
                rep_threshold: 2,
                optional_below: Some(0.75),
                ..DtdConfig::default()
            },
        ] {
            let batch = derive_dtd(&schema, &docs, &config).to_dtd_string();
            for split in 0..=docs.len() {
                let (left, right) = docs.split_at(split);
                let sharded = derive_dtd_sharded(
                    &schema,
                    &[left.iter().collect(), right.iter().collect()],
                    &config,
                )
                .to_dtd_string();
                assert_eq!(batch, sharded, "split at {split}");
            }
            // Three-way split, shards of unequal size.
            let sharded = derive_dtd_sharded(
                &schema,
                &[
                    docs[..1].iter().collect(),
                    docs[1..4].iter().collect(),
                    docs[4..].iter().collect(),
                ],
                &config,
            )
            .to_dtd_string();
            assert_eq!(batch, sharded);
        }
    }

    #[test]
    fn nested_elements_get_their_own_declarations() {
        let docs = corpus(&["<r><e><d/><i/></e></r>", "<r><e><d/><i/></e></r>"]);
        let dtd = derive_dtd(&mine(&docs, 0.5), &docs, &DtdConfig::default());
        assert_eq!(dtd.len(), 4);
        assert!(dtd.content_of("e").is_some());
        assert_eq!(dtd.content_of("d"), Some(&ContentExpr::PcData));
    }
}
