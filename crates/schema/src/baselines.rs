//! Baseline schemas the paper compares against (Section 1).
//!
//! * **DataGuide** (Goldman & Widom, VLDB'97): the *upper bound* schema —
//!   every label path occurring in *any* document. Precise but bloated:
//!   one noisy document inflates the schema.
//! * **Lower bound** schema: only the label paths occurring in *every*
//!   document. Robust but usually near-empty for heterogeneous corpora.
//!
//! The majority schema sits between the two; the A3 experiment measures
//! schema size and per-document conformance for all three.

use crate::frequent::FrequentPathMiner;
use crate::majority::MajoritySchema;
use crate::paths::DocPaths;

/// Builds the DataGuide (upper bound) schema: support threshold just above
/// zero, so every observed path is kept.
pub fn dataguide(corpus: &[DocPaths]) -> Option<MajoritySchema> {
    FrequentPathMiner {
        sup_threshold: f64::MIN_POSITIVE,
        ratio_threshold: 0.0,
        constraints: None,
        max_len: None,
    }
    .mine(corpus)
    .map(|o| o.schema)
}

/// Builds the lower bound schema: only paths in every document survive.
pub fn lower_bound(corpus: &[DocPaths]) -> Option<MajoritySchema> {
    FrequentPathMiner {
        sup_threshold: 1.0,
        ratio_threshold: 0.0,
        constraints: None,
        max_len: None,
    }
    .mine(corpus)
    .map(|o| o.schema)
}

/// Fraction of corpus documents all of whose paths are covered by the
/// schema (structural conformance at the path level).
pub fn path_conformance(schema: &MajoritySchema, corpus: &[DocPaths]) -> f64 {
    if corpus.is_empty() {
        return 1.0;
    }
    let conforming = corpus
        .iter()
        .filter(|d| {
            d.paths
                .iter()
                .all(|p| schema.contains(p))
        })
        .count();
    conforming as f64 / corpus.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::extract_paths;
    use webre_xml::parse_xml;

    fn corpus(xmls: &[&str]) -> Vec<DocPaths> {
        xmls.iter()
            .map(|x| extract_paths(&parse_xml(x).unwrap()))
            .collect()
    }

    fn p(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn dataguide_contains_every_path() {
        let docs = corpus(&["<r><a/></r>", "<r><b><c/></b></r>"]);
        let dg = dataguide(&docs).unwrap();
        assert!(dg.contains(&p(&["r", "a"])));
        assert!(dg.contains(&p(&["r", "b", "c"])));
        assert_eq!(dg.len(), 4);
    }

    #[test]
    fn lower_bound_contains_only_universal_paths() {
        let docs = corpus(&["<r><a/><b/></r>", "<r><a/></r>"]);
        let lb = lower_bound(&docs).unwrap();
        assert!(lb.contains(&p(&["r", "a"])));
        assert!(!lb.contains(&p(&["r", "b"])));
        assert_eq!(lb.len(), 2);
    }

    #[test]
    fn schema_sizes_are_ordered() {
        // lower bound ⊆ majority ⊆ dataguide.
        let docs = corpus(&[
            "<r><a/><b/><c/></r>",
            "<r><a/><b/></r>",
            "<r><a/><b/></r>",
            "<r><a/></r>",
        ]);
        let dg = dataguide(&docs).unwrap();
        let lb = lower_bound(&docs).unwrap();
        let majority = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&docs)
        .unwrap()
        .schema;
        assert!(lb.len() <= majority.len());
        assert!(majority.len() <= dg.len());
        assert_eq!(lb.len(), 2); // r, a
        assert_eq!(majority.len(), 3); // r, a, b
        assert_eq!(dg.len(), 4); // r, a, b, c
    }

    #[test]
    fn conformance_is_total_for_dataguide() {
        let docs = corpus(&["<r><a/></r>", "<r><b/></r>", "<r><a/><b/></r>"]);
        let dg = dataguide(&docs).unwrap();
        assert_eq!(path_conformance(&dg, &docs), 1.0);
    }

    #[test]
    fn conformance_is_partial_for_majority() {
        let docs = corpus(&[
            "<r><a/></r>",
            "<r><a/></r>",
            "<r><a/></r>",
            "<r><a/><z/></r>",
        ]);
        let majority = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&docs)
        .unwrap()
        .schema;
        let conf = path_conformance(&majority, &docs);
        assert!((conf - 0.75).abs() < 1e-12, "conf = {conf}");
    }

    #[test]
    fn empty_corpus_has_no_baselines() {
        assert!(dataguide(&[]).is_none());
        assert!(lower_bound(&[]).is_none());
    }
}
