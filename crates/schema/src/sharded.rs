//! Sharded corpora and the mergeable frequent-path table.
//!
//! The frequent-path statistics the miner consumes are all *associative*
//! aggregates: document-support counts add, sibling-position sums add,
//! root votes add, and the candidate-children relation is a set union.
//! That algebra is what makes a corpus shardable — each shard maintains
//! its own [`CorpusIndex`], and merging the per-shard [`PathTable`]s
//! yields byte-for-byte the table a single index over the union would
//! have produced, regardless of how documents were split or in which
//! order shards are merged. `crates/check`'s `shard-merge-vs-batch`
//! oracle holds this identity under random corpora, shard counts and
//! mining thresholds.
//!
//! [`ShardedCorpus`] routes each document to a shard by content hash and
//! implements [`CorpusView`] over the union by summing per-shard
//! answers, so mining a sharded corpus explores the exact node set (and
//! produces the exact schema) batch mining over the concatenated
//! documents would.

use crate::frequent::CorpusView;
use crate::incremental::CorpusIndex;
use crate::paths::{DocPaths, LabelPath};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// The mergeable aggregate of a document set: everything the miner needs
/// (support counts, candidate children, root votes) plus the ordering
/// rule's position sums, with merge = pointwise addition.
///
/// Keys are held in `BTreeMap`s so every traversal of the table is in
/// sorted path order — serialization and queries are deterministic no
/// matter what order documents or merges arrived in.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PathTable {
    /// Documents aggregated into this table.
    pub doc_count: usize,
    /// Document-support count per label path (each document counts once
    /// per path it contains — path *sets*, per Section 3.2).
    pub frequency: BTreeMap<LabelPath, usize>,
    /// Sum and count of 0-based sibling positions per label path (the
    /// ordering rule averages `sum / count`).
    pub positions: BTreeMap<LabelPath, (f64, u64)>,
}

impl PathTable {
    /// An empty table.
    pub fn new() -> Self {
        PathTable::default()
    }

    /// The table of a document batch.
    pub fn from_docs<'a>(docs: impl IntoIterator<Item = &'a DocPaths>) -> Self {
        let mut table = PathTable::new();
        for doc in docs {
            table.add_doc(doc);
        }
        table
    }

    /// Aggregates one document. O(paths in `doc` · log table).
    pub fn add_doc(&mut self, doc: &DocPaths) {
        for path in &doc.paths {
            *self.frequency.entry(path.clone()).or_insert(0) += 1;
        }
        for (path, (sum, count)) in &doc.positions {
            let entry = self.positions.entry(path.clone()).or_insert((0.0, 0));
            entry.0 += sum;
            entry.1 += count;
        }
        self.doc_count += 1;
    }

    /// Pointwise addition of another table — the merge half of the
    /// merge ≡ batch identity.
    pub fn merge_from(&mut self, other: &PathTable) {
        self.doc_count += other.doc_count;
        for (path, count) in &other.frequency {
            *self.frequency.entry(path.clone()).or_insert(0) += count;
        }
        for (path, (sum, count)) in &other.positions {
            let entry = self.positions.entry(path.clone()).or_insert((0.0, 0));
            entry.0 += sum;
            entry.1 += count;
        }
    }

    /// Merges a sequence of tables into one.
    pub fn merged<'a>(tables: impl IntoIterator<Item = &'a PathTable>) -> PathTable {
        let mut out = PathTable::new();
        for table in tables {
            out.merge_from(table);
        }
        out
    }

    /// Average sibling position of a path, `None` when unobserved.
    pub fn average_position(&self, path: &[String]) -> Option<f64> {
        self.positions
            .get(path)
            .filter(|(_, count)| *count > 0)
            .map(|(sum, count)| sum / *count as f64)
    }

    /// Number of distinct label paths with support.
    pub fn distinct_paths(&self) -> usize {
        self.frequency.len()
    }
}

impl CorpusView for PathTable {
    fn doc_count(&self) -> usize {
        self.doc_count
    }

    fn frequency(&self, path: &[String]) -> usize {
        self.frequency.get(path).copied().unwrap_or(0)
    }

    fn child_labels(&self, prefix: &[String]) -> Vec<String> {
        // Paths extending `prefix` are contiguous in lexicographic key
        // order, and among them the depth-(+1) keys appear sorted by
        // their final label — a bounded range scan yields the children
        // already in the sorted order the other `CorpusView` impls use.
        let mut out = Vec::new();
        let start: LabelPath = prefix.to_vec();
        for (path, _) in self
            .frequency
            .range::<LabelPath, _>((Bound::Included(&start), Bound::Unbounded))
        {
            if !path.starts_with(prefix) {
                break;
            }
            if path.len() == prefix.len() + 1 {
                out.push(path.last().expect("non-empty path").clone());
            }
        }
        out
    }

    fn root_votes(&self) -> Vec<(String, usize)> {
        // Every document contributes exactly one length-1 path — its
        // root — so root votes are the depth-1 slice of the frequency
        // table rather than separate state.
        let mut votes: Vec<(String, usize)> = self
            .frequency
            .iter()
            .filter(|(path, _)| path.len() == 1)
            .map(|(path, count)| (path[0].clone(), *count))
            .collect();
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        votes
    }
}

/// A live corpus split across N independent [`CorpusIndex`] shards by
/// content hash, with a [`CorpusView`] over the union.
#[derive(Clone, Debug)]
pub struct ShardedCorpus {
    shards: Vec<CorpusIndex>,
}

impl ShardedCorpus {
    /// A corpus with `shards` empty shards (at least one).
    pub fn new(shards: usize) -> Self {
        ShardedCorpus {
            shards: vec![CorpusIndex::new(); shards.max(1)],
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a content hash routes to.
    pub fn shard_of(&self, hash: u64) -> usize {
        (hash % self.shards.len() as u64) as usize
    }

    /// Accretes a document into the shard its content hash selects;
    /// returns that shard's id.
    pub fn push(&mut self, hash: u64, doc: DocPaths) -> usize {
        let shard = self.shard_of(hash);
        self.shards[shard].push(doc);
        shard
    }

    /// Accretes a document into an explicit shard (WAL replay appends
    /// each shard's log back into the same shard).
    pub fn push_to(&mut self, shard: usize, doc: DocPaths) {
        self.shards[shard].push(doc);
    }

    /// The shards, in id order.
    pub fn shards(&self) -> &[CorpusIndex] {
        &self.shards
    }

    /// Per-shard document views (arrival order, duplicates interned),
    /// for sharded DTD derivation.
    pub fn docs_by_shard(&self) -> Vec<Vec<&DocPaths>> {
        self.shards.iter().map(|s| s.docs().collect()).collect()
    }

    /// Total documents across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(CorpusIndex::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of shard versions — increases on every push, so snapshot
    /// staleness detection works exactly as with one index.
    pub fn version(&self) -> u64 {
        self.shards.iter().map(CorpusIndex::version).sum()
    }

    /// The merged [`PathTable`] over all shards.
    pub fn table(&self) -> PathTable {
        let tables: Vec<PathTable> = self.shards.iter().map(CorpusIndex::table).collect();
        PathTable::merged(&tables)
    }
}

impl CorpusView for ShardedCorpus {
    fn doc_count(&self) -> usize {
        self.len()
    }

    fn frequency(&self, path: &[String]) -> usize {
        self.shards.iter().map(|s| s.frequency(path)).sum()
    }

    fn child_labels(&self, prefix: &[String]) -> Vec<String> {
        let mut union: BTreeSet<String> = BTreeSet::new();
        for shard in &self.shards {
            union.extend(shard.child_labels(prefix));
        }
        union.into_iter().collect()
    }

    fn root_votes(&self) -> Vec<(String, usize)> {
        let mut tally: BTreeMap<String, usize> = BTreeMap::new();
        for shard in &self.shards {
            for (label, count) in shard.root_votes() {
                *tally.entry(label).or_insert(0) += count;
            }
        }
        let mut votes: Vec<(String, usize)> = tally.into_iter().collect();
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        votes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequent::FrequentPathMiner;
    use crate::paths::extract_paths;
    use webre_substrate::rand::rngs::StdRng;
    use webre_substrate::rand::seq::SliceRandom;
    use webre_substrate::rand::{Rng, SeedableRng};
    use webre_xml::parse_xml;

    fn corpus(xmls: &[&str]) -> Vec<DocPaths> {
        xmls.iter()
            .map(|x| extract_paths(&parse_xml(x).unwrap()))
            .collect()
    }

    /// Small random label-tree corpus (mirrors the incremental tests).
    fn random_corpus(rng: &mut StdRng) -> Vec<DocPaths> {
        const LABELS: &[&str] = &["a", "b", "c", "d"];
        fn element(rng: &mut StdRng, label: &str, depth: u32) -> String {
            let arity = if depth == 0 { 0 } else { rng.gen_range(0..=3u32) };
            if arity == 0 {
                return format!("<{label}/>");
            }
            let children: String = (0..arity)
                .map(|_| {
                    let label = *LABELS.choose(rng).unwrap();
                    element(rng, label, depth - 1)
                })
                .collect();
            format!("<{label}>{children}</{label}>")
        }
        let n = rng.gen_range(2..=8usize);
        (0..n)
            .map(|_| {
                let root = if rng.gen_bool(0.85) { "r" } else { "s" };
                extract_paths(&parse_xml(&element(rng, root, 3)).unwrap())
            })
            .collect()
    }

    #[test]
    fn table_from_docs_matches_slice_answers() {
        let docs = corpus(&[
            "<r><a/><b/><a/></r>",
            "<r><b/><c><a/></c></r>",
            "<r><a/></r>",
        ]);
        let table = PathTable::from_docs(&docs);
        assert_eq!(table.doc_count(), 3);
        let mut universe: Vec<&LabelPath> = docs.iter().flat_map(|d| d.paths.iter()).collect();
        universe.sort();
        universe.dedup();
        for path in universe {
            assert_eq!(
                CorpusView::frequency(&table, path),
                docs[..].frequency(path),
                "frequency diverges on {path:?}"
            );
            assert_eq!(
                table.child_labels(path),
                docs[..].child_labels(path),
                "children diverge under {path:?}"
            );
            assert_eq!(
                table.average_position(path),
                crate::paths::average_position(&docs, path),
                "positions diverge on {path:?}"
            );
        }
        assert_eq!(table.root_votes(), docs[..].root_votes());
    }

    #[test]
    fn merge_equals_batch_for_any_split_point() {
        let docs = corpus(&[
            "<r><a/><b/></r>",
            "<r><b/><b/><b/></r>",
            "<s><a/></s>",
            "<r><c><a/></c></r>",
        ]);
        let batch = PathTable::from_docs(&docs);
        for split in 0..=docs.len() {
            let (left, right) = docs.split_at(split);
            let mut merged = PathTable::from_docs(left);
            merged.merge_from(&PathTable::from_docs(right));
            assert_eq!(merged, batch, "split at {split}");
        }
    }

    #[test]
    fn merge_is_order_insensitive() {
        let docs = corpus(&["<r><a/></r>", "<r><b/></r>", "<s><c/></s>"]);
        let parts: Vec<PathTable> = docs
            .iter()
            .map(|d| PathTable::from_docs(std::iter::once(d)))
            .collect();
        let forward = PathTable::merged(&parts);
        let backward = PathTable::merged(parts.iter().rev());
        assert_eq!(forward, backward);
        assert_eq!(forward, PathTable::from_docs(&docs));
    }

    #[test]
    fn sharded_view_answers_match_union_slice() {
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let docs = random_corpus(&mut rng);
            let shard_count = rng.gen_range(1..=4usize);
            let mut sharded = ShardedCorpus::new(shard_count);
            for (i, doc) in docs.iter().enumerate() {
                // Any deterministic hash works; route by index mix.
                sharded.push((i as u64).wrapping_mul(0x9E37_79B9), doc.clone());
            }
            assert_eq!(sharded.len(), docs.len());
            let mut universe: Vec<&LabelPath> =
                docs.iter().flat_map(|d| d.paths.iter()).collect();
            universe.sort();
            universe.dedup();
            for path in universe {
                assert_eq!(
                    CorpusView::frequency(&sharded, path),
                    docs[..].frequency(path),
                    "seed {seed}: frequency diverges on {path:?}"
                );
                assert_eq!(
                    sharded.child_labels(path),
                    docs[..].child_labels(path),
                    "seed {seed}: children diverge under {path:?}"
                );
            }
            assert_eq!(sharded.root_votes(), docs[..].root_votes(), "seed {seed}");
        }
    }

    #[test]
    fn mining_sharded_equals_mining_batch() {
        const SUPS: &[f64] = &[0.0, 0.25, 0.5, 0.75];
        const RATIOS: &[f64] = &[0.0, 0.3, 0.8];
        for seed in 0..25u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let docs = random_corpus(&mut rng);
            let mut sharded = ShardedCorpus::new(rng.gen_range(1..=5usize));
            for (i, doc) in docs.iter().enumerate() {
                sharded.push(i as u64, doc.clone());
            }
            let miner = FrequentPathMiner {
                sup_threshold: *SUPS.choose(&mut rng).unwrap(),
                ratio_threshold: *RATIOS.choose(&mut rng).unwrap(),
                max_len: rng.gen_bool(0.25).then(|| rng.gen_range(1..=3usize)),
                constraints: None,
            };
            // Three routes to the same schema: batch slice, sharded
            // view, merged table.
            let batch = miner.mine(&docs);
            let sharded_outcome = miner.mine_view(&sharded);
            let table_outcome = miner.mine_view(&sharded.table());
            match (batch, sharded_outcome, table_outcome) {
                (None, None, None) => {}
                (Some(b), Some(s), Some(t)) => {
                    assert_eq!(b.schema.render(), s.schema.render(), "seed {seed}");
                    assert_eq!(b.schema.render(), t.schema.render(), "seed {seed}");
                    assert_eq!(b.nodes_explored, s.nodes_explored, "seed {seed}");
                    assert_eq!(b.nodes_explored, t.nodes_explored, "seed {seed}");
                    assert_eq!(b.nodes_accepted, s.nodes_accepted, "seed {seed}");
                    assert_eq!(b.nodes_accepted, t.nodes_accepted, "seed {seed}");
                }
                (b, s, t) => panic!(
                    "seed {seed}: divergent mining presence (batch {}, sharded {}, table {})",
                    b.is_some(),
                    s.is_some(),
                    t.is_some()
                ),
            }
        }
    }

    #[test]
    fn shard_routing_is_stable_by_hash() {
        let mut sharded = ShardedCorpus::new(4);
        let docs = corpus(&["<r><a/></r>"]);
        let shard = sharded.push(42, docs[0].clone());
        assert_eq!(shard, sharded.shard_of(42));
        assert_eq!(sharded.shards()[shard].len(), 1);
        assert_eq!(sharded.version(), 1);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let sharded = ShardedCorpus::new(0);
        assert_eq!(sharded.shard_count(), 1);
        assert_eq!(sharded.shard_of(u64::MAX), 0);
    }

    #[test]
    fn empty_table_mines_nothing() {
        assert!(FrequentPathMiner::default()
            .mine_view(&PathTable::new())
            .is_none());
        assert!(PathTable::new().root_votes().is_empty());
    }
}
