//! Frequent-path mining (Section 3.2).
//!
//! For a label path `p`, `support(p) = freq(p, S) / |D|` where `freq`
//! counts the documents whose path set contains `p` (a document's paths
//! form a set, so each document contributes each prefix once — this keeps
//! `support ∈ [0, 1]` with `support(p) = 1` iff `p` occurs in every
//! document). Because support naturally decreases with path length, the
//! miner additionally applies the *support ratio*
//! `supportRatio(p) = support(p) / support(p₀)` for `p = p₀ ∘ e`, with
//! `supportRatio(root) = 1`.
//!
//! A path is frequent iff `support ≥ supThreshold` and
//! `supportRatio ≥ ratioThreshold`. Support is anti-monotone over prefixes,
//! so once a prefix fails the support threshold none of its extensions are
//! explored — the pruning the Section 4.2 experiment quantifies, optionally
//! strengthened by concept constraints.

use crate::majority::{MajoritySchema, SchemaNode};
use crate::paths::{DocPaths, LabelPath};
use std::collections::BTreeSet;
use webre_concepts::ConstraintSet;
use webre_obs::{counter, stage, Ctx};
use webre_tree::NodeId;

/// The corpus interface the miner actually needs. A plain `[DocPaths]`
/// slice answers every query by scanning; [`crate::CorpusIndex`] answers
/// from precomputed tables so documents can be accreted one at a time
/// (the serving subsystem's live corpus). Both implementations are
/// exercised against each other by differential tests — the miner itself
/// is shared, so results are identical by construction.
pub trait CorpusView {
    /// Number of documents.
    fn doc_count(&self) -> usize;
    /// Number of documents containing `path`.
    fn frequency(&self, path: &[String]) -> usize;
    /// Child labels observed directly under `prefix`, in sorted order.
    fn child_labels(&self, prefix: &[String]) -> Vec<String>;
    /// Root labels with their document counts, in deterministic
    /// (count-descending, label-ascending) order.
    fn root_votes(&self) -> Vec<(String, usize)>;
}

impl CorpusView for [DocPaths] {
    fn doc_count(&self) -> usize {
        self.len()
    }

    fn frequency(&self, path: &[String]) -> usize {
        crate::paths::doc_frequency(self, path)
    }

    fn child_labels(&self, prefix: &[String]) -> Vec<String> {
        let mut candidates: BTreeSet<&str> = BTreeSet::new();
        for doc in self {
            for path in &doc.paths {
                if path.len() == prefix.len() + 1 && path.starts_with(prefix) {
                    candidates.insert(path.last().expect("non-empty"));
                }
            }
        }
        candidates.into_iter().map(str::to_owned).collect()
    }

    fn root_votes(&self) -> Vec<(String, usize)> {
        let mut votes: Vec<(String, usize)> = Vec::new();
        for d in self {
            match votes.iter_mut().find(|(l, _)| *l == d.root_label) {
                Some((_, n)) => *n += 1,
                None => votes.push((d.root_label.clone(), 1)),
            }
        }
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        votes
    }
}

/// Configuration and entry point for frequent-path mining.
#[derive(Clone, Debug)]
pub struct FrequentPathMiner {
    /// Minimum document support for a path to be frequent.
    pub sup_threshold: f64,
    /// Minimum support ratio relative to the parent path.
    pub ratio_threshold: f64,
    /// Optional concept constraints for pruning (Section 4.2).
    pub constraints: Option<ConstraintSet>,
    /// Optional cap on path length (nodes per path, root included).
    pub max_len: Option<usize>,
}

impl Default for FrequentPathMiner {
    fn default() -> Self {
        FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.5,
            constraints: None,
            max_len: None,
        }
    }
}

/// The result of a mining run.
#[derive(Clone, Debug)]
pub struct MiningOutcome {
    /// The discovered majority schema.
    pub schema: MajoritySchema,
    /// Candidate prefixes tested (the Section 4.2 "nodes explored" count).
    pub nodes_explored: usize,
    /// Candidates accepted as frequent.
    pub nodes_accepted: usize,
}

/// Candidate-path counters accumulated by one mining run. `explored` and
/// `accepted` surface in [`MiningOutcome`]; `pruned` (support-threshold
/// cuts, the anti-monotone short-circuit) is reported through the
/// observability context only.
#[derive(Clone, Copy, Debug, Default)]
struct MineCounters {
    explored: usize,
    accepted: usize,
    pruned: usize,
}

impl MineCounters {
    fn report(&self, ctx: Ctx<'_>) {
        ctx.count(counter::PATHS_EXPLORED, self.explored as u64);
        if self.accepted > 0 {
            ctx.count(counter::PATHS_ACCEPTED, self.accepted as u64);
        }
        if self.pruned > 0 {
            ctx.count(counter::PATHS_PRUNED, self.pruned as u64);
        }
    }
}

impl FrequentPathMiner {
    /// Mines the corpus. The root label is the most common document root.
    ///
    /// Returns `None` for an empty corpus or when the root itself fails the
    /// support threshold.
    pub fn mine(&self, corpus: &[DocPaths]) -> Option<MiningOutcome> {
        self.mine_view(corpus)
    }

    /// Mines any [`CorpusView`] — the same algorithm [`mine`](Self::mine)
    /// runs, reachable for incrementally accreted corpora
    /// ([`crate::CorpusIndex`]).
    pub fn mine_view(&self, corpus: &(impl CorpusView + ?Sized)) -> Option<MiningOutcome> {
        self.mine_view_obs(corpus, Ctx::disabled())
    }

    /// [`mine_view`](Self::mine_view) with observability: the run opens a
    /// `mine-frequent-paths` span and reports explored/accepted/pruned
    /// candidate counts. The mining result is identical.
    pub fn mine_view_obs(
        &self,
        corpus: &(impl CorpusView + ?Sized),
        ctx: Ctx<'_>,
    ) -> Option<MiningOutcome> {
        let scope = ctx.span(stage::MINE);
        let ctx = scope.ctx();
        if corpus.doc_count() == 0 {
            return None;
        }
        let root_label = corpus.root_votes()[0].0.clone();

        let mut counters = MineCounters {
            explored: 1,
            ..MineCounters::default()
        };
        let root_path = vec![root_label.clone()];
        let root_count = corpus.frequency(&root_path);
        let root_support = root_count as f64 / corpus.doc_count() as f64;
        if root_support < self.sup_threshold {
            counters.pruned += 1;
            counters.report(ctx);
            return None;
        }
        counters.accepted += 1;
        let mut schema =
            MajoritySchema::new(root_label, root_support, root_count, corpus.doc_count());
        let root = schema.tree.root();
        self.extend(
            corpus,
            &mut schema,
            root,
            &root_path,
            root_support,
            &mut counters,
        );
        counters.report(ctx);
        Some(MiningOutcome {
            schema,
            nodes_explored: counters.explored,
            nodes_accepted: counters.accepted,
        })
    }

    fn extend(
        &self,
        corpus: &(impl CorpusView + ?Sized),
        schema: &mut MajoritySchema,
        node: NodeId,
        prefix: &LabelPath,
        prefix_support: f64,
        counters: &mut MineCounters,
    ) {
        if self.max_len.is_some_and(|m| prefix.len() >= m) {
            return;
        }
        // Candidate child labels observed in documents containing the
        // prefix, in deterministic order.
        for label in corpus.child_labels(prefix) {
            counters.explored += 1;
            let mut path = prefix.clone();
            path.push(label.clone());
            if let Some(cs) = &self.constraints {
                let refs: Vec<&str> = path.iter().map(String::as_str).collect();
                if !cs.admits_path(&refs) {
                    continue;
                }
            }
            let count = corpus.frequency(&path);
            let support = count as f64 / corpus.doc_count() as f64;
            if support < self.sup_threshold {
                counters.pruned += 1;
                continue; // anti-monotone: no extension can succeed
            }
            let ratio = if prefix_support > 0.0 {
                support / prefix_support
            } else {
                0.0
            };
            if ratio < self.ratio_threshold {
                continue;
            }
            counters.accepted += 1;
            let child = schema.tree.append_child(
                node,
                SchemaNode {
                    label,
                    support,
                    doc_count: count,
                },
            );
            self.extend(corpus, schema, child, &path, support, counters);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::extract_paths;
    use webre_xml::parse_xml;

    fn corpus(xmls: &[&str]) -> Vec<DocPaths> {
        xmls.iter()
            .map(|x| extract_paths(&parse_xml(x).unwrap()))
            .collect()
    }

    fn p(parts: &[&str]) -> LabelPath {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    /// The paper's Figure 2 trees A, B, C.
    fn figure2() -> Vec<DocPaths> {
        corpus(&[
            // Tree A
            "<resume><objective/><education><degree><date/><institution/></degree>\
             <degree><date/><institution/></degree></education></resume>",
            // Tree B
            "<resume><contact/><education><degree><date/></degree>\
             <institution><degree/></institution><date/></education></resume>",
            // Tree C
            "<resume><contact/><education><institution><degree/><date/></institution>\
             <institution><degree/><date/></institution></education></resume>",
        ])
    }

    #[test]
    fn education_is_frequent_in_figure2() {
        let outcome = FrequentPathMiner {
            sup_threshold: 0.9,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&figure2())
        .unwrap();
        let schema = &outcome.schema;
        assert_eq!(schema.root_label(), "resume");
        assert!(schema.contains(&p(&["resume", "education"])));
        // objective occurs in only one of three documents.
        assert!(!schema.contains(&p(&["resume", "objective"])));
        // contact occurs in two of three.
        assert!(!schema.contains(&p(&["resume", "contact"])));
    }

    #[test]
    fn lower_threshold_admits_more_structure() {
        let outcome = FrequentPathMiner {
            sup_threshold: 0.6,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&figure2())
        .unwrap();
        let schema = &outcome.schema;
        assert!(schema.contains(&p(&["resume", "contact"])));
        assert!(schema.contains(&p(&["resume", "education", "degree"])));
        assert!(schema.contains(&p(&["resume", "education", "institution"])));
        assert!(schema.contains(&p(&["resume", "education", "degree", "date"])));
        assert!(!schema.contains(&p(&["resume", "objective"])));
    }

    #[test]
    fn support_values_are_document_fractions() {
        let outcome = FrequentPathMiner {
            sup_threshold: 0.0,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&figure2())
        .unwrap();
        let schema = &outcome.schema;
        let edu = schema.find(&p(&["resume", "education"])).unwrap();
        assert!((schema.tree.value(edu).support - 1.0).abs() < 1e-12);
        let obj = schema.find(&p(&["resume", "objective"])).unwrap();
        assert!((schema.tree.value(obj).support - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_threshold_prunes_rare_children_of_common_parents() {
        // x present everywhere; y under x in only one document of four.
        let docs = corpus(&[
            "<r><x><y/></x></r>",
            "<r><x/></r>",
            "<r><x/></r>",
            "<r><x/></r>",
        ]);
        let with_ratio = FrequentPathMiner {
            sup_threshold: 0.2,
            ratio_threshold: 0.5,
            ..Default::default()
        }
        .mine(&docs)
        .unwrap();
        assert!(!with_ratio.schema.contains(&p(&["r", "x", "y"])));
        let without_ratio = FrequentPathMiner {
            sup_threshold: 0.2,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&docs)
        .unwrap();
        assert!(without_ratio.schema.contains(&p(&["r", "x", "y"])));
    }

    #[test]
    fn support_is_antimonotone_in_schema() {
        let outcome = FrequentPathMiner {
            sup_threshold: 0.0,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&figure2())
        .unwrap();
        let schema = &outcome.schema;
        for id in schema.tree.descendants(schema.tree.root()).collect::<Vec<_>>() {
            if let Some(parent) = schema.tree.parent(id) {
                assert!(
                    schema.tree.value(id).support <= schema.tree.value(parent).support + 1e-12
                );
            }
        }
    }

    #[test]
    fn constraints_prune_candidates() {
        use webre_concepts::Constraint;
        let docs = corpus(&[
            "<r><a><a/></a></r>",
            "<r><a><a/></a></r>",
        ]);
        let unconstrained = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&docs)
        .unwrap();
        assert!(unconstrained.schema.contains(&p(&["r", "a", "a"])));
        let constrained = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.0,
            constraints: Some([Constraint::NoRepeat].into_iter().collect()),
            ..Default::default()
        }
        .mine(&docs)
        .unwrap();
        assert!(!constrained.schema.contains(&p(&["r", "a", "a"])));
        assert!(constrained.schema.contains(&p(&["r", "a"])));
    }

    #[test]
    fn max_len_caps_path_depth() {
        let docs = corpus(&["<r><a><b><c/></b></a></r>", "<r><a><b><c/></b></a></r>"]);
        let outcome = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.0,
            max_len: Some(3),
            ..Default::default()
        }
        .mine(&docs)
        .unwrap();
        assert!(outcome.schema.contains(&p(&["r", "a", "b"])));
        assert!(!outcome.schema.contains(&p(&["r", "a", "b", "c"])));
    }

    #[test]
    fn empty_corpus_mines_nothing() {
        assert!(FrequentPathMiner::default().mine(&[]).is_none());
    }

    #[test]
    fn explored_counts_accepted_and_rejected() {
        let outcome = FrequentPathMiner {
            sup_threshold: 0.9,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine(&figure2())
        .unwrap();
        // Every accepted node was explored; rejected candidates (objective,
        // contact, education's children) add to explored only.
        assert!(outcome.nodes_explored > outcome.nodes_accepted);
        assert_eq!(outcome.nodes_accepted, outcome.schema.len());
    }
}
