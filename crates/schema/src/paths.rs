//! Reduction of XML documents to label paths (Section 3.2).
//!
//! An XML document's schematic structure is an ordered tree; the paper
//! reduces it to the *set* of label paths emanating from the root ("two
//! different node paths can have the same label path", and using a set
//! keeps the discovery from being biased toward multiple occurrences of the
//! same path in a few documents). Alongside the path set, two cheap pieces
//! of bookkeeping are recorded during the same walk:
//!
//! * the **multiplicity** `⟨p, num⟩` of sibling nodes of the same type, fed
//!   to the repetition rule of Section 3.3;
//! * the **sibling position** of each node, fed to the ordering rule.

use std::collections::{HashMap, HashSet};
use webre_xml::{XmlDocument, XmlNode};

/// A label path from the document root: `["resume", "education", "degree"]`.
pub type LabelPath = Vec<String>;

/// The path-level view of one XML document.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DocPaths {
    /// The root element label.
    pub root_label: String,
    /// Every label path occurring in the document (each node contributes
    /// the path from the root to itself; the set covers all prefixes).
    pub paths: HashSet<LabelPath>,
    /// `⟨p, num⟩`: the maximum number of same-label siblings observed for
    /// the node ending each label path.
    pub multiplicity: HashMap<LabelPath, u32>,
    /// Sum and count of the 0-based sibling positions of nodes with each
    /// label path (for averaging in the ordering rule).
    pub positions: HashMap<LabelPath, (f64, u64)>,
    /// For each element (keyed by its label path), the label sequences of
    /// its element children — the raw material for discovering repetitive
    /// group patterns like `(degree, date)+` (the paper's XTRACT-style
    /// extension at the end of Section 3.3).
    pub child_sequences: HashMap<LabelPath, Vec<Vec<String>>>,
    /// Total element nodes in the document.
    pub node_count: usize,
}

impl DocPaths {
    /// Whether the document contains the given label path.
    pub fn contains(&self, path: &[String]) -> bool {
        self.paths.contains(path)
    }

    /// The recorded multiplicity for a label path (1 if never recorded
    /// higher).
    pub fn multiplicity_of(&self, path: &[String]) -> u32 {
        self.multiplicity.get(path).copied().unwrap_or(0)
    }

    /// Maximum path length (nodes on the longest root path).
    pub fn max_depth(&self) -> usize {
        self.paths.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Extracts the path-level view of a document in a single walk.
pub fn extract_paths(doc: &XmlDocument) -> DocPaths {
    let mut out = DocPaths {
        root_label: doc.root_name().to_owned(),
        ..DocPaths::default()
    };
    // Recursive walk carrying the running label path.
    let mut path: LabelPath = Vec::new();
    walk(doc, doc.root(), &mut path, &mut out);
    out
}

fn walk(
    doc: &XmlDocument,
    id: webre_tree::NodeId,
    path: &mut LabelPath,
    out: &mut DocPaths,
) {
    let XmlNode::Element { name, .. } = doc.tree.value(id) else {
        return;
    };
    out.node_count += 1;
    path.push(name.clone());
    out.paths.insert(path.clone());

    // Sibling position among element children of the parent.
    let position = doc
        .tree
        .parent(id)
        .map(|p| {
            doc.tree
                .children(p)
                .filter(|c| matches!(doc.tree.value(*c), XmlNode::Element { .. }))
                .take_while(|c| *c != id)
                .count()
        })
        .unwrap_or(0);
    let entry = out.positions.entry(path.clone()).or_insert((0.0, 0));
    entry.0 += position as f64;
    entry.1 += 1;

    // Multiplicity: same-label siblings (including this node).
    let count = doc
        .tree
        .parent(id)
        .map(|p| {
            doc.tree
                .children(p)
                .filter(|c| doc.label(*c) == name.as_str())
                .count() as u32
        })
        .unwrap_or(1);
    let slot = out.multiplicity.entry(path.clone()).or_insert(0);
    *slot = (*slot).max(count);

    // Record this node's child label sequence (elements only; non-leaf).
    let sequence: Vec<String> = doc
        .tree
        .children(id)
        .filter_map(|c| match doc.tree.value(c) {
            XmlNode::Element { name, .. } => Some(name.clone()),
            XmlNode::Text(_) => None,
        })
        .collect();
    if !sequence.is_empty() {
        out.child_sequences
            .entry(path.clone())
            .or_default()
            .push(sequence);
    }

    for child in doc.tree.children(id) {
        walk(doc, child, path, out);
    }
    path.pop();
}

/// Average 0-based sibling position of a label path across a corpus,
/// considering only documents that contain the path. `None` if no document
/// contains it.
pub fn average_position(corpus: &[DocPaths], path: &[String]) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0u64;
    for doc in corpus {
        if let Some((s, c)) = doc.positions.get(path) {
            sum += s;
            count += c;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

/// Number of documents in the corpus containing the label path.
pub fn doc_frequency(corpus: &[DocPaths], path: &[String]) -> usize {
    corpus.iter().filter(|d| d.contains(path)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_xml::parse_xml;

    fn doc(xml: &str) -> DocPaths {
        extract_paths(&parse_xml(xml).unwrap())
    }

    fn p(parts: &[&str]) -> LabelPath {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn collects_all_label_paths() {
        let d = doc("<resume><education><degree/><date/></education><contact/></resume>");
        assert_eq!(d.root_label, "resume");
        assert_eq!(d.node_count, 5);
        assert!(d.contains(&p(&["resume"])));
        assert!(d.contains(&p(&["resume", "education"])));
        assert!(d.contains(&p(&["resume", "education", "degree"])));
        assert!(d.contains(&p(&["resume", "contact"])));
        assert!(!d.contains(&p(&["resume", "degree"])));
        assert_eq!(d.paths.len(), 5);
        assert_eq!(d.max_depth(), 3);
    }

    #[test]
    fn duplicate_node_paths_collapse_to_one_label_path() {
        let d = doc("<resume><education/><education/><education/></resume>");
        assert_eq!(d.paths.len(), 2);
        assert_eq!(d.multiplicity_of(&p(&["resume", "education"])), 3);
    }

    #[test]
    fn multiplicity_takes_maximum_over_nodes() {
        let d = doc(
            "<r><e><x/></e><e><x/><x/><x/></e></r>",
        );
        assert_eq!(d.multiplicity_of(&p(&["r", "e", "x"])), 3);
        assert_eq!(d.multiplicity_of(&p(&["r", "e"])), 2);
    }

    #[test]
    fn positions_average_within_document() {
        let d = doc("<r><a/><b/><a/></r>");
        // a occurs at positions 0 and 2; b at position 1.
        let (sum, count) = d.positions[&p(&["r", "a"])];
        assert_eq!((sum, count), (2.0, 2));
        let (sum, count) = d.positions[&p(&["r", "b"])];
        assert_eq!((sum, count), (1.0, 1));
    }

    #[test]
    fn corpus_helpers() {
        let corpus = vec![
            doc("<r><a/><b/></r>"),
            doc("<r><b/><a/></r>"),
            doc("<r><a/></r>"),
        ];
        assert_eq!(doc_frequency(&corpus, &p(&["r", "a"])), 3);
        assert_eq!(doc_frequency(&corpus, &p(&["r", "b"])), 2);
        assert_eq!(doc_frequency(&corpus, &p(&["r", "z"])), 0);
        // a at positions 0, 1, 0 → average 1/3.
        let avg = average_position(&corpus, &p(&["r", "a"])).unwrap();
        assert!((avg - 1.0 / 3.0).abs() < 1e-12);
        assert!(average_position(&corpus, &p(&["r", "z"])).is_none());
    }

    #[test]
    fn child_sequences_recorded_per_node() {
        let d = doc("<r><e><a/><b/></e><e><a/><b/><a/><b/></e></r>");
        let seqs = &d.child_sequences[&p(&["r", "e"])];
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[0], ["a", "b"]);
        assert_eq!(seqs[1], ["a", "b", "a", "b"]);
        // Leaves record no sequence.
        assert!(!d.child_sequences.contains_key(&p(&["r", "e", "a"])));
    }

    #[test]
    fn text_nodes_do_not_contribute_paths() {
        let d = doc("<r>hello<a/>world</r>");
        assert_eq!(d.paths.len(), 2);
        assert_eq!(d.node_count, 2);
    }
}
