//! Incremental corpus accretion for live schema discovery.
//!
//! The batch pipeline extracts all [`DocPaths`] up front and hands the
//! miner a slice, which answers every `doc_frequency` query by scanning
//! the whole corpus — O(documents) per candidate path. A long-running
//! service accretes documents one at a time and recomputes the schema
//! repeatedly, so [`CorpusIndex`] maintains the three tables the miner's
//! [`CorpusView`] interface needs as documents arrive:
//!
//! * a document-frequency map `path → count` (each document contributes
//!   each of its label paths once — path sets, per Section 3.2);
//! * a children index `prefix → sorted child labels`, the candidate
//!   generator of the frequent-path search;
//! * root-label votes for majority-root election.
//!
//! Accreting a document is O(paths in that document); mining then runs
//! with O(1) frequency lookups instead of O(n) scans. The original
//! `DocPaths` values are retained (they carry the multiplicity, position
//! and child-sequence bookkeeping DTD derivation needs), so
//! [`CorpusIndex::docs`] slots directly into [`crate::derive_dtd`].
//!
//! The index is append-only by design: document *removal* would require
//! decrementing every table, and no current workload retires documents
//! from a live corpus. A version counter increments on every push so
//! snapshot consumers (the `/schema` endpoint) can cheaply detect
//! staleness.

use crate::frequent::CorpusView;
use crate::paths::{DocPaths, LabelPath};
use std::collections::{BTreeSet, HashMap};

/// An append-only corpus with the miner's query tables kept incrementally.
#[derive(Clone, Debug, Default)]
pub struct CorpusIndex {
    docs: Vec<DocPaths>,
    frequency: HashMap<LabelPath, usize>,
    children: HashMap<LabelPath, BTreeSet<String>>,
    root_votes: HashMap<String, usize>,
    version: u64,
}

impl CorpusIndex {
    /// An empty index.
    pub fn new() -> Self {
        CorpusIndex::default()
    }

    /// Builds an index from an existing batch of documents.
    pub fn from_docs(docs: impl IntoIterator<Item = DocPaths>) -> Self {
        let mut index = CorpusIndex::new();
        for doc in docs {
            index.push(doc);
        }
        index
    }

    /// Accretes one document, updating every table. O(paths in `doc`).
    pub fn push(&mut self, doc: DocPaths) {
        for path in &doc.paths {
            *self.frequency.entry(path.clone()).or_insert(0) += 1;
            if path.len() > 1 {
                self.children
                    .entry(path[..path.len() - 1].to_vec())
                    .or_default()
                    .insert(path.last().expect("non-empty path").clone());
            }
        }
        *self.root_votes.entry(doc.root_label.clone()).or_insert(0) += 1;
        self.docs.push(doc);
        self.version += 1;
    }

    /// The accreted documents, in arrival order (feeds
    /// [`crate::derive_dtd`]).
    pub fn docs(&self) -> &[DocPaths] {
        &self.docs
    }

    /// Number of accreted documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether no document has been accreted yet.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Monotone counter, bumped once per accreted document.
    pub fn version(&self) -> u64 {
        self.version
    }
}

impl CorpusView for CorpusIndex {
    fn doc_count(&self) -> usize {
        self.docs.len()
    }

    fn frequency(&self, path: &[String]) -> usize {
        self.frequency.get(path).copied().unwrap_or(0)
    }

    fn child_labels(&self, prefix: &[String]) -> Vec<String> {
        self.children
            .get(prefix)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn root_votes(&self) -> Vec<(String, usize)> {
        let mut votes: Vec<(String, usize)> = self
            .root_votes
            .iter()
            .map(|(l, n)| (l.clone(), *n))
            .collect();
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        votes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequent::FrequentPathMiner;
    use crate::paths::extract_paths;
    use webre_xml::parse_xml;

    fn corpus(xmls: &[&str]) -> Vec<DocPaths> {
        xmls.iter()
            .map(|x| extract_paths(&parse_xml(x).unwrap()))
            .collect()
    }

    const FIGURE2: &[&str] = &[
        "<resume><objective/><education><degree><date/><institution/></degree>\
         <degree><date/><institution/></degree></education></resume>",
        "<resume><contact/><education><degree><date/></degree>\
         <institution><degree/></institution><date/></education></resume>",
        "<resume><contact/><education><institution><degree/><date/></institution>\
         <institution><degree/><date/></institution></education></resume>",
    ];

    #[test]
    fn index_answers_match_slice_answers() {
        let docs = corpus(FIGURE2);
        let index = CorpusIndex::from_docs(docs.clone());
        assert_eq!(index.len(), 3);
        assert_eq!(index.version(), 3);
        // Every path known to any document agrees on frequency; children
        // and root votes agree wholesale.
        let mut universe: Vec<&LabelPath> =
            docs.iter().flat_map(|d| d.paths.iter()).collect();
        universe.sort();
        universe.dedup();
        for path in universe {
            assert_eq!(
                CorpusView::frequency(&index, path),
                docs[..].frequency(path),
                "frequency diverges on {path:?}"
            );
            assert_eq!(
                index.child_labels(path),
                docs[..].child_labels(path),
                "children diverge under {path:?}"
            );
        }
        assert_eq!(index.root_votes(), docs[..].root_votes());
        // And on paths no document contains.
        let missing = vec!["resume".to_owned(), "zzz".to_owned()];
        assert_eq!(CorpusView::frequency(&index, &missing), 0);
        assert!(index.child_labels(&missing).is_empty());
    }

    #[test]
    fn mining_index_equals_mining_slice() {
        let docs = corpus(FIGURE2);
        let index = CorpusIndex::from_docs(docs.clone());
        for (sup, ratio) in [(0.9, 0.0), (0.6, 0.0), (0.5, 0.5), (0.2, 0.3)] {
            let miner = FrequentPathMiner {
                sup_threshold: sup,
                ratio_threshold: ratio,
                ..Default::default()
            };
            let batch = miner.mine(&docs).unwrap();
            let incremental = miner.mine_view(&index).unwrap();
            assert_eq!(batch.schema.render(), incremental.schema.render());
            assert_eq!(batch.nodes_explored, incremental.nodes_explored);
            assert_eq!(batch.nodes_accepted, incremental.nodes_accepted);
        }
    }

    #[test]
    fn accretion_is_order_insensitive_for_mining() {
        let docs = corpus(FIGURE2);
        let forward = CorpusIndex::from_docs(docs.clone());
        let backward = CorpusIndex::from_docs(docs.into_iter().rev());
        let miner = FrequentPathMiner {
            sup_threshold: 0.6,
            ratio_threshold: 0.0,
            ..Default::default()
        };
        assert_eq!(
            miner.mine_view(&forward).unwrap().schema.render(),
            miner.mine_view(&backward).unwrap().schema.render()
        );
    }

    #[test]
    fn empty_index_mines_nothing() {
        let index = CorpusIndex::new();
        assert!(index.is_empty());
        assert!(FrequentPathMiner::default().mine_view(&index).is_none());
    }

    #[test]
    fn version_tracks_pushes() {
        let mut index = CorpusIndex::new();
        assert_eq!(index.version(), 0);
        for (i, doc) in corpus(FIGURE2).into_iter().enumerate() {
            index.push(doc);
            assert_eq!(index.version(), i as u64 + 1);
        }
    }

    /// A random label-tree corpus: documents mostly share one root so
    /// mining usually clears the support threshold.
    fn random_corpus(rng: &mut webre_substrate::rand::rngs::StdRng) -> Vec<DocPaths> {
        use webre_substrate::rand::seq::SliceRandom;
        use webre_substrate::rand::Rng;
        const LABELS: &[&str] = &["a", "b", "c", "d"];
        fn random_element(
            rng: &mut webre_substrate::rand::rngs::StdRng,
            label: &str,
            depth: u32,
        ) -> String {
            let arity = if depth == 0 { 0 } else { rng.gen_range(0..=3u32) };
            if arity == 0 {
                return format!("<{label}/>");
            }
            let children: String = (0..arity)
                .map(|_| {
                    let child = *LABELS.choose(rng).expect("non-empty");
                    random_element(rng, child, depth - 1)
                })
                .collect();
            format!("<{label}>{children}</{label}>")
        }
        let n = rng.gen_range(2..=6usize);
        (0..n)
            .map(|_| {
                let root = if rng.gen_bool(0.85) { "r" } else { "s" };
                let xml = random_element(rng, root, 3);
                extract_paths(&parse_xml(&xml).unwrap())
            })
            .collect()
    }

    #[test]
    fn incremental_mining_equals_batch_mining_on_random_corpora() {
        use webre_substrate::rand::seq::SliceRandom;
        use webre_substrate::rand::{Rng, SeedableRng};
        const SUPS: &[f64] = &[0.0, 0.25, 0.5, 0.75];
        const RATIOS: &[f64] = &[0.0, 0.3, 0.8];
        for seed in 0..40u64 {
            let mut rng = webre_substrate::rand::rngs::StdRng::seed_from_u64(seed);
            let docs = random_corpus(&mut rng);
            let index = CorpusIndex::from_docs(docs.clone());
            let miner = FrequentPathMiner {
                sup_threshold: *SUPS.choose(&mut rng).unwrap(),
                ratio_threshold: *RATIOS.choose(&mut rng).unwrap(),
                max_len: rng.gen_bool(0.25).then(|| rng.gen_range(1..=3usize)),
                constraints: None,
            };
            match (miner.mine(&docs), miner.mine_view(&index)) {
                (None, None) => {}
                (Some(batch), Some(incremental)) => {
                    assert_eq!(
                        batch.schema.render(),
                        incremental.schema.render(),
                        "seed {seed}: schemas diverge"
                    );
                    assert_eq!(batch.nodes_explored, incremental.nodes_explored, "seed {seed}");
                    assert_eq!(batch.nodes_accepted, incremental.nodes_accepted, "seed {seed}");
                }
                (batch, incremental) => panic!(
                    "seed {seed}: batch mined {} but incremental mined {}",
                    if batch.is_some() { "a schema" } else { "nothing" },
                    if incremental.is_some() { "a schema" } else { "nothing" },
                ),
            }
        }
    }

    #[test]
    fn random_accretion_order_never_changes_the_index_answers() {
        use webre_substrate::rand::seq::SliceRandom;
        use webre_substrate::rand::SeedableRng;
        for seed in 0..20u64 {
            let mut rng = webre_substrate::rand::rngs::StdRng::seed_from_u64(seed);
            let docs = random_corpus(&mut rng);
            let mut shuffled = docs.clone();
            shuffled.shuffle(&mut rng);
            let (a, b) = (
                CorpusIndex::from_docs(docs.clone()),
                CorpusIndex::from_docs(shuffled),
            );
            // Table-level equality, not just equal mining output: every
            // path in the universe answers identically.
            let mut universe: Vec<&LabelPath> =
                docs.iter().flat_map(|d| d.paths.iter()).collect();
            universe.sort();
            universe.dedup();
            for path in universe {
                assert_eq!(
                    CorpusView::frequency(&a, path),
                    CorpusView::frequency(&b, path),
                    "seed {seed}: frequency diverges on {path:?}"
                );
                assert_eq!(
                    a.child_labels(path),
                    b.child_labels(path),
                    "seed {seed}: children diverge under {path:?}"
                );
            }
            assert_eq!(a.root_votes(), b.root_votes(), "seed {seed}");
        }
    }

    #[test]
    fn minority_root_is_outvoted() {
        let docs = corpus(&["<cv><a/></cv>", "<resume><a/></resume>", "<resume><b/></resume>"]);
        let index = CorpusIndex::from_docs(docs);
        assert_eq!(index.root_votes()[0].0, "resume");
        let outcome = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine_view(&index)
        .unwrap();
        assert_eq!(outcome.schema.root_label(), "resume");
    }
}
