//! Incremental corpus accretion for live schema discovery.
//!
//! The batch pipeline extracts all [`DocPaths`] up front and hands the
//! miner a slice, which answers every `doc_frequency` query by scanning
//! the whole corpus — O(documents) per candidate path. A long-running
//! service accretes documents one at a time and recomputes the schema
//! repeatedly, so [`CorpusIndex`] maintains the three tables the miner's
//! [`CorpusView`] interface needs as documents arrive:
//!
//! * a document-frequency map `path → count` (each document contributes
//!   each of its label paths once — path sets, per Section 3.2);
//! * a children index `prefix → sorted child labels`, the candidate
//!   generator of the frequent-path search;
//! * root-label votes for majority-root election.
//!
//! Accreting a document is O(paths in that document); mining then runs
//! with O(1) frequency lookups instead of O(n) scans. The original
//! `DocPaths` values are retained (they carry the multiplicity, position
//! and child-sequence bookkeeping DTD derivation needs), so
//! [`CorpusIndex::docs`] slots directly into [`crate::derive_dtd`].
//!
//! # Shape interning
//!
//! Real corpora — and the synthetic streams the scale harness pushes —
//! repeat a modest set of structural *shapes* across millions of
//! documents. Storing a full `DocPaths` per document costs several KiB
//! each (dozens of small heap allocations), which at 10⁶ documents is
//! gigabytes of resident memory for what is mostly duplication. The
//! index therefore interns documents: distinct shapes live once in a
//! shape table and each accreted document is a 4-byte id in arrival
//! order. Equality is exact (hash buckets are confirmed with a full
//! `DocPaths` comparison), so [`CorpusIndex::docs`] yields precisely
//! the accreted multiset in arrival order — byte-identical mining and
//! DTD derivation, at ~4 bytes per duplicate document.
//!
//! The index is append-only by design: document *removal* would require
//! decrementing every table, and no current workload retires documents
//! from a live corpus. A version counter increments on every push so
//! snapshot consumers (the `/schema` endpoint) can cheaply detect
//! staleness.

use crate::frequent::CorpusView;
use crate::paths::{DocPaths, LabelPath};
use std::collections::{BTreeSet, HashMap};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV over a label path with segment separators (so `["ab","c"]` and
/// `["a","bc"]` hash apart).
fn fnv_path(path: &[String]) -> u64 {
    let mut h = FNV_OFFSET;
    for segment in path {
        h = fnv_bytes(h, segment.as_bytes());
        h ^= 0xff;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// A content hash of a document shape. Map iteration order is
/// unspecified, so per-entry hashes are combined with XOR (commutative)
/// — the result is deterministic for equal shapes. Collisions are
/// harmless: interning confirms every bucket hit with full equality.
fn shape_hash(doc: &DocPaths) -> u64 {
    let mut h = fnv_bytes(FNV_OFFSET, doc.root_label.as_bytes());
    h = h.wrapping_mul(FNV_PRIME) ^ doc.node_count as u64;
    let mut acc = 0u64;
    for path in &doc.paths {
        acc ^= fnv_path(path);
    }
    for (path, num) in &doc.multiplicity {
        acc ^= fnv_path(path).wrapping_add(u64::from(*num));
    }
    for (path, (sum, count)) in &doc.positions {
        acc ^= fnv_path(path) ^ sum.to_bits().wrapping_add(*count);
    }
    for (path, seqs) in &doc.child_sequences {
        let mut sh = fnv_path(path);
        for seq in seqs {
            for label in seq {
                sh = fnv_bytes(sh, label.as_bytes());
                sh ^= 0xfe;
                sh = sh.wrapping_mul(FNV_PRIME);
            }
            sh ^= 0xfd;
            sh = sh.wrapping_mul(FNV_PRIME);
        }
        acc ^= sh;
    }
    h ^ acc
}

/// An append-only corpus with the miner's query tables kept incrementally.
#[derive(Clone, Debug, Default)]
pub struct CorpusIndex {
    /// Distinct document shapes, in first-arrival order.
    shapes: Vec<DocPaths>,
    /// One shape id per accreted document, in arrival order.
    order: Vec<u32>,
    /// Shape-hash → candidate shape ids (collision bucket).
    intern: HashMap<u64, Vec<u32>>,
    frequency: HashMap<LabelPath, usize>,
    children: HashMap<LabelPath, BTreeSet<String>>,
    root_votes: HashMap<String, usize>,
    version: u64,
}

impl CorpusIndex {
    /// An empty index.
    pub fn new() -> Self {
        CorpusIndex::default()
    }

    /// Builds an index from an existing batch of documents.
    pub fn from_docs(docs: impl IntoIterator<Item = DocPaths>) -> Self {
        let mut index = CorpusIndex::new();
        for doc in docs {
            index.push(doc);
        }
        index
    }

    /// Accretes one document, updating every table. O(paths in `doc`).
    pub fn push(&mut self, doc: DocPaths) {
        for path in &doc.paths {
            *self.frequency.entry(path.clone()).or_insert(0) += 1;
            if path.len() > 1 {
                self.children
                    .entry(path[..path.len() - 1].to_vec())
                    .or_default()
                    .insert(path.last().expect("non-empty path").clone());
            }
        }
        *self.root_votes.entry(doc.root_label.clone()).or_insert(0) += 1;
        let id = self.intern_shape(doc);
        self.order.push(id);
        self.version += 1;
    }

    /// Returns the id of `doc`'s shape, storing it if unseen. Bucket
    /// hits are confirmed with full equality, so two documents share an
    /// id exactly when their `DocPaths` are equal.
    fn intern_shape(&mut self, doc: DocPaths) -> u32 {
        let bucket = self.intern.entry(shape_hash(&doc)).or_default();
        for &id in bucket.iter() {
            if self.shapes[id as usize] == doc {
                return id;
            }
        }
        let id = u32::try_from(self.shapes.len()).expect("shape table overflow");
        self.shapes.push(doc);
        bucket.push(id);
        id
    }

    /// The accreted documents, in arrival order with repetitions (feeds
    /// [`crate::derive_dtd`]). Duplicates yield the same interned
    /// `DocPaths` reference.
    pub fn docs(&self) -> impl Iterator<Item = &DocPaths> + '_ {
        self.order.iter().map(|&id| &self.shapes[id as usize])
    }

    /// Number of accreted documents.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether no document has been accreted yet.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of distinct document shapes interned.
    pub fn distinct_shapes(&self) -> usize {
        self.shapes.len()
    }

    /// Monotone counter, bumped once per accreted document.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Merges another index into this one: tables add pointwise, the
    /// children relation unions, and `other`'s documents append after
    /// this index's. Absorbing indexes built over disjoint document sets
    /// yields exactly the index of the concatenation.
    pub fn absorb(&mut self, other: CorpusIndex) {
        for (path, count) in other.frequency {
            *self.frequency.entry(path).or_insert(0) += count;
        }
        // webre::allow(nondet-iter): each entry extends its own BTreeSet, which sorts itself
        for (prefix, labels) in other.children {
            self.children.entry(prefix).or_default().extend(labels);
        }
        for (label, votes) in other.root_votes {
            *self.root_votes.entry(label).or_insert(0) += votes;
        }
        // Re-intern `other`'s shape table (ids are index-local), then
        // remap its arrival order onto ours.
        let remap: Vec<u32> = other
            .shapes
            .into_iter()
            .map(|shape| self.intern_shape(shape))
            .collect();
        self.order
            .extend(other.order.iter().map(|&id| remap[id as usize]));
        self.version += other.version;
    }

    /// The mergeable [`crate::PathTable`] aggregate of this index's
    /// documents.
    pub fn table(&self) -> crate::PathTable {
        crate::PathTable::from_docs(self.docs())
    }
}

impl CorpusView for CorpusIndex {
    fn doc_count(&self) -> usize {
        self.order.len()
    }

    fn frequency(&self, path: &[String]) -> usize {
        self.frequency.get(path).copied().unwrap_or(0)
    }

    fn child_labels(&self, prefix: &[String]) -> Vec<String> {
        self.children
            .get(prefix)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn root_votes(&self) -> Vec<(String, usize)> {
        let mut votes: Vec<(String, usize)> = self
            .root_votes
            .iter()
            .map(|(l, n)| (l.clone(), *n))
            .collect();
        votes.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        votes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frequent::FrequentPathMiner;
    use crate::paths::extract_paths;
    use webre_xml::parse_xml;

    fn corpus(xmls: &[&str]) -> Vec<DocPaths> {
        xmls.iter()
            .map(|x| extract_paths(&parse_xml(x).unwrap()))
            .collect()
    }

    const FIGURE2: &[&str] = &[
        "<resume><objective/><education><degree><date/><institution/></degree>\
         <degree><date/><institution/></degree></education></resume>",
        "<resume><contact/><education><degree><date/></degree>\
         <institution><degree/></institution><date/></education></resume>",
        "<resume><contact/><education><institution><degree/><date/></institution>\
         <institution><degree/><date/></institution></education></resume>",
    ];

    #[test]
    fn index_answers_match_slice_answers() {
        let docs = corpus(FIGURE2);
        let index = CorpusIndex::from_docs(docs.clone());
        assert_eq!(index.len(), 3);
        assert_eq!(index.version(), 3);
        // Every path known to any document agrees on frequency; children
        // and root votes agree wholesale.
        let mut universe: Vec<&LabelPath> =
            docs.iter().flat_map(|d| d.paths.iter()).collect();
        universe.sort();
        universe.dedup();
        for path in universe {
            assert_eq!(
                CorpusView::frequency(&index, path),
                docs[..].frequency(path),
                "frequency diverges on {path:?}"
            );
            assert_eq!(
                index.child_labels(path),
                docs[..].child_labels(path),
                "children diverge under {path:?}"
            );
        }
        assert_eq!(index.root_votes(), docs[..].root_votes());
        // And on paths no document contains.
        let missing = vec!["resume".to_owned(), "zzz".to_owned()];
        assert_eq!(CorpusView::frequency(&index, &missing), 0);
        assert!(index.child_labels(&missing).is_empty());
    }

    #[test]
    fn mining_index_equals_mining_slice() {
        let docs = corpus(FIGURE2);
        let index = CorpusIndex::from_docs(docs.clone());
        for (sup, ratio) in [(0.9, 0.0), (0.6, 0.0), (0.5, 0.5), (0.2, 0.3)] {
            let miner = FrequentPathMiner {
                sup_threshold: sup,
                ratio_threshold: ratio,
                ..Default::default()
            };
            let batch = miner.mine(&docs).unwrap();
            let incremental = miner.mine_view(&index).unwrap();
            assert_eq!(batch.schema.render(), incremental.schema.render());
            assert_eq!(batch.nodes_explored, incremental.nodes_explored);
            assert_eq!(batch.nodes_accepted, incremental.nodes_accepted);
        }
    }

    #[test]
    fn accretion_is_order_insensitive_for_mining() {
        let docs = corpus(FIGURE2);
        let forward = CorpusIndex::from_docs(docs.clone());
        let backward = CorpusIndex::from_docs(docs.into_iter().rev());
        let miner = FrequentPathMiner {
            sup_threshold: 0.6,
            ratio_threshold: 0.0,
            ..Default::default()
        };
        assert_eq!(
            miner.mine_view(&forward).unwrap().schema.render(),
            miner.mine_view(&backward).unwrap().schema.render()
        );
    }

    #[test]
    fn empty_index_mines_nothing() {
        let index = CorpusIndex::new();
        assert!(index.is_empty());
        assert!(FrequentPathMiner::default().mine_view(&index).is_none());
    }

    #[test]
    fn duplicate_shapes_are_interned_once_and_replayed_in_order() {
        let docs = corpus(FIGURE2);
        let mut index = CorpusIndex::new();
        // Push the corpus three times over: 9 documents, 3 shapes.
        for _ in 0..3 {
            for doc in docs.clone() {
                index.push(doc);
            }
        }
        assert_eq!(index.len(), 9);
        assert_eq!(index.distinct_shapes(), 3);
        // Arrival order (with repetitions) is preserved exactly.
        let replayed: Vec<&DocPaths> = index.docs().collect();
        assert_eq!(replayed.len(), 9);
        for (i, doc) in replayed.iter().enumerate() {
            assert_eq!(**doc, docs[i % 3], "doc {i} diverges");
        }
        // Interning is invisible to the aggregate view.
        assert_eq!(
            index.table(),
            crate::PathTable::from_docs(
                docs.iter().cycle().take(9).collect::<Vec<_>>().into_iter()
            )
        );
    }

    #[test]
    fn absorb_reinterns_the_other_index_shapes() {
        let docs = corpus(FIGURE2);
        let mut a = CorpusIndex::from_docs(docs.clone());
        let b = CorpusIndex::from_docs(docs.clone());
        a.absorb(b);
        assert_eq!(a.len(), 6);
        assert_eq!(a.distinct_shapes(), 3, "absorb must not duplicate shapes");
        let replayed: Vec<&DocPaths> = a.docs().collect();
        for (i, doc) in replayed.iter().enumerate() {
            assert_eq!(**doc, docs[i % 3], "doc {i} diverges");
        }
    }

    #[test]
    fn version_tracks_pushes() {
        let mut index = CorpusIndex::new();
        assert_eq!(index.version(), 0);
        for (i, doc) in corpus(FIGURE2).into_iter().enumerate() {
            index.push(doc);
            assert_eq!(index.version(), i as u64 + 1);
        }
    }

    /// A random label-tree corpus: documents mostly share one root so
    /// mining usually clears the support threshold.
    fn random_corpus(rng: &mut webre_substrate::rand::rngs::StdRng) -> Vec<DocPaths> {
        use webre_substrate::rand::seq::SliceRandom;
        use webre_substrate::rand::Rng;
        const LABELS: &[&str] = &["a", "b", "c", "d"];
        fn random_element(
            rng: &mut webre_substrate::rand::rngs::StdRng,
            label: &str,
            depth: u32,
        ) -> String {
            let arity = if depth == 0 { 0 } else { rng.gen_range(0..=3u32) };
            if arity == 0 {
                return format!("<{label}/>");
            }
            let children: String = (0..arity)
                .map(|_| {
                    let child = *LABELS.choose(rng).expect("non-empty");
                    random_element(rng, child, depth - 1)
                })
                .collect();
            format!("<{label}>{children}</{label}>")
        }
        let n = rng.gen_range(2..=6usize);
        (0..n)
            .map(|_| {
                let root = if rng.gen_bool(0.85) { "r" } else { "s" };
                let xml = random_element(rng, root, 3);
                extract_paths(&parse_xml(&xml).unwrap())
            })
            .collect()
    }

    #[test]
    fn incremental_mining_equals_batch_mining_on_random_corpora() {
        use webre_substrate::rand::seq::SliceRandom;
        use webre_substrate::rand::{Rng, SeedableRng};
        const SUPS: &[f64] = &[0.0, 0.25, 0.5, 0.75];
        const RATIOS: &[f64] = &[0.0, 0.3, 0.8];
        for seed in 0..40u64 {
            let mut rng = webre_substrate::rand::rngs::StdRng::seed_from_u64(seed);
            let docs = random_corpus(&mut rng);
            let index = CorpusIndex::from_docs(docs.clone());
            let miner = FrequentPathMiner {
                sup_threshold: *SUPS.choose(&mut rng).unwrap(),
                ratio_threshold: *RATIOS.choose(&mut rng).unwrap(),
                max_len: rng.gen_bool(0.25).then(|| rng.gen_range(1..=3usize)),
                constraints: None,
            };
            match (miner.mine(&docs), miner.mine_view(&index)) {
                (None, None) => {}
                (Some(batch), Some(incremental)) => {
                    assert_eq!(
                        batch.schema.render(),
                        incremental.schema.render(),
                        "seed {seed}: schemas diverge"
                    );
                    assert_eq!(batch.nodes_explored, incremental.nodes_explored, "seed {seed}");
                    assert_eq!(batch.nodes_accepted, incremental.nodes_accepted, "seed {seed}");
                }
                (batch, incremental) => panic!(
                    "seed {seed}: batch mined {} but incremental mined {}",
                    if batch.is_some() { "a schema" } else { "nothing" },
                    if incremental.is_some() { "a schema" } else { "nothing" },
                ),
            }
        }
    }

    #[test]
    fn random_accretion_order_never_changes_the_index_answers() {
        use webre_substrate::rand::seq::SliceRandom;
        use webre_substrate::rand::SeedableRng;
        for seed in 0..20u64 {
            let mut rng = webre_substrate::rand::rngs::StdRng::seed_from_u64(seed);
            let docs = random_corpus(&mut rng);
            let mut shuffled = docs.clone();
            shuffled.shuffle(&mut rng);
            let (a, b) = (
                CorpusIndex::from_docs(docs.clone()),
                CorpusIndex::from_docs(shuffled),
            );
            // Table-level equality, not just equal mining output: every
            // path in the universe answers identically.
            let mut universe: Vec<&LabelPath> =
                docs.iter().flat_map(|d| d.paths.iter()).collect();
            universe.sort();
            universe.dedup();
            for path in universe {
                assert_eq!(
                    CorpusView::frequency(&a, path),
                    CorpusView::frequency(&b, path),
                    "seed {seed}: frequency diverges on {path:?}"
                );
                assert_eq!(
                    a.child_labels(path),
                    b.child_labels(path),
                    "seed {seed}: children diverge under {path:?}"
                );
            }
            assert_eq!(a.root_votes(), b.root_votes(), "seed {seed}");
        }
    }

    #[test]
    fn minority_root_is_outvoted() {
        let docs = corpus(&["<cv><a/></cv>", "<resume><a/></resume>", "<resume><b/></resume>"]);
        let index = CorpusIndex::from_docs(docs);
        assert_eq!(index.root_votes()[0].0, "resume");
        let outcome = FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.0,
            ..Default::default()
        }
        .mine_view(&index)
        .unwrap();
        assert_eq!(outcome.schema.root_label(), "resume");
    }
}
