//! JSON codecs for [`DocPaths`] and [`PathTable`] — the WAL record
//! payload and the `/corpus/table` wire format.
//!
//! Both codecs are **canonical**: entries are emitted in sorted path
//! order regardless of hash-map iteration order, so serializing the same
//! value always yields the same bytes (WAL replay and cross-process
//! table exchange both compare outputs byte-for-byte downstream).
//! Numbers survive exactly — position sums are integral `f64`s within
//! the safe range, and the substrate serializer prints shortest
//! round-trip forms.
//!
//! The [`DocPaths`] codec is lossless for any value produced by
//! [`crate::extract_paths`], where the multiplicity and position maps
//! are keyed exactly by the recorded path set and child sequences only
//! exist for non-leaf paths — the invariant the decoder rebuilds from.

use crate::paths::DocPaths;
use crate::sharded::PathTable;
use webre_substrate::json::{FromJson, Json, JsonError, ToJson};

fn err<T>(message: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(message.into()))
}

fn path_json(path: &[String]) -> Json {
    Json::Arr(path.iter().map(|l| Json::Str(l.clone())).collect())
}

fn path_from(value: &Json) -> Result<Vec<String>, JsonError> {
    let Some(items) = value.as_arr() else {
        return err(format!("path must be an array, got {value}"));
    };
    let mut path = Vec::with_capacity(items.len());
    for item in items {
        match item.as_str() {
            Some(label) => path.push(label.to_owned()),
            None => return err(format!("path label must be a string, got {item}")),
        }
    }
    if path.is_empty() {
        return err("path must be non-empty");
    }
    Ok(path)
}

fn get_num(obj: &Json, key: &str) -> Result<f64, JsonError> {
    obj.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| JsonError(format!("missing numeric field {key:?} in {obj}")))
}

impl ToJson for DocPaths {
    fn to_json(&self) -> Json {
        let mut paths: Vec<&Vec<String>> = self.paths.iter().collect();
        paths.sort();
        let entries: Vec<Json> = paths
            .into_iter()
            .map(|path| {
                let (pos_sum, pos_count) =
                    self.positions.get(path).copied().unwrap_or((0.0, 0));
                let mut fields = vec![
                    ("p".to_owned(), path_json(path)),
                    (
                        "m".to_owned(),
                        Json::Num(f64::from(self.multiplicity.get(path).copied().unwrap_or(0))),
                    ),
                    ("s".to_owned(), Json::Num(pos_sum)),
                    ("n".to_owned(), Json::Num(pos_count as f64)),
                ];
                if let Some(seqs) = self.child_sequences.get(path) {
                    fields.push((
                        "q".to_owned(),
                        Json::Arr(seqs.iter().map(|seq| path_json(seq)).collect()),
                    ));
                }
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("root".to_owned(), Json::Str(self.root_label.clone())),
            ("nodes".to_owned(), Json::Num(self.node_count as f64)),
            ("paths".to_owned(), Json::Arr(entries)),
        ])
    }
}

impl FromJson for DocPaths {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let Some(root) = value.get("root").and_then(Json::as_str) else {
            return err(format!("document record needs a \"root\" string: {value}"));
        };
        let mut doc = DocPaths {
            root_label: root.to_owned(),
            node_count: get_num(value, "nodes")? as usize,
            ..DocPaths::default()
        };
        let Some(entries) = value.get("paths").and_then(Json::as_arr) else {
            return err(format!("document record needs a \"paths\" array: {value}"));
        };
        for entry in entries {
            let Some(path_value) = entry.get("p") else {
                return err(format!("path entry needs a \"p\" field: {entry}"));
            };
            let path = path_from(path_value)?;
            let mult = get_num(entry, "m")? as u32;
            let pos_sum = get_num(entry, "s")?;
            let pos_count = get_num(entry, "n")? as u64;
            if mult > 0 {
                doc.multiplicity.insert(path.clone(), mult);
            }
            if pos_count > 0 {
                doc.positions.insert(path.clone(), (pos_sum, pos_count));
            }
            if let Some(seqs) = entry.get("q").and_then(Json::as_arr) {
                let mut sequences = Vec::with_capacity(seqs.len());
                for seq in seqs {
                    sequences.push(path_from(seq)?);
                }
                doc.child_sequences.insert(path.clone(), sequences);
            }
            doc.paths.insert(path);
        }
        Ok(doc)
    }
}

impl ToJson for PathTable {
    fn to_json(&self) -> Json {
        // frequency and positions are BTreeMaps over the same key set
        // (every supported path has a position entry, possibly (0, 0) is
        // impossible via extraction but tolerated); iterate frequency —
        // already in canonical sorted order.
        let entries: Vec<Json> = self
            .frequency
            .iter()
            .map(|(path, count)| {
                let (pos_sum, pos_count) =
                    self.positions.get(path).copied().unwrap_or((0.0, 0));
                Json::Obj(vec![
                    ("p".to_owned(), path_json(path)),
                    ("f".to_owned(), Json::Num(*count as f64)),
                    ("s".to_owned(), Json::Num(pos_sum)),
                    ("n".to_owned(), Json::Num(pos_count as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("docs".to_owned(), Json::Num(self.doc_count as f64)),
            ("paths".to_owned(), Json::Arr(entries)),
        ])
    }
}

impl FromJson for PathTable {
    fn from_json(value: &Json) -> Result<Self, JsonError> {
        let mut table = PathTable {
            doc_count: get_num(value, "docs")? as usize,
            ..PathTable::default()
        };
        let Some(entries) = value.get("paths").and_then(Json::as_arr) else {
            return err(format!("table record needs a \"paths\" array: {value}"));
        };
        for entry in entries {
            let Some(path_value) = entry.get("p") else {
                return err(format!("table entry needs a \"p\" field: {entry}"));
            };
            let path = path_from(path_value)?;
            let support = get_num(entry, "f")? as usize;
            let pos_sum = get_num(entry, "s")?;
            let pos_count = get_num(entry, "n")? as u64;
            table.frequency.insert(path.clone(), support);
            if pos_count > 0 {
                table.positions.insert(path, (pos_sum, pos_count));
            }
        }
        Ok(table)
    }
}

/// Serializes a document to its canonical WAL payload bytes.
pub fn doc_to_record(doc: &DocPaths) -> Vec<u8> {
    doc.to_json().to_string().into_bytes()
}

/// Parses a WAL payload back into a document.
pub fn doc_from_record(bytes: &[u8]) -> Result<DocPaths, JsonError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| JsonError(format!("record is not UTF-8: {e}")))?;
    let value = Json::parse(text)?;
    DocPaths::from_json(&value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::extract_paths;
    use webre_substrate::rand::rngs::StdRng;
    use webre_substrate::rand::seq::SliceRandom;
    use webre_substrate::rand::{Rng, SeedableRng};
    use webre_xml::parse_xml;

    fn doc(xml: &str) -> DocPaths {
        extract_paths(&parse_xml(xml).unwrap())
    }

    #[test]
    fn doc_round_trips_exactly() {
        let original = doc(
            "<resume><education><degree><date/></degree><degree><date/></degree>\
             </education><contact/></resume>",
        );
        let decoded = doc_from_record(&doc_to_record(&original)).unwrap();
        assert_eq!(original, decoded);
    }

    #[test]
    fn doc_serialization_is_canonical() {
        // Two extractions of the same document serialize identically even
        // though HashSet/HashMap iteration order may differ between them.
        let xml = "<r><a><x/><y/></a><b/><a><x/></a></r>";
        let a = doc_to_record(&doc(xml));
        let b = doc_to_record(&doc(xml));
        assert_eq!(a, b);
    }

    #[test]
    fn random_docs_round_trip() {
        const LABELS: &[&str] = &["a", "b", "c", "d", "e"];
        fn element(rng: &mut StdRng, label: &str, depth: u32) -> String {
            let arity = if depth == 0 { 0 } else { rng.gen_range(0..=4u32) };
            if arity == 0 {
                return format!("<{label}/>");
            }
            let children: String = (0..arity)
                .map(|_| {
                    let label = *LABELS.choose(rng).unwrap();
                    element(rng, label, depth - 1)
                })
                .collect();
            format!("<{label}>{children}</{label}>")
        }
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let xml = element(&mut rng, "root", 4);
            let original = doc(&xml);
            let record = doc_to_record(&original);
            let decoded = doc_from_record(&record).unwrap();
            assert_eq!(original, decoded, "seed {seed}: round trip diverged");
            // Canonical: re-encoding the decoded value is byte-identical.
            assert_eq!(record, doc_to_record(&decoded), "seed {seed}");
        }
    }

    #[test]
    fn table_round_trips_and_stays_canonical() {
        let docs: Vec<DocPaths> = [
            "<r><a/><b/><a/></r>",
            "<r><b/><c><a/></c></r>",
            "<s><a/></s>",
        ]
        .iter()
        .map(|x| doc(x))
        .collect();
        let table = PathTable::from_docs(&docs);
        let json = table.to_json().to_string();
        let decoded = PathTable::from_json(&Json::parse(&json).unwrap()).unwrap();
        assert_eq!(table, decoded);
        assert_eq!(json, decoded.to_json().to_string());
    }

    #[test]
    fn malformed_records_are_errors_not_panics() {
        for bad in [
            &b"\xff\xfe"[..],
            b"",
            b"42",
            b"{}",
            b"{\"root\":\"r\"}",
            b"{\"root\":\"r\",\"nodes\":1,\"paths\":[{\"m\":1}]}",
            b"{\"root\":\"r\",\"nodes\":1,\"paths\":[{\"p\":[],\"m\":1,\"s\":0,\"n\":1}]}",
            b"{\"root\":\"r\",\"nodes\":1,\"paths\":[{\"p\":[3],\"m\":1,\"s\":0,\"n\":1}]}",
        ] {
            assert!(doc_from_record(bad).is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }
}
