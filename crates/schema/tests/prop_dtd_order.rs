//! Property tests for the DTD ordering rule (Section 3.3): the children of
//! every derived content model form a *total, deterministic* order, the
//! order agrees with the average-position rule, and the derivation is
//! stable under permutation of the document corpus.

use webre_substrate::prop::{self, Gen};
use webre_substrate::rand::seq::SliceRandom;
use webre_substrate::{prop_assert, prop_assert_eq};
use webre_schema::{
    average_position, derive_dtd, extract_paths, DocPaths, DtdConfig, FrequentPathMiner,
    MajoritySchema,
};
use webre_xml::{ContentExpr, XmlDocument, XmlNode};

const LABELS: &[&str] = &["a", "b", "c", "d", "e"];

/// Random XML corpus over a tiny label alphabet with a shared root.
fn gen_corpus(g: &mut Gen) -> Vec<DocPaths> {
    let n = g.int(2..7usize);
    (0..n)
        .map(|_| {
            let mut doc = XmlDocument::new("r");
            let root = doc.root();
            grow(g, &mut doc, root, 0);
            extract_paths(&doc)
        })
        .collect()
}

fn grow(g: &mut Gen, doc: &mut XmlDocument, parent: webre_tree::NodeId, depth: u32) {
    if depth >= 3 {
        return;
    }
    for _ in 0..g.int(0..5u32) {
        let label = *g.pick(LABELS);
        let child = doc.tree.append_child(parent, XmlNode::element(label));
        grow(g, doc, child, depth + 1);
    }
}

fn mine(corpus: &[DocPaths]) -> Option<MajoritySchema> {
    FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: None,
        max_len: None,
    }
    .mine(corpus)
    .map(|o| o.schema)
}

/// The child element names of a derived content model, in declaration
/// order, unwrapped from `+`/`?` decorations.
fn child_names(content: &ContentExpr) -> Vec<String> {
    let ContentExpr::Seq(items) = content else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|item| {
            let inner = match item {
                ContentExpr::Plus(e) | ContentExpr::Opt(e) => e,
                other => other,
            };
            match inner {
                ContentExpr::Name(n) => Some(n.clone()),
                _ => None,
            }
        })
        .collect()
}

/// The union of child labels over every schema context of `label`,
/// together with the number of contexts (for single-context detection).
fn schema_children(schema: &MajoritySchema, label: &str) -> (Vec<String>, usize) {
    let mut children: Vec<String> = Vec::new();
    let mut contexts = 0usize;
    for id in schema.tree.descendants(schema.tree.root()) {
        if schema.tree.value(id).label != label {
            continue;
        }
        contexts += 1;
        for c in schema.tree.children(id) {
            let l = schema.tree.value(c).label.clone();
            if !children.contains(&l) {
                children.push(l);
            }
        }
    }
    (children, contexts)
}

#[test]
fn ordering_is_total_over_schema_children() {
    prop::check("ordering_is_total_over_schema_children", |g| {
        let corpus = gen_corpus(g);
        let Some(schema) = mine(&corpus) else {
            return Ok(());
        };
        let dtd = derive_dtd(&schema, &corpus, &DtdConfig::default());
        for (label, decl) in &dtd.elements {
            let content = &decl.content;
            let declared = child_names(content);
            let (expected, _) = schema_children(&schema, label);
            // Total: every schema child appears exactly once, nothing else.
            let mut sorted_declared = declared.clone();
            sorted_declared.sort();
            sorted_declared.dedup();
            prop_assert_eq!(
                sorted_declared.len(),
                declared.len(),
                "duplicate child in <!ELEMENT {}>: {:?}",
                label,
                declared
            );
            let mut expected_sorted = expected.clone();
            expected_sorted.sort();
            let mut declared_sorted = declared.clone();
            declared_sorted.sort();
            prop_assert_eq!(
                declared_sorted,
                expected_sorted,
                "children of <!ELEMENT {}> differ from schema",
                label
            );
        }
        Ok(())
    });
}

#[test]
fn ordering_is_deterministic() {
    prop::check("ordering_is_deterministic", |g| {
        let corpus = gen_corpus(g);
        let Some(schema) = mine(&corpus) else {
            return Ok(());
        };
        let a = derive_dtd(&schema, &corpus, &DtdConfig::default());
        let b = derive_dtd(&schema, &corpus, &DtdConfig::default());
        prop_assert_eq!(
            a.to_dtd_string(),
            b.to_dtd_string(),
            "derive_dtd is not deterministic"
        );
        prop_assert!(a == b, "Dtd equality disagrees with rendering");
        Ok(())
    });
}

#[test]
fn single_context_order_follows_average_position() {
    prop::check("single_context_order_follows_average_position", |g| {
        let corpus = gen_corpus(g);
        let Some(schema) = mine(&corpus) else {
            return Ok(());
        };
        let dtd = derive_dtd(&schema, &corpus, &DtdConfig::default());
        for (label, decl) in &dtd.elements {
            let content = &decl.content;
            let (children, contexts) = schema_children(&schema, label);
            // With several homonym contexts the rule aggregates across
            // them; the independent re-computation below only covers the
            // single-context case.
            if contexts != 1 || children.len() < 2 {
                continue;
            }
            let node = schema
                .tree
                .descendants(schema.tree.root())
                .find(|id| schema.tree.value(*id).label == *label)
                .expect("context exists");
            let prefix = schema.path_of(node);
            let mut expected: Vec<(f64, String)> = children
                .iter()
                .map(|c| {
                    let mut path = prefix.clone();
                    path.push(c.clone());
                    (average_position(&corpus, &path).unwrap_or(f64::MAX), c.clone())
                })
                .collect();
            expected.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            let expected: Vec<String> = expected.into_iter().map(|(_, c)| c).collect();
            prop_assert_eq!(
                child_names(content),
                expected,
                "<!ELEMENT {}> violates the average-position order",
                label
            );
        }
        Ok(())
    });
}

#[test]
fn derivation_is_stable_under_document_permutation() {
    prop::check("derivation_is_stable_under_document_permutation", |g| {
        let corpus = gen_corpus(g);
        let mut shuffled = corpus.clone();
        shuffled.shuffle(g.rng());
        match (mine(&corpus), mine(&shuffled)) {
            (None, None) => Ok(()),
            (Some(a), Some(b)) => {
                let dtd_a = derive_dtd(&a, &corpus, &DtdConfig::default());
                let dtd_b = derive_dtd(&b, &shuffled, &DtdConfig::default());
                prop_assert_eq!(
                    dtd_a.to_dtd_string(),
                    dtd_b.to_dtd_string(),
                    "document order changed the derived DTD"
                );
                Ok(())
            }
            (a, b) => Err(format!(
                "document order changed mineability: original={} shuffled={}",
                a.is_some(),
                b.is_some()
            )),
        }
    });
}
