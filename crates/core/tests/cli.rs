//! Integration tests for the `webre` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_webre"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webre-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn help_succeeds() {
    let out = bin().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("webre convert"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn generate_convert_discover_run_validate_round_trip() {
    let dir = temp_dir("roundtrip");
    let corpus = dir.join("corpus");
    let mapped = dir.join("mapped");

    // generate
    let out = bin()
        .args(["generate", "--count", "8", "--seed", "5", "--out-dir"])
        .arg(&corpus)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let html0 = corpus.join("resume0000.html");
    assert!(html0.exists());
    assert!(corpus.join("resume0007.truth.xml").exists());

    // convert one document
    let out = bin().arg("convert").arg(&html0).output().expect("spawn");
    assert!(out.status.success());
    let xml = String::from_utf8_lossy(&out.stdout);
    assert!(xml.starts_with("<resume"), "{xml}");

    // discover over the corpus
    let htmls: Vec<PathBuf> = (0..8).map(|i| corpus.join(format!("resume{i:04}.html"))).collect();
    let out = bin().arg("discover").args(&htmls).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("majority schema"), "{text}");
    assert!(text.contains("<!ELEMENT resume"), "{text}");

    // full run with mapping
    let out = bin()
        .arg("run")
        .args(&htmls)
        .arg("--out-dir")
        .arg(&mapped)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(mapped.join("schema.dtd").exists());
    assert!(mapped.join("resume0000.xml").exists());

    // validate the mapped output against the written DTD
    let out = bin()
        .arg("validate")
        .arg(mapped.join("resume0000.xml"))
        .arg("--dtd")
        .arg(mapped.join("schema.dtd"))
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("conforms"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn validate_fails_on_nonconforming_document() {
    let dir = temp_dir("nonconforming");
    std::fs::write(dir.join("doc.xml"), "<resume><bogus/></resume>").unwrap();
    std::fs::write(
        dir.join("schema.dtd"),
        "<!ELEMENT resume ((#PCDATA), contact)>\n<!ELEMENT contact (#PCDATA)>\n",
    )
    .unwrap();
    let out = bin()
        .arg("validate")
        .arg(dir.join("doc.xml"))
        .arg("--dtd")
        .arg(dir.join("schema.dtd"))
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("violations"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn convert_with_custom_domain_json() {
    let dir = temp_dir("domain");
    std::fs::write(
        dir.join("domain.json"),
        r#"{
          "concepts": [
            { "name": "listing", "role": "Title", "instances": ["for sale"] },
            { "name": "price",   "role": "Content", "instances": ["price", "asking"] }
          ]
        }"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("page.html"),
        "<h2>For Sale</h2><p>Asking price: 1200</p>",
    )
    .unwrap();
    let out = bin()
        .arg("convert")
        .arg(dir.join("page.html"))
        .arg("--domain")
        .arg(dir.join("domain.json"))
        .arg("--root")
        .arg("ad")
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let xml = String::from_utf8_lossy(&out.stdout);
    assert!(xml.starts_with("<ad"), "{xml}");
    assert!(xml.contains("listing"), "{xml}");
    assert!(xml.contains("price"), "{xml}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_passes_and_is_deterministic() {
    let run = || {
        bin()
            .args(["check", "--iters", "10", "--seed", "1"])
            .output()
            .expect("spawn")
    };
    let (a, b) = (run(), run());
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stdout));
    assert_eq!(a.stdout, b.stdout, "check output is not deterministic");
    let text = String::from_utf8_lossy(&a.stdout);
    // All five differential oracles, all three metamorphic invariants and
    // the fuzzer ran.
    for oracle in [
        "fixpoint",
        "tidy-idempotence",
        "parallel-convert",
        "brzozowski-vs-backtracking",
        "miner-vs-bruteforce",
        "remove-document",
        "duplicate-corpus",
        "permute-order",
        "fuzz-totality",
    ] {
        assert!(text.contains(oracle), "missing oracle {oracle} in:\n{text}");
    }
    assert!(text.contains("all 9 oracles passed"), "{text}");
}

#[test]
fn check_only_restricts_to_one_oracle() {
    let out = bin()
        .args(["check", "--only", "fixpoint", "--iters", "5", "--seed", "3"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fixpoint"), "{text}");
    assert!(!text.contains("miner-vs-bruteforce"), "{text}");
}

#[test]
fn check_failing_oracle_exits_nonzero_with_repro_line() {
    // The hidden self-test oracle fails unconditionally; it exists to pin
    // down the failure path: non-zero exit plus a reproduction command
    // carrying the exact case seed.
    let out = bin()
        .args(["check", "--only", "self-test", "--seed", "42", "--iters", "7"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "{text}");
    assert!(
        text.contains("reproduce: webre check --only self-test --seed 42 --iters 1"),
        "missing repro line in:\n{text}"
    );
}

#[test]
fn check_unknown_oracle_is_an_error() {
    let out = bin()
        .args(["check", "--only", "no-such-oracle"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("known oracles"), "{text}");
}

#[test]
fn missing_file_reports_error() {
    let out = bin()
        .args(["convert", "/nonexistent/nope.html"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
