//! Integration tests for the `webre` command-line tool.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_webre"))
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("webre-cli-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = bin().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn help_succeeds() {
    let out = bin().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("webre convert"));
}

#[test]
fn unknown_command_fails() {
    let out = bin().arg("frobnicate").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn usage_lists_every_subcommand() {
    let out = bin().arg("--help").output().expect("spawn");
    assert!(out.status.success());
    let usage = String::from_utf8_lossy(&out.stdout).into_owned();
    for subcommand in [
        "convert", "discover", "run", "map", "serve", "load", "stats", "validate", "generate",
        "check", "lint",
    ] {
        assert!(
            usage.contains(&format!("webre {subcommand}")),
            "usage is missing subcommand {subcommand:?}:\n{usage}"
        );
    }
    assert!(usage.contains("--version"), "{usage}");
}

#[test]
fn version_flag_prints_package_version() {
    for flag in ["--version", "-V"] {
        let out = bin().arg(flag).output().expect("spawn");
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout).into_owned();
        assert_eq!(text.trim(), format!("webre {}", env!("CARGO_PKG_VERSION")));
    }
}

#[test]
fn unknown_flag_is_a_usage_error_on_every_subcommand() {
    for subcommand in [
        "convert", "discover", "run", "map", "serve", "load", "stats", "validate", "generate",
        "check", "lint",
    ] {
        let out = bin()
            .args([subcommand, "--no-such-flag"])
            .output()
            .expect("spawn");
        assert_eq!(
            out.status.code(),
            Some(2),
            "{subcommand} accepted an unknown flag"
        );
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        assert!(
            stderr.contains("unknown flag --no-such-flag"),
            "{subcommand}: {stderr}"
        );
        assert!(stderr.contains("usage"), "{subcommand}: {stderr}");
    }
}

#[test]
fn run_skips_unreadable_inputs_and_keeps_going() {
    let dir = temp_dir("skip-unreadable");
    let corpus = dir.join("corpus");
    let mapped = dir.join("mapped");
    let out = bin()
        .args(["generate", "--count", "6", "--seed", "5", "--out-dir"])
        .arg(&corpus)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let mut inputs: Vec<PathBuf> = (0..6)
        .map(|i| corpus.join(format!("resume{i:04}.html")))
        .collect();
    inputs.insert(3, corpus.join("missing.html")); // does not exist
    let out = bin()
        .arg("run")
        .args(&inputs)
        .arg("--out-dir")
        .arg(&mapped)
        .output()
        .expect("spawn");
    // The batch completed (every readable document mapped, DTD written)
    // but the exit code still reports the skipped file.
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("missing.html"), "{stderr}");
    assert!(mapped.join("schema.dtd").exists());
    for i in 0..6 {
        assert!(mapped.join(format!("resume{i:04}.xml")).exists(), "doc {i}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn discover_reports_each_unreadable_input_with_its_path() {
    let dir = temp_dir("discover-unreadable");
    let corpus = dir.join("corpus");
    let out = bin()
        .args(["generate", "--count", "4", "--seed", "9", "--out-dir"])
        .arg(&corpus)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let mut inputs: Vec<PathBuf> = (0..4)
        .map(|i| corpus.join(format!("resume{i:04}.html")))
        .collect();
    inputs.push(corpus.join("gone-a.html"));
    inputs.push(corpus.join("gone-b.html"));
    let out = bin().arg("discover").args(&inputs).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("gone-a.html"), "{stderr}");
    assert!(stderr.contains("gone-b.html"), "{stderr}");
    // Discovery still ran over the readable majority.
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("majority schema"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn map_without_inputs_is_a_usage_error() {
    let out = bin().arg("map").output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("at least one input"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn map_reports_a_tier_per_input_and_writes_mapped_xml() {
    let dir = temp_dir("map-tiers");
    let corpus = dir.join("corpus");
    let mapped = dir.join("mapped");
    let out = bin()
        .args(["generate", "--count", "6", "--seed", "17", "--out-dir"])
        .arg(&corpus)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let htmls: Vec<PathBuf> = (0..6)
        .map(|i| corpus.join(format!("resume{i:04}.html")))
        .collect();
    let out = bin()
        .arg("map")
        .args(&htmls)
        .arg("--out-dir")
        .arg(&mapped)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    // One summary line per input, each naming its tier.
    assert_eq!(stdout.lines().count(), 6, "{stdout}");
    for line in stdout.lines() {
        assert!(line.contains("tier="), "{line}");
        assert!(line.contains("lower-bound="), "{line}");
    }
    for i in 0..6 {
        assert!(mapped.join(format!("resume{i:04}.xml")).exists(), "doc {i}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn map_json_emits_one_parseable_object_per_input() {
    let dir = temp_dir("map-json");
    let corpus = dir.join("corpus");
    let out = bin()
        .args(["generate", "--count", "4", "--seed", "23", "--out-dir"])
        .arg(&corpus)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let htmls: Vec<PathBuf> = (0..4)
        .map(|i| corpus.join(format!("resume{i:04}.html")))
        .collect();
    let out = bin().arg("map").args(&htmls).arg("--json").output().expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 4, "{stdout}");
    for line in lines {
        let json = webre_substrate::json::Json::parse(line).expect("line parses as JSON");
        let tier = json
            .get("tier")
            .and_then(webre_substrate::json::Json::as_str)
            .expect("tier field");
        assert!(
            ["conformant", "rejected", "exact"].contains(&tier),
            "unexpected tier {tier:?}"
        );
        assert!(json.get("lower_bound").is_some(), "{line}");
        assert!(json.get("edits").is_some(), "{line}");
    }
    // --no-filter must not change a single byte of the output.
    let out2 = bin()
        .arg("map")
        .args(&htmls)
        .args(["--json", "--no-filter"])
        .output()
        .expect("spawn");
    assert!(out2.status.success());
    assert_eq!(out.stdout, out2.stdout, "filter changed the mapping output");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn map_skips_unreadable_inputs_and_reports_each_path() {
    let dir = temp_dir("map-unreadable");
    let corpus = dir.join("corpus");
    let out = bin()
        .args(["generate", "--count", "4", "--seed", "29", "--out-dir"])
        .arg(&corpus)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let mut inputs: Vec<PathBuf> = (0..4)
        .map(|i| corpus.join(format!("resume{i:04}.html")))
        .collect();
    inputs.insert(2, corpus.join("vanished.html")); // does not exist
    let out = bin().arg("map").args(&inputs).output().expect("spawn");
    // The batch completed over the readable majority; the exit code
    // still reports the skipped file.
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(stderr.contains("vanished.html"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert_eq!(stdout.lines().count(), 4, "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn map_budget_flag_rejects_bad_values() {
    let out = bin()
        .args(["map", "x.html", "--budget", "many"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--budget"), "stderr");
}

#[test]
fn serve_subcommand_answers_http_and_drains_on_shutdown() {
    use std::io::{BufRead, BufReader, Read as _, Write as _};
    use std::net::TcpStream;

    let mut child = bin()
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    // "serving on http://127.0.0.1:PORT (...)"
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("address in banner")
        .to_owned();

    let request = |method: &str, path: &str, body: &str| -> String {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: x\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    };

    let health = request("GET", "/healthz", "");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    let converted = request("POST", "/convert", "<h2>Skills</h2><p>Rust</p>");
    assert!(converted.starts_with("HTTP/1.1 200"), "{converted}");
    assert!(converted.contains("<resume"), "{converted}");
    let drain = request("POST", "/shutdown", "");
    assert!(drain.starts_with("HTTP/1.1 200"), "{drain}");

    let status = child.wait().expect("serve exit");
    assert!(status.success(), "serve exited {status:?}");
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("drained"), "{rest}");
}

#[test]
fn generate_convert_discover_run_validate_round_trip() {
    let dir = temp_dir("roundtrip");
    let corpus = dir.join("corpus");
    let mapped = dir.join("mapped");

    // generate
    let out = bin()
        .args(["generate", "--count", "8", "--seed", "5", "--out-dir"])
        .arg(&corpus)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let html0 = corpus.join("resume0000.html");
    assert!(html0.exists());
    assert!(corpus.join("resume0007.truth.xml").exists());

    // convert one document
    let out = bin().arg("convert").arg(&html0).output().expect("spawn");
    assert!(out.status.success());
    let xml = String::from_utf8_lossy(&out.stdout);
    assert!(xml.starts_with("<resume"), "{xml}");

    // discover over the corpus
    let htmls: Vec<PathBuf> = (0..8).map(|i| corpus.join(format!("resume{i:04}.html"))).collect();
    let out = bin().arg("discover").args(&htmls).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("majority schema"), "{text}");
    assert!(text.contains("<!ELEMENT resume"), "{text}");

    // full run with mapping
    let out = bin()
        .arg("run")
        .args(&htmls)
        .arg("--out-dir")
        .arg(&mapped)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(mapped.join("schema.dtd").exists());
    assert!(mapped.join("resume0000.xml").exists());

    // validate the mapped output against the written DTD
    let out = bin()
        .arg("validate")
        .arg(mapped.join("resume0000.xml"))
        .arg("--dtd")
        .arg(mapped.join("schema.dtd"))
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("conforms"));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn run_trace_out_emits_chrome_trace_and_stats_summarizes_it() {
    let dir = temp_dir("trace-out");
    let corpus = dir.join("corpus");
    let mapped = dir.join("mapped");
    let trace = dir.join("trace.json");
    let out = bin()
        .args(["generate", "--count", "4", "--seed", "11", "--out-dir"])
        .arg(&corpus)
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let htmls: Vec<PathBuf> = (0..4).map(|i| corpus.join(format!("resume{i:04}.html"))).collect();
    let out = bin()
        .arg("run")
        .args(&htmls)
        .arg("--out-dir")
        .arg(&mapped)
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // Mapped output is unaffected by tracing; the trace file is valid
    // chrome://tracing JSON naming every restructuring rule plus the
    // mining and DTD stages.
    assert!(mapped.join("schema.dtd").exists());
    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let doc = webre_substrate::json::Json::parse(&text).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(webre_substrate::json::Json::as_arr)
        .expect("traceEvents array");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(webre_substrate::json::Json::as_str))
        .collect();
    for stage in [
        "tokenization-rule",
        "concept-instance-rule",
        "grouping-rule",
        "consolidation-rule",
        "mine-frequent-paths",
        "derive-dtd",
        "map-to-dtd",
    ] {
        assert!(names.contains(&stage), "trace missing stage {stage}: {names:?}");
    }
    // `webre stats` summarizes the file into a per-stage table.
    let out = bin().arg("stats").arg(&trace).output().expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let summary = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(summary.contains("stage"), "{summary}");
    assert!(summary.contains("mine-frequent-paths"), "{summary}");
    assert!(summary.contains("tokens_split"), "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn validate_fails_on_nonconforming_document() {
    let dir = temp_dir("nonconforming");
    std::fs::write(dir.join("doc.xml"), "<resume><bogus/></resume>").unwrap();
    std::fs::write(
        dir.join("schema.dtd"),
        "<!ELEMENT resume ((#PCDATA), contact)>\n<!ELEMENT contact (#PCDATA)>\n",
    )
    .unwrap();
    let out = bin()
        .arg("validate")
        .arg(dir.join("doc.xml"))
        .arg("--dtd")
        .arg(dir.join("schema.dtd"))
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("violations"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn convert_with_custom_domain_json() {
    let dir = temp_dir("domain");
    std::fs::write(
        dir.join("domain.json"),
        r#"{
          "concepts": [
            { "name": "listing", "role": "Title", "instances": ["for sale"] },
            { "name": "price",   "role": "Content", "instances": ["price", "asking"] }
          ]
        }"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("page.html"),
        "<h2>For Sale</h2><p>Asking price: 1200</p>",
    )
    .unwrap();
    let out = bin()
        .arg("convert")
        .arg(dir.join("page.html"))
        .arg("--domain")
        .arg(dir.join("domain.json"))
        .arg("--root")
        .arg("ad")
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let xml = String::from_utf8_lossy(&out.stdout);
    assert!(xml.starts_with("<ad"), "{xml}");
    assert!(xml.contains("listing"), "{xml}");
    assert!(xml.contains("price"), "{xml}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_passes_and_is_deterministic() {
    let run = || {
        bin()
            .args(["check", "--iters", "10", "--seed", "1"])
            .output()
            .expect("spawn")
    };
    let (a, b) = (run(), run());
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stdout));
    assert_eq!(a.stdout, b.stdout, "check output is not deterministic");
    let text = String::from_utf8_lossy(&a.stdout);
    // All eleven differential oracles, all three metamorphic invariants
    // and the fuzzer ran.
    for oracle in [
        "fixpoint",
        "tidy-idempotence",
        "parallel-convert",
        "brzozowski-vs-backtracking",
        "miner-vs-bruteforce",
        "serve-vs-batch",
        "loris-liveness",
        "trace-noop",
        "matcher-vs-naive",
        "shard-merge-vs-batch",
        "map-vs-batch",
        "remove-document",
        "duplicate-corpus",
        "permute-order",
        "fuzz-totality",
    ] {
        assert!(text.contains(oracle), "missing oracle {oracle} in:\n{text}");
    }
    assert!(text.contains("all 15 oracles passed"), "{text}");
}

#[test]
fn check_only_restricts_to_one_oracle() {
    let out = bin()
        .args(["check", "--only", "fixpoint", "--iters", "5", "--seed", "3"])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fixpoint"), "{text}");
    assert!(!text.contains("miner-vs-bruteforce"), "{text}");
}

#[test]
fn check_failing_oracle_exits_nonzero_with_repro_line() {
    // The hidden self-test oracle fails unconditionally; it exists to pin
    // down the failure path: non-zero exit plus a reproduction command
    // carrying the exact case seed.
    let out = bin()
        .args(["check", "--only", "self-test", "--seed", "42", "--iters", "7"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "{text}");
    assert!(
        text.contains("reproduce: webre check --only self-test --seed 42 --iters 1"),
        "missing repro line in:\n{text}"
    );
}

#[test]
fn check_unknown_oracle_is_an_error() {
    let out = bin()
        .args(["check", "--only", "no-such-oracle"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("known oracles"), "{text}");
}

/// Workspace root (the directory holding the top-level `Cargo.toml`).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// A lint-rule fixture file (never compiled; input data for `webre lint`).
fn lint_fixture(name: &str) -> PathBuf {
    repo_root().join("crates/lint/tests/fixtures").join(name)
}

#[test]
fn lint_workspace_is_clean_under_deny_warnings() {
    let out = bin()
        .args(["lint", "--deny-warnings", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "workspace must lint clean:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("no findings"));
}

#[test]
fn lint_findings_fail_only_under_deny_warnings() {
    let args = |deny: bool| {
        let mut v = vec!["lint".to_owned()];
        if deny {
            v.push("--deny-warnings".to_owned());
        }
        v.push("--root".to_owned());
        v.push(repo_root().display().to_string());
        v.push(lint_fixture("panic_pos.rs").display().to_string());
        v
    };
    // Without --deny-warnings findings are reported but the exit is 0.
    let out = bin().args(args(false)).output().expect("spawn");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(stdout.contains("[panic-in-hot-path]"), "{stdout}");
    // With it, the same findings gate the exit code.
    let out = bin().args(args(true)).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("finding"));
}

#[test]
fn lint_json_output_is_stable() {
    let run = || {
        bin()
            .args(["lint", "--format", "json", "--root"])
            .arg(repo_root())
            .arg(lint_fixture("nondet_pos.rs"))
            .arg(lint_fixture("dropped_pos.rs"))
            .output()
            .expect("spawn")
    };
    let (a, b) = (run(), run());
    assert!(a.status.success());
    assert_eq!(a.stdout, b.stdout, "lint --format json is not stable");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.trim_start().starts_with('['), "{text}");
    assert!(text.contains("\"rule\""), "{text}");
    assert!(text.contains("nondet-iter"), "{text}");
    assert!(text.contains("dropped-result"), "{text}");
}

#[test]
fn lint_list_rules_names_all_nine() {
    let out = bin().args(["lint", "--list-rules"]).output().expect("spawn");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    for rule in [
        "dropped-result",
        "lock-across-blocking",
        "lock-order",
        "no-wall-clock",
        "nondet-iter",
        "panic-in-hot-path",
        "std-only",
        "unbounded-request-alloc",
        "unjoined-thread",
    ] {
        assert!(text.contains(rule), "missing rule {rule}:\n{text}");
    }
    assert_eq!(text.lines().count(), 9, "one line per rule:\n{text}");
}

#[test]
fn lint_unknown_rule_is_an_error() {
    let out = bin()
        .args(["lint", "--only", "no-such-rule", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("known rules"));
}

#[test]
fn lint_bad_format_is_a_usage_error() {
    let out = bin()
        .args(["lint", "--format", "xml", "--root"])
        .arg(repo_root())
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "usage errors exit 2");
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn missing_file_reports_error() {
    let out = bin()
        .args(["convert", "/nonexistent/nope.html"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
