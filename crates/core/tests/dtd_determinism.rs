//! Regression tests for insertion-order determinism, guarding the
//! `nondet-iter` fixes: everything the pipeline emits must be
//! byte-identical no matter what order its inputs arrive in.
//!
//! Two angles:
//!
//! 1. the full pipeline (convert → mine → derive) run 10 times over the
//!    same corpus in a freshly shuffled document order each run, and
//! 2. the Bayes classifier trained 10 times with shuffled example
//!    insertion order — the direct regression for the tie-break that used
//!    to ride on `HashMap` iteration order in `webre-text`.

use webre::text::BayesTrainer;
use webre::Pipeline;
use webre_substrate::rand::rngs::StdRng;
use webre_substrate::rand::seq::SliceRandom;
use webre_substrate::rand::SeedableRng;

const RUNS: usize = 10;

/// The derived DTD for `htmls`, rendered to its canonical string.
fn dtd_of(pipeline: &Pipeline, htmls: &[String]) -> String {
    let docs = pipeline.convert_corpus(htmls);
    let discovery = pipeline
        .discover_schema(&docs)
        .expect("corpus is mineable");
    discovery.dtd.to_dtd_string()
}

#[test]
fn dtd_is_byte_identical_across_shuffled_runs() {
    let corpus = webre::corpus::CorpusGenerator::new(7).generate(12);
    let mut htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = Pipeline::resume_domain();

    let reference = dtd_of(&pipeline, &htmls);
    assert!(!reference.is_empty(), "reference DTD must not be empty");

    let mut rng = StdRng::seed_from_u64(0x0dd5);
    for run in 0..RUNS {
        htmls.shuffle(&mut rng);
        let dtd = dtd_of(&pipeline, &htmls);
        assert_eq!(
            dtd, reference,
            "run {run}: shuffled document order changed the DTD"
        );
    }
}

#[test]
fn bayes_output_is_independent_of_training_insertion_order() {
    // Two classes share the token "june": any score tie between them must
    // be broken by label, never by map iteration order.
    let examples: &[(&str, &str)] = &[
        ("date", "June 1996"),
        ("date", "May 2001"),
        ("date", "19 June 1998"),
        ("institution", "Stanford University"),
        ("institution", "June College"),
        ("institution", "University of June"),
        ("degree", "M.S. Computer Science"),
        ("degree", "B.A. History, June honors"),
    ];
    let probes = ["June", "Stanford", "M.S.", "19", "honors", "of"];

    let reference = render(examples, &probes);

    let mut rng = StdRng::seed_from_u64(0xbe5);
    let mut shuffled: Vec<(&str, &str)> = examples.to_vec();
    for run in 0..RUNS {
        shuffled.shuffle(&mut rng);
        assert_eq!(
            render(&shuffled, &probes),
            reference,
            "run {run}: training insertion order changed classifier output"
        );
    }
}

/// Trains on `examples` in the given order and renders every probe's full
/// ranked score list to one string.
fn render(examples: &[(&str, &str)], probes: &[&str]) -> String {
    let mut trainer = BayesTrainer::new();
    for (label, text) in examples {
        trainer.add(label, text);
    }
    let classifier = trainer.build().expect("non-empty training set");
    let mut out = String::new();
    for probe in probes {
        out.push_str(probe);
        out.push(':');
        for (label, score) in classifier.scores(probe) {
            out.push_str(&format!(" {label}={score:.12}"));
        }
        out.push('\n');
    }
    out
}
