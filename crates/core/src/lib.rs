//! `webre` — Reverse Engineering for Web Data: from visual to semantic
//! structures.
//!
//! A faithful, from-scratch reproduction of Chung, Gertz & Sundaresan
//! (ICDE 2002): topic-specific HTML documents are converted into
//! concept-tagged XML via document restructuring rules, a *majority schema*
//! is discovered from the resulting documents as frequent label paths, a
//! DTD with ordering and repetition information is derived, and
//! non-conforming documents are mapped onto the DTD with a tree-edit
//! algorithm.
//!
//! # Quickstart
//!
//! ```
//! use webre::Pipeline;
//!
//! let pipeline = Pipeline::resume_domain();
//! let (xml, _stats) = pipeline.convert_html(
//!     "<h2>Education</h2><ul><li>Stanford University, M.S., June 1996</li></ul>",
//! );
//! assert_eq!(xml.root_name(), "resume");
//! assert!(webre_xml::to_xml(&xml).contains("institution"));
//! ```
//!
//! # Crate map
//!
//! | Stage | Crate |
//! |---|---|
//! | ordered arena tree | [`webre_tree`] |
//! | HTML lexing/parsing/tidy | [`webre_html`] |
//! | XML model, DTD, validation | [`webre_xml`] |
//! | tokenization, Bayes classifier | [`webre_text`] |
//! | concepts, instances, constraints | [`webre_concepts`] |
//! | restructuring rules (conversion) | [`webre_convert`] |
//! | frequent paths, majority schema, DTD | [`webre_schema`] |
//! | tree edit distance, document mapping | [`webre_map`] |
//! | synthetic corpus + crawler substrate | [`webre_corpus`] |
//! | spans, stage counters, trace export | [`webre_obs`] |

pub use webre_concepts as concepts;
pub use webre_convert as convert;
pub use webre_corpus as corpus;
pub use webre_html as html;
pub use webre_map as map;
pub use webre_obs as obs;
pub use webre_schema as schema;
pub use webre_serve as serve;
pub use webre_text as text;
pub use webre_tree as tree;
pub use webre_xml as xml;

use webre_concepts::{ConceptSet, ConstraintSet};
use webre_convert::{ConvertConfig, ConvertStats, Converter};
use webre_map::MapOutcome;
use webre_schema::{extract_paths, DocPaths, DtdConfig, FrequentPathMiner, MajoritySchema};
use webre_xml::{Dtd, XmlDocument};

/// End-to-end pipeline: HTML documents in, majority schema + DTD +
/// conforming XML documents out.
#[derive(Clone, Debug)]
pub struct Pipeline {
    converter: Converter,
    miner: FrequentPathMiner,
    dtd_config: DtdConfig,
}

/// The result of running schema discovery over a converted corpus.
#[derive(Clone, Debug)]
pub struct DiscoveryResult {
    /// The discovered majority schema.
    pub schema: MajoritySchema,
    /// The derived DTD (ordering + repetition applied).
    pub dtd: Dtd,
    /// Per-document path views (reusable for further analysis).
    pub paths: Vec<DocPaths>,
    /// Candidate paths explored during mining.
    pub nodes_explored: usize,
}

impl Pipeline {
    /// Builds a pipeline over an arbitrary concept set.
    pub fn new(concepts: ConceptSet) -> Self {
        Pipeline {
            converter: Converter::new(concepts),
            miner: FrequentPathMiner::default(),
            dtd_config: DtdConfig::default(),
        }
    }

    /// The paper's experimental setup: the resume domain (24 concepts, 233
    /// instances) with its Section 4.2 constraints wired into the miner.
    pub fn resume_domain() -> Self {
        let concepts = webre_concepts::resume::concepts();
        let constraints = webre_concepts::resume::constraints();
        Pipeline {
            converter: Converter::new(concepts),
            miner: FrequentPathMiner {
                constraints: Some(constraints),
                ..FrequentPathMiner::default()
            },
            dtd_config: DtdConfig::default(),
        }
    }

    /// Replaces the conversion configuration.
    pub fn with_convert_config(mut self, config: ConvertConfig) -> Self {
        self.converter = Converter::with_config(self.converter.concepts().clone(), config);
        self
    }

    /// Replaces the mining thresholds/constraints.
    pub fn with_miner(mut self, miner: FrequentPathMiner) -> Self {
        self.miner = miner;
        self
    }

    /// Replaces the DTD-derivation thresholds.
    pub fn with_dtd_config(mut self, config: DtdConfig) -> Self {
        self.dtd_config = config;
        self
    }

    /// The converter in use.
    pub fn converter(&self) -> &Converter {
        &self.converter
    }

    /// The miner in use.
    pub fn miner(&self) -> &FrequentPathMiner {
        &self.miner
    }

    /// The constraint set wired into the miner, if any.
    pub fn constraints(&self) -> Option<&ConstraintSet> {
        self.miner.constraints.as_ref()
    }

    /// The DTD-derivation configuration in use.
    pub fn dtd_config(&self) -> &DtdConfig {
        &self.dtd_config
    }

    /// A [`serve::Engine`] sharing this pipeline's exact configuration,
    /// so `webre serve` answers byte-identically to the batch commands.
    pub fn serve_engine(&self) -> serve::Engine {
        serve::Engine {
            converter: self.converter.clone(),
            miner: self.miner.clone(),
            dtd_config: self.dtd_config.clone(),
        }
    }

    /// Converts one HTML document (text) into a concept-tagged XML
    /// document.
    pub fn convert_html(&self, html: &str) -> (XmlDocument, ConvertStats) {
        self.converter.convert_str(html)
    }

    /// [`Pipeline::convert_html`] with observability; spans and counters
    /// are recorded through `ctx` and the output is identical.
    pub fn convert_html_obs(&self, html: &str, ctx: obs::Ctx<'_>) -> (XmlDocument, ConvertStats) {
        self.converter.convert_str_obs(html, ctx)
    }

    /// Converts a corpus of HTML documents.
    pub fn convert_corpus(&self, htmls: &[String]) -> Vec<XmlDocument> {
        self.converter.convert_corpus(htmls)
    }

    /// Converts a corpus in parallel across `threads` workers.
    ///
    /// Document conversion is embarrassingly parallel (each document is
    /// independent); results are returned in input order and are identical
    /// to [`Pipeline::convert_corpus`]. The implementation lives on
    /// [`Converter::convert_corpus_parallel`] so the `webre-check`
    /// differential oracles can exercise it without depending on this
    /// facade crate.
    pub fn convert_corpus_parallel(&self, htmls: &[String], threads: usize) -> Vec<XmlDocument> {
        self.converter.convert_corpus_parallel(htmls, threads)
    }

    /// Discovers the majority schema and DTD for a set of XML documents.
    ///
    /// Returns `None` for an empty corpus.
    pub fn discover_schema(&self, docs: &[XmlDocument]) -> Option<DiscoveryResult> {
        self.discover_schema_obs(docs, obs::Ctx::disabled())
    }

    /// [`Pipeline::discover_schema`] with observability: path extraction,
    /// mining, and DTD derivation each run under their own span. The
    /// discovery result is identical.
    pub fn discover_schema_obs(
        &self,
        docs: &[XmlDocument],
        ctx: obs::Ctx<'_>,
    ) -> Option<DiscoveryResult> {
        let paths: Vec<DocPaths> = {
            let _span = ctx.span(obs::stage::EXTRACT_PATHS);
            docs.iter().map(extract_paths).collect()
        };
        let outcome = self.miner.mine_view_obs(paths.as_slice(), ctx)?;
        let dtd = schema::derive_dtd_obs(&outcome.schema, &paths, &self.dtd_config, ctx);
        Some(DiscoveryResult {
            schema: outcome.schema,
            dtd,
            paths,
            nodes_explored: outcome.nodes_explored,
        })
    }

    /// Maps a (possibly non-conforming) document onto a discovered DTD.
    pub fn map_document(
        &self,
        doc: &XmlDocument,
        discovery: &DiscoveryResult,
    ) -> MapOutcome {
        webre_map::map_to_dtd(doc, &discovery.schema, &discovery.dtd)
    }

    /// [`Pipeline::map_document`] with observability: the mapping runs
    /// under a `map-to-dtd` span. The outcome is identical.
    pub fn map_document_obs(
        &self,
        doc: &XmlDocument,
        discovery: &DiscoveryResult,
        ctx: obs::Ctx<'_>,
    ) -> MapOutcome {
        let _span = ctx.span(obs::stage::MAP);
        webre_map::map_to_dtd(doc, &discovery.schema, &discovery.dtd)
    }

    /// Maps `doc` through the tiered planner (conformant / rejected /
    /// exact) instead of the always-exact [`Pipeline::map_document`] —
    /// the batch twin of `POST /map`.
    pub fn plan_document(
        &self,
        doc: &XmlDocument,
        discovery: &DiscoveryResult,
        planner: &webre_map::MapPlanner,
    ) -> webre_map::PlannedMap {
        self.plan_document_obs(doc, discovery, planner, obs::Ctx::disabled())
    }

    /// [`Pipeline::plan_document`] with observability: the plan runs
    /// under a `map-to-dtd` span with the filter and exact tiers nested
    /// beneath it.
    pub fn plan_document_obs(
        &self,
        doc: &XmlDocument,
        discovery: &DiscoveryResult,
        planner: &webre_map::MapPlanner,
        ctx: obs::Ctx<'_>,
    ) -> webre_map::PlannedMap {
        let scope = ctx.span(obs::stage::MAP);
        planner.plan_obs(doc, &discovery.schema, &discovery.dtd, scope.ctx())
    }

    /// Full run: convert every HTML document, discover the schema, and map
    /// every document onto the derived DTD.
    pub fn run(&self, htmls: &[String]) -> Option<(DiscoveryResult, Vec<MapOutcome>)> {
        self.run_obs(htmls, obs::Ctx::disabled())
    }

    /// [`Pipeline::run`] with observability: every conversion, the
    /// discovery stages, and every mapping record spans and counters
    /// through `ctx`. The result is identical to [`Pipeline::run`].
    pub fn run_obs(
        &self,
        htmls: &[String],
        ctx: obs::Ctx<'_>,
    ) -> Option<(DiscoveryResult, Vec<MapOutcome>)> {
        let docs: Vec<XmlDocument> = htmls
            .iter()
            .map(|h| self.converter.convert_str_obs(h, ctx).0)
            .collect();
        let discovery = self.discover_schema_obs(&docs, ctx)?;
        let mapped = docs
            .iter()
            .map(|d| self.map_document_obs(d, &discovery, ctx))
            .collect();
        Some((discovery, mapped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use webre_corpus::CorpusGenerator;

    #[test]
    fn quickstart_converts() {
        let pipeline = Pipeline::resume_domain();
        let (xml, stats) = pipeline.convert_html(
            "<h2>Education</h2><ul><li>Stanford University, M.S., June 1996</li></ul>",
        );
        assert_eq!(xml.root_name(), "resume");
        assert!(stats.tokens_identified > 0);
    }

    #[test]
    fn end_to_end_pipeline_on_generated_corpus() {
        let corpus = CorpusGenerator::new(42).generate(12);
        let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
        let pipeline = Pipeline::resume_domain().with_miner(FrequentPathMiner {
            sup_threshold: 0.5,
            ratio_threshold: 0.3,
            constraints: Some(webre_concepts::resume::constraints()),
            max_len: None,
        });
        let (discovery, mapped) = pipeline.run(&htmls).unwrap();
        assert_eq!(discovery.schema.root_label(), "resume");
        assert!(discovery.schema.len() > 3, "{}", discovery.schema.render());
        assert!(discovery.dtd.len() > 3);
        assert_eq!(mapped.len(), 12);
        // Mapping must achieve conformance for every document.
        let conforming = mapped.iter().filter(|m| m.conforms).count();
        assert!(
            conforming >= 11,
            "only {conforming}/12 conform: {}",
            discovery.dtd.to_dtd_string()
        );
    }

    #[test]
    fn discovery_on_empty_corpus_is_none() {
        let pipeline = Pipeline::resume_domain();
        assert!(pipeline.discover_schema(&[]).is_none());
    }

    #[test]
    fn builder_methods_apply() {
        let pipeline = Pipeline::resume_domain()
            .with_dtd_config(DtdConfig {
                rep_threshold: 2,
                ..DtdConfig::default()
            })
            .with_miner(FrequentPathMiner {
                sup_threshold: 0.4,
                ..FrequentPathMiner::default()
            });
        assert_eq!(pipeline.miner().sup_threshold, 0.4);
        assert!(pipeline.constraints().is_none());
    }
}
