//! `webre` — command-line front end for the pipeline.
//!
//! ```text
//! webre convert  <file.html>...  [--domain d.json] [--root NAME] [--compact] [--stats]
//! webre discover <file.html>...  [--domain d.json] [--sup F] [--ratio F] [--group-patterns]
//! webre run      <file.html>...  [--domain d.json] [--sup F] [--ratio F] --out-dir DIR
//! webre serve    [--addr HOST:PORT] [--workers N] [--cache-cap N] [--queue-cap N]
//! webre stats    <trace.json>...
//! webre validate <file.xml>...   --dtd <file.dtd>
//! webre generate --count N [--seed S] --out-dir DIR
//! webre check    [--seed S] [--iters N] [--only ORACLE]
//! webre lint     [PATHS]... [--deny-warnings] [--only RULE] [--format text|json]
//! ```
//!
//! `convert` prints concept-tagged XML for each input; `discover` prints
//! the majority schema and derived DTD; `run` converts, discovers, maps
//! every document onto the DTD and writes conforming XML files; `serve`
//! exposes the pipeline over HTTP (see `webre-serve`); `stats` summarizes
//! trace files written by `--trace-out` (per-stage span counts and
//! latencies plus rule-counter totals); `validate` checks
//! XML files against a DTD; `generate` materializes a synthetic resume
//! corpus (HTML plus ground-truth XML); `check` runs the differential/
//! metamorphic/fuzzing oracle battery from `webre-check` and prints a
//! one-line reproduction command for any failure; `lint` runs the
//! in-tree static-analysis pass from `webre-lint` over the workspace
//! (or explicit paths) and, under `--deny-warnings`, fails the build on
//! any finding.
//!
//! `discover`, `run`, and `serve` accept `--trace-out FILE`: the whole
//! run records hierarchical pipeline spans into a trace recorder and
//! writes a chrome://tracing-compatible JSON file on completion (for
//! `serve`, after drain). Tracing never changes output — `webre check
//! --only trace-noop` holds the pipeline to that byte-for-byte.
//!
//! Exit codes: `0` success, `1` runtime failure (unreadable input, failed
//! validation, failed oracle), `2` usage error (unknown command or flag,
//! missing argument, malformed flag value).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use webre::concepts::Domain;
use webre::convert::ConvertConfig;
use webre::obs::clock::MonotonicClock;
use webre::obs::trace::TraceRecorder;
use webre::obs::Ctx;
use webre::serve::obs::ObsLayer;
use webre::serve::server::{ServeConfig, Server};
use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::FrequentPathMiner;
use webre_substrate::json::Json;
use webre_xml::XmlDocument;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return exit_usage();
    };
    let result = match command.as_str() {
        "convert" => cmd_convert(rest),
        "discover" => cmd_discover(rest),
        "run" => cmd_run(rest),
        "serve" => cmd_serve(rest),
        "stats" => cmd_stats(rest),
        "validate" => cmd_validate(rest),
        "generate" => cmd_generate(rest),
        "check" => cmd_check(rest),
        "lint" => cmd_lint(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        "--version" | "-V" | "version" => {
            println!("webre {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(code) => code,
        Err(CliError::Runtime(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            exit_usage()
        }
    }
}

/// Usage errors (unknown flag, missing argument) exit with 2 so scripts
/// can tell "you called it wrong" from "it ran and failed" (1).
fn exit_usage() -> ExitCode {
    ExitCode::from(2)
}

const USAGE: &str = "\
usage:
  webre convert  <file.html>...  [--domain d.json] [--root NAME] [--compact] [--stats]
  webre discover <file.html>...  [--domain d.json] [--sup F] [--ratio F] [--group-patterns]
                 [--trace-out FILE]
  webre run      <file.html>...  [--domain d.json] [--sup F] [--ratio F] --out-dir DIR
                 [--trace-out FILE]
  webre serve    [--addr HOST:PORT] [--workers N] [--cache-cap N] [--queue-cap N]
                 [--max-body BYTES] [--domain d.json] [--root NAME] [--sup F] [--ratio F]
                 [--trace-out FILE]
  webre stats    <trace.json>...
  webre validate <file.xml>...   --dtd <file.dtd>
  webre generate --count N [--seed S] --out-dir DIR
  webre check    [--seed S] [--iters N] [--only ORACLE]
  webre lint     [PATHS]... [--deny-warnings] [--only RULE] [--format text|json]
                 [--root DIR] [--list-rules]
  webre --version | --help";

/// A CLI failure, split by who got it wrong.
enum CliError {
    /// The invocation itself is invalid → exit 2, usage printed.
    Usage(String),
    /// The invocation was fine but the work failed → exit 1.
    Runtime(String),
}

fn usage_err(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

fn runtime_err(message: impl Into<String>) -> CliError {
    CliError::Runtime(message.into())
}

/// Minimal flag parser: returns (positional, flag-values, flag-switches).
/// Flags outside `value_flags` ∪ `switch_flags` are usage errors, so a
/// typo like `--suport 0.4` fails loudly instead of being ignored.
struct Parsed {
    positional: Vec<String>,
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Parsed, CliError> {
    let mut out = Parsed {
        positional: Vec::new(),
        values: Vec::new(),
        switches: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| usage_err(format!("--{name} needs a value")))?;
                out.values.push((name.to_owned(), value.clone()));
            } else if switch_flags.contains(&name) {
                out.switches.push(name.to_owned());
            } else {
                return Err(usage_err(format!("unknown flag --{name}")));
            }
        } else {
            out.positional.push(arg.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn float(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.value(name) {
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("--{name} expects a number, got {v:?}"))),
            None => Ok(default),
        }
    }

    fn uint(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.value(name) {
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("--{name} expects an integer, got {v:?}"))),
            None => Ok(default),
        }
    }
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| runtime_err(format!("cannot read {path}: {e}")))
}

/// `--trace-out FILE` support: a trace recorder (wall-clock driven) paired
/// with the destination path, or `None` when the flag is absent.
fn trace_from(parsed: &Parsed) -> Option<(TraceRecorder, String)> {
    parsed.value("trace-out").map(|path| {
        (
            TraceRecorder::new(Box::new(MonotonicClock::new())),
            path.to_owned(),
        )
    })
}

/// The recording context for an optional trace: parented at the recorder
/// when tracing, the shared no-op context otherwise.
fn trace_ctx(trace: &Option<(TraceRecorder, String)>) -> Ctx<'_> {
    match trace {
        Some((recorder, _)) => Ctx::new(recorder),
        None => Ctx::disabled(),
    }
}

/// Writes the chrome://tracing export once the traced work is done.
fn write_trace(trace: Option<(TraceRecorder, String)>) -> Result<(), CliError> {
    if let Some((recorder, path)) = trace {
        std::fs::write(&path, recorder.to_chrome_json())
            .map_err(|e| runtime_err(format!("cannot write trace {path}: {e}")))?;
        eprintln!("trace written to {path}");
    }
    Ok(())
}

/// Streams the input files through conversion one at a time: each
/// document is read, converted, and its HTML dropped before the next is
/// touched, so peak memory is one document (not the whole corpus).
/// Unreadable files are reported with their path and skipped; the batch
/// keeps going. Returns `(surviving paths, converted docs, failures)`.
fn convert_inputs(
    pipeline: &Pipeline,
    paths: &[String],
    ctx: Ctx<'_>,
) -> Result<(Vec<String>, Vec<XmlDocument>, usize), CliError> {
    let mut survivors = Vec::new();
    let mut docs = Vec::new();
    let mut failures = 0usize;
    for path in paths {
        match std::fs::read_to_string(path) {
            Ok(html) => {
                docs.push(pipeline.convert_html_obs(&html, ctx).0);
                survivors.push(path.clone());
            }
            Err(e) => {
                failures += 1;
                eprintln!("warning: skipping {path}: {e}");
            }
        }
    }
    if docs.is_empty() {
        return Err(runtime_err(format!(
            "no readable inputs ({failures} of {failures} failed)"
        )));
    }
    Ok((survivors, docs, failures))
}

/// Builds a pipeline from common flags (`--domain`, `--root`, `--sup`,
/// `--ratio`, `--group-patterns`).
fn pipeline_from(parsed: &Parsed) -> Result<Pipeline, CliError> {
    let mut pipeline = match parsed.value("domain") {
        Some(path) => {
            let domain = Domain::from_json(&read(path)?)
                .map_err(|e| runtime_err(format!("bad domain file {path}: {e}")))?;
            let root = parsed.value("root").unwrap_or("document").to_owned();
            let concepts = domain.concept_set();
            let constraints = domain.constraint_set();
            Pipeline::new(concepts)
                .with_convert_config(ConvertConfig {
                    root_concept: root,
                    constraints: Some(constraints.clone()),
                    ..ConvertConfig::default()
                })
                .with_miner(FrequentPathMiner {
                    constraints: Some(constraints),
                    ..FrequentPathMiner::default()
                })
        }
        None => {
            let mut p = Pipeline::resume_domain();
            if let Some(root) = parsed.value("root") {
                p = p.with_convert_config(ConvertConfig {
                    root_concept: root.to_owned(),
                    ..ConvertConfig::default()
                });
            }
            p
        }
    };
    let miner = FrequentPathMiner {
        sup_threshold: parsed.float("sup", 0.5)?,
        ratio_threshold: parsed.float("ratio", 0.3)?,
        constraints: pipeline.miner().constraints.clone(),
        max_len: None,
    };
    pipeline = pipeline.with_miner(miner);
    if parsed.switch("group-patterns") {
        pipeline = pipeline.with_dtd_config(webre_schema::DtdConfig {
            group_patterns: true,
            ..webre_schema::DtdConfig::default()
        });
    }
    Ok(pipeline)
}

fn cmd_convert(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &["domain", "root"], &["compact", "stats"])?;
    if parsed.positional.is_empty() {
        return Err(usage_err("convert needs at least one input file"));
    }
    let pipeline = pipeline_from(&parsed)?;
    for path in &parsed.positional {
        let html = read(path)?;
        let (xml, stats) = pipeline.convert_html(&html);
        if parsed.switch("compact") {
            println!("{}", webre::xml::to_xml(&xml));
        } else {
            print!("{}", webre::xml::to_xml_pretty(&xml));
        }
        if parsed.switch("stats") {
            eprintln!(
                "{path}: {} tokens, {} identified, {} unidentified, {} decomposed",
                stats.tokens_total,
                stats.tokens_identified,
                stats.tokens_unidentified,
                stats.tokens_decomposed
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_discover(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &["domain", "root", "sup", "ratio", "trace-out"],
        &["group-patterns"],
    )?;
    if parsed.positional.is_empty() {
        return Err(usage_err("discover needs at least one input file"));
    }
    let pipeline = pipeline_from(&parsed)?;
    let trace = trace_from(&parsed);
    let ctx = trace_ctx(&trace);
    let (_, docs, failures) = convert_inputs(&pipeline, &parsed.positional, ctx)?;
    let discovery = pipeline
        .discover_schema_obs(&docs, ctx)
        .ok_or_else(|| runtime_err("empty corpus or root below support threshold"))?;
    write_trace(trace)?;
    println!("majority schema ({} paths):", discovery.schema.len());
    print!("{}", discovery.schema.render());
    println!();
    println!("derived DTD:");
    print!("{}", discovery.dtd.to_dtd_string());
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_run(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &["domain", "root", "sup", "ratio", "out-dir", "trace-out"],
        &["group-patterns"],
    )?;
    if parsed.positional.is_empty() {
        return Err(usage_err("run needs at least one input file"));
    }
    let out_dir = PathBuf::from(
        parsed
            .value("out-dir")
            .ok_or_else(|| usage_err("run needs --out-dir"))?,
    );
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| runtime_err(format!("cannot create out dir: {e}")))?;
    let pipeline = pipeline_from(&parsed)?;
    let trace = trace_from(&parsed);
    let ctx = trace_ctx(&trace);
    let (survivors, docs, failures) = convert_inputs(&pipeline, &parsed.positional, ctx)?;
    let discovery = pipeline
        .discover_schema_obs(&docs, ctx)
        .ok_or_else(|| runtime_err("empty corpus or root below support threshold"))?;
    std::fs::write(out_dir.join("schema.dtd"), discovery.dtd.to_dtd_string())
        .map_err(|e| runtime_err(e.to_string()))?;
    let mut conforming = 0usize;
    for (input, doc) in survivors.iter().zip(&docs) {
        let outcome = pipeline.map_document_obs(doc, &discovery, ctx);
        let stem = Path::new(input)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "doc".into());
        let path = out_dir.join(format!("{stem}.xml"));
        std::fs::write(&path, webre::xml::to_xml_pretty(&outcome.document))
            .map_err(|e| runtime_err(e.to_string()))?;
        if outcome.conforms {
            conforming += 1;
        }
    }
    write_trace(trace)?;
    println!(
        "wrote {} mapped documents + schema.dtd to {} ({conforming} conforming)",
        docs.len(),
        out_dir.display()
    );
    if failures > 0 {
        eprintln!("{failures} input(s) skipped due to read errors");
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &[
            "addr",
            "workers",
            "cache-cap",
            "queue-cap",
            "max-body",
            "domain",
            "root",
            "sup",
            "ratio",
            "trace-out",
        ],
        &["group-patterns"],
    )?;
    if !parsed.positional.is_empty() {
        return Err(usage_err(format!(
            "serve takes no positional arguments, got {:?}",
            parsed.positional
        )));
    }
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: parsed
            .value("addr")
            .unwrap_or(&defaults.addr)
            .to_owned(),
        workers: parsed.uint("workers", defaults.workers)?.max(1),
        queue_cap: parsed.uint("queue-cap", defaults.queue_cap)?.max(1),
        cache_cap: parsed.uint("cache-cap", defaults.cache_cap)?,
        max_body: parsed.uint("max-body", defaults.max_body)?,
        read_timeout: defaults.read_timeout,
    };
    let pipeline = pipeline_from(&parsed)?;
    let workers = config.workers;
    // A traced server tees every request's span tree into this recorder;
    // the export happens after drain so the file captures the full run.
    let trace_path = parsed.value("trace-out").map(str::to_owned);
    let trace = trace_path
        .as_ref()
        .map(|_| Arc::new(TraceRecorder::new(Box::new(MonotonicClock::new()))));
    let obs = ObsLayer::new(trace.clone());
    let server = Server::start_with_obs(config, pipeline.serve_engine(), obs)
        .map_err(|e| runtime_err(format!("cannot bind: {e}")))?;
    println!(
        "serving on http://{} ({workers} workers; POST /shutdown to drain)",
        server.local_addr()
    );
    server.join();
    println!("drained, all workers exited");
    if let (Some(path), Some(recorder)) = (trace_path, trace) {
        std::fs::write(&path, recorder.to_chrome_json())
            .map_err(|e| runtime_err(format!("cannot write trace {path}: {e}")))?;
        eprintln!("trace written to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// Per-stage aggregate over one or more trace files.
#[derive(Default)]
struct StageSummary {
    spans: u64,
    total_us: f64,
    max_us: f64,
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &[], &[])?;
    if parsed.positional.is_empty() {
        return Err(usage_err("stats needs at least one trace file"));
    }
    // Keyed by first-seen name; printed in pipeline order (stage::ALL)
    // with uncatalogued names, if any, trailing in file order.
    let mut names: Vec<String> = Vec::new();
    let mut stages: Vec<StageSummary> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for path in &parsed.positional {
        let doc = Json::parse(&read(path)?)
            .map_err(|e| runtime_err(format!("bad trace file {path}: {e}")))?;
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or_else(|| runtime_err(format!("{path}: no traceEvents array")))?;
        for event in events {
            let Some(name) = event.get("name").and_then(Json::as_str) else {
                continue;
            };
            let dur = event.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
            let idx = match names.iter().position(|n| n == name) {
                Some(idx) => idx,
                None => {
                    names.push(name.to_owned());
                    stages.push(StageSummary::default());
                    names.len() - 1
                }
            };
            let summary = &mut stages[idx];
            summary.spans += 1;
            summary.total_us += dur;
            summary.max_us = summary.max_us.max(dur);
            let Some(args) = event.get("args") else {
                continue;
            };
            for counter in webre::obs::counter::ALL.iter().copied() {
                let Some(n) = args.get(counter).and_then(Json::as_f64) else {
                    continue;
                };
                match counters.iter_mut().find(|(k, _)| k == counter) {
                    Some(entry) => entry.1 += n as u64,
                    None => counters.push((counter.to_owned(), n as u64)),
                }
            }
        }
    }
    let order: Vec<usize> = webre::obs::stage::ALL
        .iter()
        .filter_map(|stage| names.iter().position(|n| n == stage))
        .chain(
            (0..names.len()).filter(|&i| webre::obs::stage::index_of(&names[i]).is_none()),
        )
        .collect();
    println!(
        "{:<24} {:>8} {:>12} {:>10} {:>10}",
        "stage", "spans", "total(us)", "mean(us)", "max(us)"
    );
    for i in order {
        let s = &stages[i];
        let mean = if s.spans == 0 {
            0.0
        } else {
            s.total_us / s.spans as f64
        };
        println!(
            "{:<24} {:>8} {:>12.1} {:>10.1} {:>10.1}",
            names[i], s.spans, s.total_us, mean, s.max_us
        );
    }
    if !counters.is_empty() {
        println!();
        println!("{:<24} {:>8}", "counter", "total");
        for counter in webre::obs::counter::ALL.iter().copied() {
            if let Some((name, total)) = counters.iter().find(|(k, _)| k == counter) {
                println!("{name:<24} {total:>8}");
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &["dtd"], &[])?;
    let dtd_path = parsed
        .value("dtd")
        .ok_or_else(|| usage_err("validate needs --dtd"))?;
    let dtd = webre::xml::dtd::parse_dtd(&read(dtd_path)?)
        .map_err(|e| runtime_err(format!("bad DTD {dtd_path}: {e}")))?;
    if parsed.positional.is_empty() {
        return Err(usage_err("validate needs at least one XML file"));
    }
    let mut failures = 0usize;
    for path in &parsed.positional {
        let doc = webre::xml::parse_xml(&read(path)?)
            .map_err(|e| runtime_err(format!("bad XML {path}: {e}")))?;
        let errors = webre::xml::validate(&doc, &dtd);
        if errors.is_empty() {
            println!("{path}: conforms");
        } else {
            failures += 1;
            println!("{path}: {} violations", errors.len());
            for e in errors.iter().take(5) {
                println!("  {e}");
            }
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_check(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &["seed", "iters", "only"], &[])?;
    if !parsed.positional.is_empty() {
        return Err(usage_err(format!(
            "check takes no positional arguments, got {:?}",
            parsed.positional
        )));
    }
    let seed: u64 = parsed
        .value("seed")
        .unwrap_or("1")
        .parse()
        .map_err(|_| usage_err("--seed expects an integer"))?;
    let iters: u64 = parsed
        .value("iters")
        .unwrap_or("200")
        .parse()
        .map_err(|_| usage_err("--iters expects an integer"))?;
    let config = webre_check::CheckConfig {
        seed,
        iters,
        only: parsed.value("only").map(str::to_owned),
    };
    let report = webre_check::run(&config);
    if report.oracles.is_empty() {
        let known: Vec<&str> = webre_check::runner::ORACLES
            .iter()
            .map(|(name, _, _)| *name)
            .collect();
        return Err(runtime_err(format!(
            "no oracle named {:?}; known oracles: {}",
            config.only.as_deref().unwrap_or(""),
            known.join(", ")
        )));
    }
    print!("{}", report.render());
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_lint(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &["only", "format", "root"],
        &["deny-warnings", "list-rules"],
    )?;
    let rules = webre_lint::all_rules();
    if parsed.switch("list-rules") {
        for rule in &rules {
            println!("{:<18} {}", rule.id(), rule.description());
        }
        return Ok(ExitCode::SUCCESS);
    }
    let format = parsed.value("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(usage_err(format!(
            "--format expects text or json, got {format:?}"
        )));
    }
    let mut config = webre_lint::LintConfig::default();
    if let Some(only) = parsed.value("only") {
        if !rules.iter().any(|r| r.id() == only) {
            let known: Vec<&str> = rules.iter().map(|r| r.id()).collect();
            return Err(runtime_err(format!(
                "no rule named {only:?}; known rules: {}",
                known.join(", ")
            )));
        }
        config.only = Some(only.to_owned());
    }
    let root = match parsed.value("root") {
        Some(dir) => PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| runtime_err(format!("cannot resolve current dir: {e}")))?;
            webre_lint::Workspace::find_root(&cwd).ok_or_else(|| {
                runtime_err("no workspace root found above the current directory; pass --root")
            })?
        }
    };
    let diagnostics = if parsed.positional.is_empty() {
        webre_lint::lint_workspace(&root, &config)
    } else {
        let paths: Vec<PathBuf> = parsed.positional.iter().map(PathBuf::from).collect();
        webre_lint::lint_paths(&root, &paths, &config)
    }
    .map_err(|e| runtime_err(format!("lint failed: {e}")))?;
    match format {
        "json" => print!("{}", webre_lint::render_json(&diagnostics)),
        _ => {
            print!("{}", webre_lint::render_text(&diagnostics));
            if diagnostics.is_empty() {
                eprintln!("lint: no findings");
            } else {
                eprintln!("lint: {} finding(s)", diagnostics.len());
            }
        }
    }
    Ok(if diagnostics.is_empty() || !parsed.switch("deny-warnings") {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_generate(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &["count", "seed", "out-dir"], &[])?;
    let count: usize = parsed
        .value("count")
        .ok_or_else(|| usage_err("generate needs --count"))?
        .parse()
        .map_err(|_| usage_err("--count expects an integer"))?;
    let seed: u64 = parsed
        .value("seed")
        .unwrap_or("2002")
        .parse()
        .map_err(|_| usage_err("--seed expects an integer"))?;
    let out_dir = PathBuf::from(
        parsed
            .value("out-dir")
            .ok_or_else(|| usage_err("generate needs --out-dir"))?,
    );
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| runtime_err(format!("cannot create out dir: {e}")))?;
    let generator = CorpusGenerator::new(seed);
    for doc in generator.generate(count) {
        std::fs::write(out_dir.join(format!("resume{:04}.html", doc.id)), &doc.html)
            .map_err(|e| runtime_err(e.to_string()))?;
        std::fs::write(
            out_dir.join(format!("resume{:04}.truth.xml", doc.id)),
            webre::xml::to_xml_pretty(&doc.truth),
        )
        .map_err(|e| runtime_err(e.to_string()))?;
    }
    println!("wrote {count} documents (+ ground truth) to {}", out_dir.display());
    Ok(ExitCode::SUCCESS)
}
