//! `webre` — command-line front end for the pipeline.
//!
//! ```text
//! webre convert  <file.html>...  [--domain d.json] [--root NAME] [--compact] [--stats]
//! webre discover <file.html>...  [--domain d.json] [--sup F] [--ratio F] [--group-patterns]
//! webre run      <file.html>...  [--domain d.json] [--sup F] [--ratio F] --out-dir DIR
//! webre map      <file.html>...  [--budget N] [--no-filter] [--json] [--out-dir DIR]
//! webre serve    [--addr HOST:PORT] [--workers N] [--data-dir DIR] [--shards N] ...
//! webre scale    [--instances K] [--docs N] [--data-dir DIR] ...
//! webre stats    <trace.json>...
//! webre validate <file.xml>...   --dtd <file.dtd>
//! webre generate --count N [--seed S] --out-dir DIR
//! webre check    [--seed S] [--iters N] [--only ORACLE]
//! webre lint     [PATHS]... [--deny-warnings] [--only RULE] [--format text|json]
//! ```
//!
//! `convert` prints concept-tagged XML for each input; `discover` prints
//! the majority schema and derived DTD; `run` converts, discovers, maps
//! every document onto the DTD and writes conforming XML files; `map`
//! runs the tiered mapping planner (lower-bound filter → exact
//! Zhang–Shasha) over each input against the schema mined from the whole
//! batch, printing one summary (or, with `--json`, exactly the JSON
//! document `POST /map` serves) per input; `serve`
//! exposes the pipeline over HTTP (see `webre-serve`); `scale` spawns a
//! fleet of `webre serve` child processes, routes a synthetic XML stream
//! across them with a consistent-hash ring, and proves at every
//! checkpoint that the merged per-instance path tables equal a locally
//! maintained batch reference (the distributed incremental ≡ batch
//! identity), reporting docs/s, time-to-fresh-schema, and — when
//! durable — WAL replay time as a JSON line; `stats` summarizes
//! trace files written by `--trace-out` (per-stage span counts and
//! latencies plus rule-counter totals); `validate` checks
//! XML files against a DTD; `generate` materializes a synthetic resume
//! corpus (HTML plus ground-truth XML); `check` runs the differential/
//! metamorphic/fuzzing oracle battery from `webre-check` and prints a
//! one-line reproduction command for any failure; `lint` runs the
//! in-tree static-analysis pass from `webre-lint` over the workspace
//! (or explicit paths) and, under `--deny-warnings`, fails the build on
//! any finding.
//!
//! `discover`, `run`, and `serve` accept `--trace-out FILE`: the whole
//! run records hierarchical pipeline spans into a trace recorder and
//! writes a chrome://tracing-compatible JSON file on completion (for
//! `serve`, after drain). Tracing never changes output — `webre check
//! --only trace-noop` holds the pipeline to that byte-for-byte.
//!
//! Exit codes: `0` success, `1` runtime failure (unreadable input, failed
//! validation, failed oracle), `2` usage error (unknown command or flag,
//! missing argument, malformed flag value).

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use webre::concepts::Domain;
use webre::convert::ConvertConfig;
use webre::obs::clock::MonotonicClock;
use webre::obs::trace::TraceRecorder;
use webre::obs::Ctx;
use webre::serve::obs::ObsLayer;
use webre::serve::server::{ServeConfig, Server};
use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::FrequentPathMiner;
use webre_substrate::json::Json;
use webre_xml::XmlDocument;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return exit_usage();
    };
    let result = match command.as_str() {
        "convert" => cmd_convert(rest),
        "discover" => cmd_discover(rest),
        "run" => cmd_run(rest),
        "map" => cmd_map(rest),
        "serve" => cmd_serve(rest),
        "load" => cmd_load(rest),
        "scale" => cmd_scale(rest),
        "stats" => cmd_stats(rest),
        "validate" => cmd_validate(rest),
        "generate" => cmd_generate(rest),
        "check" => cmd_check(rest),
        "lint" => cmd_lint(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        "--version" | "-V" | "version" => {
            println!("webre {}", env!("CARGO_PKG_VERSION"));
            return ExitCode::SUCCESS;
        }
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    };
    match result {
        Ok(code) => code,
        Err(CliError::Runtime(message)) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            exit_usage()
        }
    }
}

/// Usage errors (unknown flag, missing argument) exit with 2 so scripts
/// can tell "you called it wrong" from "it ran and failed" (1).
fn exit_usage() -> ExitCode {
    ExitCode::from(2)
}

const USAGE: &str = "\
usage:
  webre convert  <file.html>...  [--domain d.json] [--root NAME] [--compact] [--stats]
  webre discover <file.html>...  [--domain d.json] [--sup F] [--ratio F] [--group-patterns]
                 [--trace-out FILE]
  webre run      <file.html>...  [--domain d.json] [--sup F] [--ratio F] --out-dir DIR
                 [--trace-out FILE]
  webre map      <file.html>...  [--domain d.json] [--sup F] [--ratio F] [--budget N]
                 [--no-filter] [--json] [--out-dir DIR] [--trace-out FILE]
  webre serve    [--addr HOST:PORT] [--workers N] [--cache-cap N] [--queue-cap N]
                 [--max-body BYTES] [--deadline-ms N] [--read-timeout-ms N]
                 [--idle-timeout-ms N] [--write-timeout-ms N] [--data-dir DIR]
                 [--shards N] [--fsync-every N] [--compact-min N] [--map-budget N]
                 [--domain d.json] [--root NAME] [--sup F] [--ratio F]
                 [--trace-out FILE]
  webre load     [--addr HOST:PORT] [--connections N] [--loris N] [--duration SECS]
                 [--workers N] [--queue-cap N] [--cache-cap N] [--deadline-ms N]
                 [--read-timeout-ms N] [--idle-timeout-ms N] [--bench-out FILE]
  webre scale    [--instances K] [--docs N] [--seed S] [--batch B] [--checkpoints C]
                 [--data-dir DIR] [--shards N] [--workers N]
  webre stats    <trace.json>...
  webre validate <file.xml>...   --dtd <file.dtd>
  webre generate --count N [--seed S] --out-dir DIR
  webre check    [--seed S] [--iters N] [--only ORACLE]
  webre lint     [PATHS]... [--deny-warnings] [--only RULE] [--format text|json]
                 [--root DIR] [--list-rules]
  webre --version | --help";

/// A CLI failure, split by who got it wrong.
enum CliError {
    /// The invocation itself is invalid → exit 2, usage printed.
    Usage(String),
    /// The invocation was fine but the work failed → exit 1.
    Runtime(String),
}

fn usage_err(message: impl Into<String>) -> CliError {
    CliError::Usage(message.into())
}

fn runtime_err(message: impl Into<String>) -> CliError {
    CliError::Runtime(message.into())
}

/// Minimal flag parser: returns (positional, flag-values, flag-switches).
/// Flags outside `value_flags` ∪ `switch_flags` are usage errors, so a
/// typo like `--suport 0.4` fails loudly instead of being ignored.
struct Parsed {
    positional: Vec<String>,
    values: Vec<(String, String)>,
    switches: Vec<String>,
}

fn parse_flags(
    args: &[String],
    value_flags: &[&str],
    switch_flags: &[&str],
) -> Result<Parsed, CliError> {
    let mut out = Parsed {
        positional: Vec::new(),
        values: Vec::new(),
        switches: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if value_flags.contains(&name) {
                let value = it
                    .next()
                    .ok_or_else(|| usage_err(format!("--{name} needs a value")))?;
                out.values.push((name.to_owned(), value.clone()));
            } else if switch_flags.contains(&name) {
                out.switches.push(name.to_owned());
            } else {
                return Err(usage_err(format!("unknown flag --{name}")));
            }
        } else {
            out.positional.push(arg.clone());
        }
    }
    Ok(out)
}

impl Parsed {
    fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn float(&self, name: &str, default: f64) -> Result<f64, CliError> {
        match self.value(name) {
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("--{name} expects a number, got {v:?}"))),
            None => Ok(default),
        }
    }

    fn uint(&self, name: &str, default: usize) -> Result<usize, CliError> {
        match self.value(name) {
            Some(v) => v
                .parse()
                .map_err(|_| usage_err(format!("--{name} expects an integer, got {v:?}"))),
            None => Ok(default),
        }
    }
}

fn read(path: &str) -> Result<String, CliError> {
    std::fs::read_to_string(path).map_err(|e| runtime_err(format!("cannot read {path}: {e}")))
}

/// `--trace-out FILE` support: a trace recorder (wall-clock driven) paired
/// with the destination path, or `None` when the flag is absent.
fn trace_from(parsed: &Parsed) -> Option<(TraceRecorder, String)> {
    parsed.value("trace-out").map(|path| {
        (
            TraceRecorder::new(Box::new(MonotonicClock::new())),
            path.to_owned(),
        )
    })
}

/// The recording context for an optional trace: parented at the recorder
/// when tracing, the shared no-op context otherwise.
fn trace_ctx(trace: &Option<(TraceRecorder, String)>) -> Ctx<'_> {
    match trace {
        Some((recorder, _)) => Ctx::new(recorder),
        None => Ctx::disabled(),
    }
}

/// Writes the chrome://tracing export once the traced work is done.
fn write_trace(trace: Option<(TraceRecorder, String)>) -> Result<(), CliError> {
    if let Some((recorder, path)) = trace {
        std::fs::write(&path, recorder.to_chrome_json())
            .map_err(|e| runtime_err(format!("cannot write trace {path}: {e}")))?;
        eprintln!("trace written to {path}");
    }
    Ok(())
}

/// Streams the input files through conversion one at a time: each
/// document is read, converted, and its HTML dropped before the next is
/// touched, so peak memory is one document (not the whole corpus).
/// Unreadable files are reported with their path and skipped; the batch
/// keeps going. Returns `(surviving paths, converted docs, failures)`.
fn convert_inputs(
    pipeline: &Pipeline,
    paths: &[String],
    ctx: Ctx<'_>,
) -> Result<(Vec<String>, Vec<XmlDocument>, usize), CliError> {
    let mut survivors = Vec::new();
    let mut docs = Vec::new();
    let mut failures = 0usize;
    for path in paths {
        match std::fs::read_to_string(path) {
            Ok(html) => {
                docs.push(pipeline.convert_html_obs(&html, ctx).0);
                survivors.push(path.clone());
            }
            Err(e) => {
                failures += 1;
                eprintln!("warning: skipping {path}: {e}");
            }
        }
    }
    if docs.is_empty() {
        return Err(runtime_err(format!(
            "no readable inputs ({failures} of {failures} failed)"
        )));
    }
    Ok((survivors, docs, failures))
}

/// Builds a pipeline from common flags (`--domain`, `--root`, `--sup`,
/// `--ratio`, `--group-patterns`).
fn pipeline_from(parsed: &Parsed) -> Result<Pipeline, CliError> {
    let mut pipeline = match parsed.value("domain") {
        Some(path) => {
            let domain = Domain::from_json(&read(path)?)
                .map_err(|e| runtime_err(format!("bad domain file {path}: {e}")))?;
            let root = parsed.value("root").unwrap_or("document").to_owned();
            let concepts = domain.concept_set();
            let constraints = domain.constraint_set();
            Pipeline::new(concepts)
                .with_convert_config(ConvertConfig {
                    root_concept: root,
                    constraints: Some(constraints.clone()),
                    ..ConvertConfig::default()
                })
                .with_miner(FrequentPathMiner {
                    constraints: Some(constraints),
                    ..FrequentPathMiner::default()
                })
        }
        None => {
            let mut p = Pipeline::resume_domain();
            if let Some(root) = parsed.value("root") {
                p = p.with_convert_config(ConvertConfig {
                    root_concept: root.to_owned(),
                    ..ConvertConfig::default()
                });
            }
            p
        }
    };
    let miner = FrequentPathMiner {
        sup_threshold: parsed.float("sup", 0.5)?,
        ratio_threshold: parsed.float("ratio", 0.3)?,
        constraints: pipeline.miner().constraints.clone(),
        max_len: None,
    };
    pipeline = pipeline.with_miner(miner);
    if parsed.switch("group-patterns") {
        pipeline = pipeline.with_dtd_config(webre_schema::DtdConfig {
            group_patterns: true,
            ..webre_schema::DtdConfig::default()
        });
    }
    Ok(pipeline)
}

fn cmd_convert(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &["domain", "root"], &["compact", "stats"])?;
    if parsed.positional.is_empty() {
        return Err(usage_err("convert needs at least one input file"));
    }
    let pipeline = pipeline_from(&parsed)?;
    for path in &parsed.positional {
        let html = read(path)?;
        let (xml, stats) = pipeline.convert_html(&html);
        if parsed.switch("compact") {
            println!("{}", webre::xml::to_xml(&xml));
        } else {
            print!("{}", webre::xml::to_xml_pretty(&xml));
        }
        if parsed.switch("stats") {
            eprintln!(
                "{path}: {} tokens, {} identified, {} unidentified, {} decomposed",
                stats.tokens_total,
                stats.tokens_identified,
                stats.tokens_unidentified,
                stats.tokens_decomposed
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_discover(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &["domain", "root", "sup", "ratio", "trace-out"],
        &["group-patterns"],
    )?;
    if parsed.positional.is_empty() {
        return Err(usage_err("discover needs at least one input file"));
    }
    let pipeline = pipeline_from(&parsed)?;
    let trace = trace_from(&parsed);
    let ctx = trace_ctx(&trace);
    let (_, docs, failures) = convert_inputs(&pipeline, &parsed.positional, ctx)?;
    let discovery = pipeline
        .discover_schema_obs(&docs, ctx)
        .ok_or_else(|| runtime_err("empty corpus or root below support threshold"))?;
    write_trace(trace)?;
    println!("majority schema ({} paths):", discovery.schema.len());
    print!("{}", discovery.schema.render());
    println!();
    println!("derived DTD:");
    print!("{}", discovery.dtd.to_dtd_string());
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_run(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &["domain", "root", "sup", "ratio", "out-dir", "trace-out"],
        &["group-patterns"],
    )?;
    if parsed.positional.is_empty() {
        return Err(usage_err("run needs at least one input file"));
    }
    let out_dir = PathBuf::from(
        parsed
            .value("out-dir")
            .ok_or_else(|| usage_err("run needs --out-dir"))?,
    );
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| runtime_err(format!("cannot create out dir: {e}")))?;
    let pipeline = pipeline_from(&parsed)?;
    let trace = trace_from(&parsed);
    let ctx = trace_ctx(&trace);
    let (survivors, docs, failures) = convert_inputs(&pipeline, &parsed.positional, ctx)?;
    let discovery = pipeline
        .discover_schema_obs(&docs, ctx)
        .ok_or_else(|| runtime_err("empty corpus or root below support threshold"))?;
    std::fs::write(out_dir.join("schema.dtd"), discovery.dtd.to_dtd_string())
        .map_err(|e| runtime_err(e.to_string()))?;
    let mut conforming = 0usize;
    for (input, doc) in survivors.iter().zip(&docs) {
        let outcome = pipeline.map_document_obs(doc, &discovery, ctx);
        let stem = Path::new(input)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "doc".into());
        let path = out_dir.join(format!("{stem}.xml"));
        std::fs::write(&path, webre::xml::to_xml_pretty(&outcome.document))
            .map_err(|e| runtime_err(e.to_string()))?;
        if outcome.conforms {
            conforming += 1;
        }
    }
    write_trace(trace)?;
    println!(
        "wrote {} mapped documents + schema.dtd to {} ({conforming} conforming)",
        docs.len(),
        out_dir.display()
    );
    if failures > 0 {
        eprintln!("{failures} input(s) skipped due to read errors");
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

/// An optional `u32` edit-cost budget flag (absent means "no budget").
fn budget_flag(parsed: &Parsed, name: &str) -> Result<Option<u32>, CliError> {
    match parsed.value(name) {
        Some(v) => v.parse::<u32>().map(Some).map_err(|_| {
            usage_err(format!("--{name} expects a non-negative integer, got {v:?}"))
        }),
        None => Ok(None),
    }
}

fn cmd_map(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &["domain", "root", "sup", "ratio", "budget", "out-dir", "trace-out"],
        &["group-patterns", "no-filter", "json"],
    )?;
    if parsed.positional.is_empty() {
        return Err(usage_err("map needs at least one input file"));
    }
    let out_dir = parsed.value("out-dir").map(PathBuf::from);
    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| runtime_err(format!("cannot create out dir: {e}")))?;
    }
    let budget = budget_flag(&parsed, "budget")?;
    let planner = webre::map::MapPlanner {
        budget,
        filter: !parsed.switch("no-filter"),
        ..webre::map::MapPlanner::default()
    };
    let pipeline = pipeline_from(&parsed)?;
    let trace = trace_from(&parsed);
    let ctx = trace_ctx(&trace);
    let (survivors, docs, failures) = convert_inputs(&pipeline, &parsed.positional, ctx)?;
    let discovery = pipeline
        .discover_schema_obs(&docs, ctx)
        .ok_or_else(|| runtime_err("empty corpus or root below support threshold"))?;
    for (input, doc) in survivors.iter().zip(&docs) {
        let planned = pipeline.plan_document_obs(doc, &discovery, &planner, ctx);
        if parsed.switch("json") {
            // Exactly the body `POST /map` serves for this document.
            println!("{}", webre::map::render_json(&planned, budget));
        } else {
            let cost = match planned.cost {
                Some(cost) => cost.to_string(),
                None => "-".to_owned(),
            };
            println!(
                "{input}: tier={} cost={cost} lower-bound={} conforms={}",
                planned.tier.label(),
                planned.lower_bound,
                planned.conforms
            );
        }
        if let Some(dir) = &out_dir {
            if planned.tier != webre::map::MapTier::Rejected {
                let stem = Path::new(input)
                    .file_stem()
                    .map(|s| s.to_string_lossy().into_owned())
                    .unwrap_or_else(|| "doc".into());
                std::fs::write(
                    dir.join(format!("{stem}.xml")),
                    webre::xml::to_xml_pretty(&planned.document),
                )
                .map_err(|e| runtime_err(e.to_string()))?;
            }
        }
    }
    write_trace(trace)?;
    if failures > 0 {
        eprintln!("{failures} input(s) skipped due to read errors");
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &[
            "addr",
            "workers",
            "cache-cap",
            "queue-cap",
            "max-body",
            "deadline-ms",
            "read-timeout-ms",
            "idle-timeout-ms",
            "write-timeout-ms",
            "data-dir",
            "shards",
            "fsync-every",
            "compact-min",
            "map-budget",
            "domain",
            "root",
            "sup",
            "ratio",
            "trace-out",
        ],
        &["group-patterns"],
    )?;
    if !parsed.positional.is_empty() {
        return Err(usage_err(format!(
            "serve takes no positional arguments, got {:?}",
            parsed.positional
        )));
    }
    let defaults = ServeConfig::default();
    let ms = |parsed: &Parsed, name: &str, default: std::time::Duration| {
        Ok::<_, CliError>(std::time::Duration::from_millis(
            parsed.uint(name, default.as_millis() as usize)? as u64,
        ))
    };
    let config = ServeConfig {
        addr: parsed
            .value("addr")
            .unwrap_or(&defaults.addr)
            .to_owned(),
        workers: parsed.uint("workers", defaults.workers)?.max(1),
        queue_cap: parsed.uint("queue-cap", defaults.queue_cap)?.max(1),
        cache_cap: parsed.uint("cache-cap", defaults.cache_cap)?,
        max_body: parsed.uint("max-body", defaults.max_body)?,
        read_timeout: ms(&parsed, "read-timeout-ms", defaults.read_timeout)?,
        idle_timeout: ms(&parsed, "idle-timeout-ms", defaults.idle_timeout)?,
        write_timeout: ms(&parsed, "write-timeout-ms", defaults.write_timeout)?,
        // 0 (the default) disables deadline shedding entirely.
        deadline: match parsed.uint("deadline-ms", 0)? {
            0 => None,
            millis => Some(std::time::Duration::from_millis(millis as u64)),
        },
        data_dir: parsed.value("data-dir").map(PathBuf::from),
        shards: parsed.uint("shards", defaults.shards)?.max(1),
        sync_every: parsed.uint("fsync-every", defaults.sync_every)?.max(1),
        compact_min: parsed.uint("compact-min", defaults.compact_min)?.max(1),
        map_budget: budget_flag(&parsed, "map-budget")?,
    };
    let pipeline = pipeline_from(&parsed)?;
    let workers = config.workers;
    // A traced server tees every request's span tree into this recorder;
    // the export happens after drain so the file captures the full run.
    let trace_path = parsed.value("trace-out").map(str::to_owned);
    let trace = trace_path
        .as_ref()
        .map(|_| Arc::new(TraceRecorder::new(Box::new(MonotonicClock::new()))));
    let obs = ObsLayer::new(trace.clone());
    let server = Server::start_with_obs(config, pipeline.serve_engine(), obs)
        .map_err(|e| runtime_err(format!("cannot bind: {e}")))?;
    println!(
        "serving on http://{} ({workers} workers; POST /shutdown to drain)",
        server.local_addr()
    );
    server.join();
    println!("drained, all workers exited");
    if let (Some(path), Some(recorder)) = (trace_path, trace) {
        std::fs::write(&path, recorder.to_chrome_json())
            .map_err(|e| runtime_err(format!("cannot write trace {path}: {e}")))?;
        eprintln!("trace written to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

// --- webre load: fault-injecting load harness ------------------------

/// Kills the spawned server on drop (normal exit or error unwind) so a
/// failed load run never leaks a listening process.
struct LoadChild(std::process::Child);

impl Drop for LoadChild {
    fn drop(&mut self) {
        // webre::allow(dropped-result): best-effort teardown; the child may already be gone
        let _ = self.0.kill();
        // webre::allow(dropped-result): reap only; exit status of a killed child is meaningless
        let _ = self.0.wait();
    }
}

/// Spawns a `webre serve` child tuned for the load run and returns it
/// with its parsed address.
fn spawn_load_server(
    workers: usize,
    queue_cap: usize,
    cache_cap: usize,
    deadline_ms: usize,
    read_timeout_ms: usize,
    idle_timeout_ms: usize,
) -> Result<(LoadChild, String), CliError> {
    use std::io::BufRead;
    let exe = std::env::current_exe()
        .map_err(|e| runtime_err(format!("cannot locate own executable: {e}")))?;
    let mut child = std::process::Command::new(&exe)
        .arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--queue-cap")
        .arg(queue_cap.to_string())
        .arg("--cache-cap")
        .arg(cache_cap.to_string())
        .arg("--deadline-ms")
        .arg(deadline_ms.to_string())
        .arg("--read-timeout-ms")
        .arg(read_timeout_ms.to_string())
        .arg("--idle-timeout-ms")
        .arg(idle_timeout_ms.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| runtime_err(format!("cannot spawn the server under test: {e}")))?;
    let Some(stdout) = child.stdout.take() else {
        // webre::allow(dropped-result): spawn failed; kill is cleanup only
        let _ = child.kill();
        return Err(runtime_err("child stdout was not piped"));
    };
    let mut banner = String::new();
    if std::io::BufReader::new(stdout).read_line(&mut banner).is_err() || banner.is_empty() {
        // webre::allow(dropped-result): spawn failed; kill is cleanup only
        let _ = child.kill();
        return Err(runtime_err(
            "the server under test exited before announcing its address",
        ));
    }
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .ok_or_else(|| runtime_err(format!("unparseable serve banner: {banner:?}")))?
        .to_owned();
    Ok((LoadChild(child), addr))
}

fn cmd_load(args: &[String]) -> Result<ExitCode, CliError> {
    use webre::serve::load::{run as run_load, LoadConfig};
    let parsed = parse_flags(
        args,
        &[
            "addr",
            "connections",
            "loris",
            "duration",
            "workers",
            "queue-cap",
            "cache-cap",
            "deadline-ms",
            "read-timeout-ms",
            "idle-timeout-ms",
            "bench-out",
        ],
        &[],
    )?;
    if !parsed.positional.is_empty() {
        return Err(usage_err(format!(
            "load takes no positional arguments, got {:?}",
            parsed.positional
        )));
    }
    let connections = parsed.uint("connections", 1000)?.max(32);
    let loris = parsed.uint("loris", connections / 5)?;
    if loris + 32 > connections {
        return Err(usage_err(format!(
            "--loris {loris} leaves no room for the other client classes \
             under --connections {connections}"
        )));
    }
    let duration = std::time::Duration::from_secs(parsed.uint("duration", 5)?.max(1) as u64);
    let workers = parsed.uint("workers", 4)?.max(1);
    let queue_cap = parsed.uint("queue-cap", 256)?.max(1);
    let cache_cap = parsed.uint("cache-cap", 4096)?;
    let deadline_ms = parsed.uint("deadline-ms", 50)?;
    let read_timeout_ms = parsed.uint("read-timeout-ms", 1000)?.max(100);
    // Idle holders must survive the whole run, so the idle budget
    // defaults to comfortably past the driving window.
    let idle_timeout_ms = parsed.uint(
        "idle-timeout-ms",
        duration.as_millis() as usize * 2 + 10_000,
    )?;

    // External server (--addr) or a child spawned for the run.
    let (child, addr) = match parsed.value("addr") {
        Some(addr) => (None, addr.to_owned()),
        None => {
            let (child, addr) = spawn_load_server(
                workers,
                queue_cap,
                cache_cap,
                deadline_ms,
                read_timeout_ms,
                idle_timeout_ms,
            )?;
            (Some(child), addr)
        }
    };

    // Bodies from the synthetic corpus: one hot document (pre-warmed
    // into the cache by the harness), a cold template mutated per
    // request, and an identity-probe document checked byte-for-byte
    // against the batch pipeline after the storm.
    let generator = CorpusGenerator::new(41);
    let hot_body = generator.generate_one(0).html.into_bytes();
    let cold_template = generator.generate_one(1).html.into_bytes();
    let probe_html = generator.generate_one(2).html;
    let expected = Pipeline::resume_domain()
        .serve_engine()
        .convert_to_xml(&probe_html)
        .2
        .into_bytes();

    println!(
        "load: {connections} connections ({loris} loris) against {addr} for {}s \
         (deadline {deadline_ms}ms, read budget {read_timeout_ms}ms)",
        duration.as_secs()
    );
    let config = LoadConfig {
        addr: addr.clone(),
        connections,
        loris,
        duration,
        hot_body,
        cold_template,
        max_body: 1 << 20,
        read_timeout: std::time::Duration::from_millis(read_timeout_ms as u64),
        identity_probe: Some((probe_html.into_bytes(), expected)),
    };
    let report = run_load(&config).map_err(runtime_err)?;

    // Drain the child gracefully so its corpus/obs teardown runs.
    if child.is_some() {
        if let Ok(mut stream) = std::net::TcpStream::connect(&addr) {
            // webre::allow(dropped-result): best-effort drain; the Drop guard kills regardless
            let _ = webre_substrate::http::write_request(
                &mut stream,
                "POST",
                "/shutdown",
                b"",
                false,
            );
            // webre::allow(dropped-result): best-effort drain; the Drop guard kills regardless
            let _ = webre_substrate::http::read_response(
                &mut std::io::BufReader::new(stream),
                1 << 20,
            );
        }
    }
    drop(child);

    println!("  {:<28} {:>12}", "metric", "value");
    let rows: &[(&str, String)] = &[
        ("connections opened", report.connections.to_string()),
        ("requests ok", report.requests_ok.to_string()),
        ("p50 / p99 / p99.9 µs", format!(
            "{} / {} / {}",
            report.p50_us, report.p99_us, report.p999_us
        )),
        ("healthz p99 µs", report.healthz_p99_us.to_string()),
        ("hot convert rps", report.hot_rps.to_string()),
        ("cold converts", report.cold_requests.to_string()),
        ("shed (client 429s)", report.shed_client_429.to_string()),
        ("shed (server deadline)", report.shed_server.to_string()),
        ("shed (server queue-full)", report.rejected_server.to_string()),
        ("loris reaped", format!(
            "{}/{} (p99 {}ms)",
            report.loris_reaped, report.loris_total, report.loris_reap_p99_ms
        )),
        ("reaped read/idle/write", format!(
            "{}/{}/{}",
            report.reaped_read, report.reaped_idle, report.reaped_write
        )),
        ("oversized 413s", format!(
            "{}/{}",
            report.oversized_413, report.oversized_total
        )),
        ("abrupt disconnects", report.abrupt.to_string()),
        ("idle still open", format!(
            "{}/{}",
            report.idle_open_after, report.idle_total
        )),
        ("stalled workers", report.stalled_workers.to_string()),
    ];
    for (name, value) in rows {
        println!("  {name:<28} {value:>12}");
    }

    // Hard postconditions: any failure here is the server misbehaving
    // under load, and the run must say so with a nonzero exit.
    let mut failures = Vec::new();
    if report.stalled_workers != 0 {
        failures.push(format!(
            "{} request(s) still in flight after quiesce — a worker is hung",
            report.stalled_workers
        ));
    }
    if report.loris_reaped != report.loris_total {
        failures.push(format!(
            "only {}/{} loris connections were reaped",
            report.loris_reaped, report.loris_total
        ));
    }
    if report.loris_reap_p99_ms > 2 * read_timeout_ms as u64 {
        failures.push(format!(
            "loris reap p99 {}ms exceeds twice the {read_timeout_ms}ms read budget",
            report.loris_reap_p99_ms
        ));
    }
    if !report.shed_accounted {
        failures.push(format!(
            "shed accounting mismatch: clients saw {} 429s, the server \
             recorded {} shed + {} queue-full",
            report.shed_client_429, report.shed_server, report.rejected_server
        ));
    }
    if report.idle_open_after != report.idle_total {
        failures.push(format!(
            "{}/{} idle keep-alive connections survived the run",
            report.idle_open_after, report.idle_total
        ));
    }
    if report.oversized_413 != report.oversized_total {
        failures.push(format!(
            "{}/{} oversized uploads got the early 413",
            report.oversized_413, report.oversized_total
        ));
    }
    if !report.byte_identical {
        failures.push("post-storm /convert output diverged from the batch pipeline".to_owned());
    }

    if let Some(path) = parsed.value("bench-out") {
        use std::io::Write as _;
        let record = format!(
            "{{\"name\":\"serve_load\",\"connections\":{},\"loris\":{},\"duration_s\":{},\
             \"workers\":{workers},\"deadline_ms\":{deadline_ms},\
             \"requests_ok\":{},\"p50_us\":{},\"p99_us\":{},\"p999_us\":{},\
             \"healthz_p99_us\":{},\"hot_rps\":{},\"cold_requests\":{},\
             \"shed_client_429\":{},\"shed_server\":{},\"rejected_server\":{},\
             \"shed_accounted\":{},\"reaped_read\":{},\"reaped_idle\":{},\"reaped_write\":{},\
             \"loris_total\":{},\"loris_reaped\":{},\"loris_reap_p99_ms\":{},\
             \"oversized_413\":{},\"oversized_total\":{},\"idle_open_after\":{},\
             \"idle_total\":{},\"stalled_workers\":{},\"byte_identical\":{}}}",
            report.connections,
            report.loris_total,
            duration.as_secs(),
            report.requests_ok,
            report.p50_us,
            report.p99_us,
            report.p999_us,
            report.healthz_p99_us,
            report.hot_rps,
            report.cold_requests,
            report.shed_client_429,
            report.shed_server,
            report.rejected_server,
            report.shed_accounted,
            report.reaped_read,
            report.reaped_idle,
            report.reaped_write,
            report.loris_total,
            report.loris_reaped,
            report.loris_reap_p99_ms,
            report.oversized_413,
            report.oversized_total,
            report.idle_open_after,
            report.idle_total,
            report.stalled_workers,
            report.byte_identical,
        );
        let mut out = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| runtime_err(format!("cannot open {path}: {e}")))?;
        writeln!(out, "{record}")
            .map_err(|e| runtime_err(format!("cannot write {path}: {e}")))?;
        println!("==> serve_load record appended to {path}");
    }

    if failures.is_empty() {
        println!("load: all postconditions held");
        Ok(ExitCode::SUCCESS)
    } else {
        Err(runtime_err(format!(
            "load postconditions failed:\n  - {}",
            failures.join("\n  - ")
        )))
    }
}

/// Per-stage aggregate over one or more trace files.
#[derive(Default)]
struct StageSummary {
    spans: u64,
    total_us: f64,
    max_us: f64,
}

fn cmd_stats(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &[], &[])?;
    if parsed.positional.is_empty() {
        return Err(usage_err("stats needs at least one trace file"));
    }
    // Keyed by first-seen name; printed in pipeline order (stage::ALL)
    // with uncatalogued names, if any, trailing in file order.
    let mut names: Vec<String> = Vec::new();
    let mut stages: Vec<StageSummary> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for path in &parsed.positional {
        let doc = Json::parse(&read(path)?)
            .map_err(|e| runtime_err(format!("bad trace file {path}: {e}")))?;
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or_else(|| runtime_err(format!("{path}: no traceEvents array")))?;
        for event in events {
            let Some(name) = event.get("name").and_then(Json::as_str) else {
                continue;
            };
            let dur = event.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
            let idx = match names.iter().position(|n| n == name) {
                Some(idx) => idx,
                None => {
                    names.push(name.to_owned());
                    stages.push(StageSummary::default());
                    names.len() - 1
                }
            };
            let summary = &mut stages[idx];
            summary.spans += 1;
            summary.total_us += dur;
            summary.max_us = summary.max_us.max(dur);
            let Some(args) = event.get("args") else {
                continue;
            };
            for counter in webre::obs::counter::ALL.iter().copied() {
                let Some(n) = args.get(counter).and_then(Json::as_f64) else {
                    continue;
                };
                match counters.iter_mut().find(|(k, _)| k == counter) {
                    Some(entry) => entry.1 += n as u64,
                    None => counters.push((counter.to_owned(), n as u64)),
                }
            }
        }
    }
    let order: Vec<usize> = webre::obs::stage::ALL
        .iter()
        .filter_map(|stage| names.iter().position(|n| n == stage))
        .chain(
            (0..names.len()).filter(|&i| webre::obs::stage::index_of(&names[i]).is_none()),
        )
        .collect();
    println!(
        "{:<24} {:>8} {:>12} {:>10} {:>10}",
        "stage", "spans", "total(us)", "mean(us)", "max(us)"
    );
    for i in order {
        let s = &stages[i];
        let mean = if s.spans == 0 {
            0.0
        } else {
            s.total_us / s.spans as f64
        };
        println!(
            "{:<24} {:>8} {:>12.1} {:>10.1} {:>10.1}",
            names[i], s.spans, s.total_us, mean, s.max_us
        );
    }
    if !counters.is_empty() {
        println!();
        println!("{:<24} {:>8}", "counter", "total");
        for counter in webre::obs::counter::ALL.iter().copied() {
            if let Some((name, total)) = counters.iter().find(|(k, _)| k == counter) {
                println!("{name:<24} {total:>8}");
            }
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &["dtd"], &[])?;
    let dtd_path = parsed
        .value("dtd")
        .ok_or_else(|| usage_err("validate needs --dtd"))?;
    let dtd = webre::xml::dtd::parse_dtd(&read(dtd_path)?)
        .map_err(|e| runtime_err(format!("bad DTD {dtd_path}: {e}")))?;
    if parsed.positional.is_empty() {
        return Err(usage_err("validate needs at least one XML file"));
    }
    let mut failures = 0usize;
    for path in &parsed.positional {
        let doc = webre::xml::parse_xml(&read(path)?)
            .map_err(|e| runtime_err(format!("bad XML {path}: {e}")))?;
        let errors = webre::xml::validate(&doc, &dtd);
        if errors.is_empty() {
            println!("{path}: conforms");
        } else {
            failures += 1;
            println!("{path}: {} violations", errors.len());
            for e in errors.iter().take(5) {
                println!("  {e}");
            }
        }
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_check(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &["seed", "iters", "only"], &[])?;
    if !parsed.positional.is_empty() {
        return Err(usage_err(format!(
            "check takes no positional arguments, got {:?}",
            parsed.positional
        )));
    }
    let seed: u64 = parsed
        .value("seed")
        .unwrap_or("1")
        .parse()
        .map_err(|_| usage_err("--seed expects an integer"))?;
    let iters: u64 = parsed
        .value("iters")
        .unwrap_or("200")
        .parse()
        .map_err(|_| usage_err("--iters expects an integer"))?;
    let config = webre_check::CheckConfig {
        seed,
        iters,
        only: parsed.value("only").map(str::to_owned),
    };
    let report = webre_check::run(&config);
    if report.oracles.is_empty() {
        let known: Vec<&str> = webre_check::runner::ORACLES
            .iter()
            .map(|(name, _, _)| *name)
            .collect();
        return Err(runtime_err(format!(
            "no oracle named {:?}; known oracles: {}",
            config.only.as_deref().unwrap_or(""),
            known.join(", ")
        )));
    }
    print!("{}", report.render());
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_lint(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &["only", "format", "root"],
        &["deny-warnings", "list-rules"],
    )?;
    let rules = webre_lint::all_rules();
    if parsed.switch("list-rules") {
        for rule in &rules {
            println!("{:<24} {}", rule.id(), rule.description());
        }
        return Ok(ExitCode::SUCCESS);
    }
    let format = parsed.value("format").unwrap_or("text");
    if !matches!(format, "text" | "json") {
        return Err(usage_err(format!(
            "--format expects text or json, got {format:?}"
        )));
    }
    let mut config = webre_lint::LintConfig::default();
    if let Some(only) = parsed.value("only") {
        if !rules.iter().any(|r| r.id() == only) {
            let known: Vec<&str> = rules.iter().map(|r| r.id()).collect();
            return Err(runtime_err(format!(
                "no rule named {only:?}; known rules: {}",
                known.join(", ")
            )));
        }
        config.only = Some(only.to_owned());
    }
    let root = match parsed.value("root") {
        Some(dir) => PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir()
                .map_err(|e| runtime_err(format!("cannot resolve current dir: {e}")))?;
            webre_lint::Workspace::find_root(&cwd).ok_or_else(|| {
                runtime_err("no workspace root found above the current directory; pass --root")
            })?
        }
    };
    let diagnostics = if parsed.positional.is_empty() {
        webre_lint::lint_workspace(&root, &config)
    } else {
        let paths: Vec<PathBuf> = parsed.positional.iter().map(PathBuf::from).collect();
        webre_lint::lint_paths(&root, &paths, &config)
    }
    .map_err(|e| runtime_err(format!("lint failed: {e}")))?;
    match format {
        "json" => print!("{}", webre_lint::render_json(&diagnostics)),
        _ => {
            print!("{}", webre_lint::render_text(&diagnostics));
            if diagnostics.is_empty() {
                eprintln!("lint: no findings");
            } else {
                eprintln!("lint: {} finding(s)", diagnostics.len());
            }
        }
    }
    Ok(if diagnostics.is_empty() || !parsed.switch("deny-warnings") {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_generate(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(args, &["count", "seed", "out-dir"], &[])?;
    let count: usize = parsed
        .value("count")
        .ok_or_else(|| usage_err("generate needs --count"))?
        .parse()
        .map_err(|_| usage_err("--count expects an integer"))?;
    let seed: u64 = parsed
        .value("seed")
        .unwrap_or("2002")
        .parse()
        .map_err(|_| usage_err("--seed expects an integer"))?;
    let out_dir = PathBuf::from(
        parsed
            .value("out-dir")
            .ok_or_else(|| usage_err("generate needs --out-dir"))?,
    );
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| runtime_err(format!("cannot create out dir: {e}")))?;
    let generator = CorpusGenerator::new(seed);
    for doc in generator.generate(count) {
        std::fs::write(out_dir.join(format!("resume{:04}.html", doc.id)), &doc.html)
            .map_err(|e| runtime_err(e.to_string()))?;
        std::fs::write(
            out_dir.join(format!("resume{:04}.truth.xml", doc.id)),
            webre::xml::to_xml_pretty(&doc.truth),
        )
        .map_err(|e| runtime_err(e.to_string()))?;
    }
    println!("wrote {count} documents (+ ground truth) to {}", out_dir.display());
    Ok(ExitCode::SUCCESS)
}

// --- webre scale: multi-process sharded-ingest demonstration ----------

/// One spawned `webre serve` child plus its keep-alive client
/// connection. The child's stdout pipe stays open for its lifetime so
/// its drain banner never hits a closed pipe.
struct ScaleNode {
    child: std::process::Child,
    #[allow(dead_code)]
    stdout: std::io::BufReader<std::process::ChildStdout>,
    addr: String,
    writer: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
    /// Pipelined requests written but not yet answered.
    pending: usize,
}

/// Opens a keep-alive connection to a scale instance.
fn scale_connect(
    addr: &str,
) -> Result<(std::net::TcpStream, std::io::BufReader<std::net::TcpStream>), CliError> {
    let stream = std::net::TcpStream::connect(addr)
        .map_err(|e| runtime_err(format!("cannot connect to instance at {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(120)))
        .map_err(|e| runtime_err(format!("cannot set read timeout: {e}")))?;
    let writer = stream
        .try_clone()
        .map_err(|e| runtime_err(format!("cannot clone stream: {e}")))?;
    Ok((writer, std::io::BufReader::new(stream)))
}

/// The fleet guard: on drop (normal exit or error unwind) every child
/// that has not already exited is killed and reaped, so a failed run
/// never leaks listening processes.
struct Fleet(Vec<ScaleNode>);

impl Drop for Fleet {
    fn drop(&mut self) {
        for node in &mut self.0 {
            // webre::allow(dropped-result): best-effort teardown; the child may already be gone
            let _ = node.child.kill();
            // webre::allow(dropped-result): reap only; exit status of a killed child is meaningless
            let _ = node.child.wait();
        }
    }
}

/// Spawns one `webre serve` child on an ephemeral port, parses the
/// "serving on http://HOST:PORT" banner, and opens one keep-alive
/// connection to it. With one worker per child, that single connection
/// pins the worker, so every request to the instance must flow through
/// it — exactly the pipelined discipline the sender uses.
fn spawn_scale_node(
    exe: &Path,
    index: usize,
    workers: usize,
    shards: usize,
    data_dir: Option<&Path>,
) -> Result<ScaleNode, CliError> {
    use std::io::BufRead;
    let mut command = std::process::Command::new(exe);
    command
        .arg("serve")
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--workers")
        .arg(workers.to_string())
        .arg("--queue-cap")
        .arg("256")
        .arg("--cache-cap")
        .arg("16")
        .stdout(std::process::Stdio::piped());
    if let Some(dir) = data_dir {
        // Bulk-load posture: big fsync batches, compaction off. A
        // mid-stream compaction rewrites the whole shard snapshot, and
        // past ~100k docs that stall outlives the sibling instances'
        // keep-alive read timeout; the raw WAL for a million stream docs
        // is only ~150 MB, so deferring compaction to the next restart
        // is the cheaper trade. Compaction itself is exercised by the
        // persistence tests and the verify-script smoke run.
        command
            .arg("--data-dir")
            .arg(dir.join(format!("instance-{index}")))
            .arg("--shards")
            .arg(shards.to_string())
            .arg("--fsync-every")
            .arg("2048")
            .arg("--compact-min")
            .arg("1000000000");
    }
    let mut child = command
        .spawn()
        .map_err(|e| runtime_err(format!("cannot spawn serve instance {index}: {e}")))?;
    let Some(stdout) = child.stdout.take() else {
        // webre::allow(dropped-result): spawn failed; kill is cleanup only
        let _ = child.kill();
        return Err(runtime_err("child stdout was not piped"));
    };
    let mut stdout = std::io::BufReader::new(stdout);
    let mut banner = String::new();
    if stdout.read_line(&mut banner).is_err() || banner.is_empty() {
        // webre::allow(dropped-result): spawn failed; kill is cleanup only
        let _ = child.kill();
        return Err(runtime_err(format!(
            "serve instance {index} exited before announcing its address"
        )));
    }
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .ok_or_else(|| runtime_err(format!("unparseable serve banner: {banner:?}")))?
        .to_owned();
    let (writer, reader) = scale_connect(&addr)?;
    Ok(ScaleNode {
        child,
        stdout,
        addr,
        writer,
        reader,
        pending: 0,
    })
}

/// Reads every pipelined response still owed by a node; each must be a
/// 202 accretion acknowledgment.
fn drain_scale_node(node: &mut ScaleNode) -> Result<(), CliError> {
    while node.pending > 0 {
        let response = webre_substrate::http::read_response(&mut node.reader, 1 << 20)
            .map_err(|e| runtime_err(format!("ingest response: {e}")))?;
        if response.status != 202 {
            return Err(runtime_err(format!(
                "ingest rejected: {} {}",
                response.status,
                response.text()
            )));
        }
        node.pending -= 1;
    }
    Ok(())
}

/// One request/response exchange on a node's keep-alive connection.
/// Only valid when no pipelined responses are outstanding. If the
/// server closed the idle connection (its keep-alive read timeout can
/// fire while a slow request to a *sibling* instance is in flight),
/// the exchange reconnects once and retries — safe for these
/// idempotent GETs, never used on the accretion path.
fn scale_roundtrip(
    node: &mut ScaleNode,
    method: &str,
    target: &str,
) -> Result<webre_substrate::http::ParsedResponse, CliError> {
    for attempt in 0..2 {
        let sent = webre_substrate::http::write_request(
            &mut node.writer,
            method,
            target,
            b"",
            true,
        );
        if sent.is_ok() {
            match webre_substrate::http::read_response(&mut node.reader, 256 << 20) {
                // A 408 is the server timing out the *idle* connection:
                // it was queued before our request arrived, so the
                // request was never processed. Treat it like a closed
                // connection — reconnect and resend.
                Ok(response) if response.status == 408 && attempt == 0 => {}
                Ok(response) => return Ok(response),
                Err(e) if attempt == 1 => {
                    return Err(runtime_err(format!("{method} {target}: {e}")));
                }
                Err(_) => {}
            }
        } else if attempt == 1 {
            return Err(runtime_err(format!(
                "{method} {target}: {}",
                sent.expect_err("checked")
            )));
        }
        let (writer, reader) = scale_connect(&node.addr)?;
        node.writer = writer;
        node.reader = reader;
    }
    unreachable!("loop returns on success or second failure")
}

/// Fetches every instance's path table and merges them — the
/// distributed corpus seen through the merge algebra.
fn merged_remote_table(fleet: &mut Fleet) -> Result<webre_schema::PathTable, CliError> {
    use webre_substrate::json::FromJson;
    let mut tables = Vec::with_capacity(fleet.0.len());
    for node in &mut fleet.0 {
        let response = scale_roundtrip(node, "GET", "/corpus/table")?;
        if response.status != 200 {
            return Err(runtime_err(format!(
                "/corpus/table returned {}",
                response.status
            )));
        }
        let value = Json::parse(response.text().trim())
            .map_err(|e| runtime_err(format!("bad /corpus/table JSON: {e}")))?;
        tables.push(
            webre_schema::PathTable::from_json(&value)
                .map_err(|e| runtime_err(format!("bad /corpus/table payload: {e}")))?,
        );
    }
    Ok(webre_schema::PathTable::merged(tables.iter()))
}

fn cmd_scale(args: &[String]) -> Result<ExitCode, CliError> {
    let parsed = parse_flags(
        args,
        &[
            "instances",
            "docs",
            "seed",
            "batch",
            "checkpoints",
            "data-dir",
            "shards",
            "workers",
        ],
        &[],
    )?;
    if !parsed.positional.is_empty() {
        return Err(usage_err(format!(
            "scale takes no positional arguments, got {:?}",
            parsed.positional
        )));
    }
    let instances = parsed.uint("instances", 2)?.max(1);
    let docs = parsed.uint("docs", 100_000)?.max(1) as u64;
    let seed = parsed.uint("seed", 2002)? as u64;
    let batch = parsed.uint("batch", 64)?.max(1);
    let checkpoints = parsed.uint("checkpoints", 4)?.max(1) as u64;
    let workers = parsed.uint("workers", 1)?.max(1);
    let shards = parsed.uint("shards", 2)?.max(1);
    let data_dir = parsed.value("data-dir").map(PathBuf::from);
    let exe = std::env::current_exe()
        .map_err(|e| runtime_err(format!("cannot locate own executable: {e}")))?;
    if let Some(dir) = &data_dir {
        // A fresh run must not replay a previous run's corpus.
        if dir.exists() {
            std::fs::remove_dir_all(dir)
                .map_err(|e| runtime_err(format!("cannot clear {}: {e}", dir.display())))?;
        }
    }

    let mut fleet = Fleet(Vec::with_capacity(instances));
    for k in 0..instances {
        fleet
            .0
            .push(spawn_scale_node(&exe, k, workers, shards, data_dir.as_deref())?);
    }
    eprintln!(
        "scale: {instances} instance(s) up, streaming {docs} docs (batch {batch}, {checkpoints} checkpoint(s){})",
        if data_dir.is_some() { ", durable" } else { "" }
    );

    // Ingest: route each generated document by content hash through the
    // consistent-hash ring, pipelining `batch` requests per connection,
    // while maintaining the local batch reference table.
    let stream = webre_corpus::XmlStream::new(seed);
    let ring = webre_substrate::ring::HashRing::with_nodes(instances as u32);
    let mut reference = webre_schema::PathTable::new();
    // The stream draws from a few hundred distinct document shapes, so
    // the reference table can memoize extraction per shape instead of
    // re-parsing every document — the client shares one core with the
    // whole fleet and its parse time would otherwise rival the servers'.
    let mut extracted: std::collections::BTreeMap<String, webre_schema::DocPaths> =
        std::collections::BTreeMap::new();
    let checkpoint_every = (docs / checkpoints).max(1);
    let mut checks = 0u64;
    let ingest_start = std::time::Instant::now();
    for i in 0..docs {
        let xml = stream.doc(i);
        let hash = webre_substrate::wal::checksum(xml.as_bytes());
        let Some(node) = ring.route(hash) else {
            return Err(runtime_err("empty hash ring"));
        };
        let node = &mut fleet.0[node as usize];
        webre_substrate::http::write_request(
            &mut node.writer,
            "POST",
            "/corpus/xml",
            xml.as_bytes(),
            true,
        )
        .map_err(|e| runtime_err(format!("ingest write: {e}")))?;
        node.pending += 1;
        if node.pending >= batch {
            drain_scale_node(node)?;
        }
        match extracted.get(&xml) {
            Some(paths) => reference.add_doc(paths),
            None => {
                let paths = webre_schema::extract_paths(
                    &webre::xml::parse_xml(&xml)
                        .map_err(|e| runtime_err(format!("generated doc {i} is not XML: {e}")))?,
                );
                reference.add_doc(&paths);
                extracted.insert(xml, paths);
            }
        }
        if (i + 1) % checkpoint_every == 0 || i + 1 == docs {
            for node in &mut fleet.0 {
                drain_scale_node(node)?;
            }
            let merged = merged_remote_table(&mut fleet)?;
            if merged != reference {
                return Err(runtime_err(format!(
                    "checkpoint at doc {}: merged shard tables diverge from the batch reference",
                    i + 1
                )));
            }
            checks += 1;
            eprintln!(
                "scale: checkpoint {}/{} at {} docs — merged table ≡ batch reference",
                checks,
                checkpoints,
                i + 1
            );
        }
    }
    let ingest_s = ingest_start.elapsed().as_secs_f64();
    let docs_per_s = docs as f64 / ingest_s.max(f64::EPSILON);

    // Time-to-fresh-schema: every instance mines its share from scratch
    // (accretion invalidated the cached snapshot on every doc).
    let schema_start = std::time::Instant::now();
    for node in &mut fleet.0 {
        let response = scale_roundtrip(node, "GET", "/schema")?;
        if response.status != 200 {
            return Err(runtime_err(format!("/schema returned {}", response.status)));
        }
    }
    let schema_s = schema_start.elapsed().as_secs_f64();

    // The mined view of the merged tables must match mining the local
    // reference — the identity the shard-merge-vs-batch oracle checks,
    // here across real process boundaries.
    let merged = merged_remote_table(&mut fleet)?;
    let miner = FrequentPathMiner::default();
    let agreement = match (miner.mine_view(&reference), miner.mine_view(&merged)) {
        (None, None) => true,
        (Some(a), Some(b)) => a.schema.render() == b.schema.render(),
        _ => false,
    };
    if !agreement {
        return Err(runtime_err(
            "schema mined from merged shard tables diverges from the batch schema",
        ));
    }

    // Orderly shutdown: drain each instance over its own connection.
    // The roundtrip's reconnect-and-retry matters here: an undelivered
    // drain request would leave `wait` below blocking forever.
    for node in &mut fleet.0 {
        let response = scale_roundtrip(node, "POST", "/shutdown")?;
        if response.status != 200 {
            return Err(runtime_err(format!(
                "/shutdown returned {}",
                response.status
            )));
        }
    }
    for (k, node) in fleet.0.iter_mut().enumerate() {
        let status = node
            .child
            .wait()
            .map_err(|e| runtime_err(format!("waiting for instance {k}: {e}")))?;
        if !status.success() {
            return Err(runtime_err(format!("instance {k} exited with {status}")));
        }
    }

    // Durable runs: reopen every instance's store and time the replay.
    let (replay_s, replay_docs) = match &data_dir {
        None => (0.0, 0usize),
        Some(dir) => {
            let replay_start = std::time::Instant::now();
            let mut total = 0usize;
            for k in 0..instances {
                let config = webre::serve::persist::StoreConfig {
                    data_dir: dir.join(format!("instance-{k}")),
                    shards,
                    sync_every: 256,
                    compact_min: 1024,
                };
                let (_, corpus, report) = webre::serve::persist::CorpusStore::open(&config)
                    .map_err(|e| runtime_err(format!("replay of instance {k} failed: {e}")))?;
                if !report.warnings.is_empty() {
                    return Err(runtime_err(format!(
                        "replay of instance {k} warned: {:?}",
                        report.warnings
                    )));
                }
                total += corpus.len();
            }
            (replay_start.elapsed().as_secs_f64(), total)
        }
    };
    if data_dir.is_some() && replay_docs as u64 != docs {
        return Err(runtime_err(format!(
            "replay recovered {replay_docs} docs, expected {docs}"
        )));
    }

    eprintln!(
        "scale: {docs} docs through {instances} instance(s) in {ingest_s:.2}s ({docs_per_s:.0} docs/s); \
         fresh schema in {schema_s:.3}s{}",
        if data_dir.is_some() {
            format!("; replayed {replay_docs} docs in {replay_s:.2}s")
        } else {
            String::new()
        }
    );
    let summary = Json::Obj(vec![
        ("bench".to_owned(), Json::Str("corpus_scale".to_owned())),
        ("docs".to_owned(), Json::Num(docs as f64)),
        ("instances".to_owned(), Json::Num(instances as f64)),
        ("shards".to_owned(), Json::Num(shards as f64)),
        ("ingest_s".to_owned(), Json::Num(ingest_s)),
        ("docs_per_s".to_owned(), Json::Num(docs_per_s)),
        ("schema_s".to_owned(), Json::Num(schema_s)),
        ("checkpoints".to_owned(), Json::Num(checks as f64)),
        ("agreement".to_owned(), Json::Bool(true)),
        ("durable".to_owned(), Json::Bool(data_dir.is_some())),
        ("replay_s".to_owned(), Json::Num(replay_s)),
        ("replay_docs".to_owned(), Json::Num(replay_docs as f64)),
    ]);
    println!("{summary}");
    Ok(ExitCode::SUCCESS)
}
