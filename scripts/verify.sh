#!/usr/bin/env bash
# Tier-1 verification: hermetic build + static analysis + full test suite
# + dependency guard.
#
# The workspace must build and test offline with zero registry crates; the
# guard fails if any non-workspace dependency reappears in Cargo.lock (for
# example, someone adding `rand` back instead of using webre-substrate).

set -euo pipefail
cd "$(dirname "$0")/.."

# --workspace matters: the root manifest is both a workspace and the
# webre-suite package, so a bare `cargo build` only builds webre-suite
# and would leave ./target/release/webre stale (or missing).
echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> webre lint --deny-warnings (in-tree static analysis)"
./target/release/webre lint --deny-warnings
# The registry must expose the full rule pack: the CLI expands
# --list-rules from the engine, so a rule accidentally dropped from the
# registry would otherwise stop gating without a trace. The dataflow
# rules (lock-across-blocking, unjoined-thread, unbounded-request-alloc)
# ride the same registry as the original six.
./target/release/webre lint --list-rules > /tmp/webre-rules.$$
rule_count=$(wc -l < /tmp/webre-rules.$$)
[ "$rule_count" -eq 9 ] \
    || { echo "FAIL: lint --list-rules lists $rule_count rules (expected 9)" >&2; cat /tmp/webre-rules.$$ >&2; rm -f /tmp/webre-rules.$$; exit 1; }
for rule in dropped-result lock-across-blocking lock-order no-wall-clock \
            nondet-iter panic-in-hot-path std-only unbounded-request-alloc \
            unjoined-thread; do
    grep -q "^$rule " /tmp/webre-rules.$$ \
        || { echo "FAIL: lint rule $rule missing from --list-rules" >&2; rm -f /tmp/webre-rules.$$; exit 1; }
done
rm -f /tmp/webre-rules.$$
echo "    workspace clean under --deny-warnings; all 9 rules registered"

echo "==> cargo test -q"
cargo test -q

echo "==> webre check (bounded differential/fuzz oracle smoke run)"
./target/release/webre check --iters 50 --seed 1

echo "==> matcher smoke gate (automaton vs naive scanner equivalence)"
# The conversion hot path matches concepts with the Aho-Corasick
# automaton; the naive per-instance scanner is the reference. A deeper
# run than the battery above catches tie-break divergences early.
./target/release/webre check --only matcher-vs-naive --iters 200 --seed 1

echo "==> shard-merge oracle gate (per-shard mining + merge ≡ batch mining)"
# The durable corpus splits documents across shards; this differential
# oracle holds per-shard accretion + table merge to byte-equality with
# mining the unsharded corpus, across random shard counts and routings.
./target/release/webre check --only shard-merge-vs-batch --iters 100 --seed 1

echo "==> map oracle gate (served /map ≡ batch planner, byte-identical)"
# POST /map answered under concurrent clients must match the sequential
# batch planner byte-for-byte — mapped XML, canonical edit script, cost
# and tier — across randomized reject budgets.
./target/release/webre check --only map-vs-batch --iters 100 --seed 1

echo "==> scale smoke gate (multi-process sharded ingest, durable, merged ≡ batch)"
scale_dir=$(mktemp -d)
trap 'rm -rf "$scale_dir"' EXIT
./target/release/webre scale --instances 2 --docs 5000 --checkpoints 2 \
    --data-dir "$scale_dir/corpus" > "$scale_dir/scale.json"
grep -q '"agreement":true' "$scale_dir/scale.json" \
    || { echo "FAIL: scale run did not report checkpoint agreement" >&2; cat "$scale_dir/scale.json" >&2; exit 1; }
grep -q '"replay_docs":5000' "$scale_dir/scale.json" \
    || { echo "FAIL: scale replay recovered the wrong doc count" >&2; cat "$scale_dir/scale.json" >&2; exit 1; }
trap - EXIT
rm -rf "$scale_dir"
echo "    multi-process ingest, checkpoint agreement and WAL replay all verified"

echo "==> serve smoke gate (HTTP round-trip against the release binary)"
smoke_dir=$(mktemp -d)
serve_log="$smoke_dir/serve.log"
./target/release/webre serve --addr 127.0.0.1:0 --workers 2 > "$serve_log" &
serve_pid=$!
cleanup_serve() { kill "$serve_pid" 2>/dev/null || true; rm -rf "$smoke_dir"; }
trap cleanup_serve EXIT
# The banner line carries the ephemeral port: "serving on http://HOST:PORT (...)"
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's|.*http://[^:]*:\([0-9]*\).*|\1|p' "$serve_log")
    [ -n "$port" ] && break
    sleep 0.05
done
[ -n "$port" ] || { echo "FAIL: serve did not print its address" >&2; cat "$serve_log" >&2; exit 1; }
base="http://127.0.0.1:$port"
# Conversion over HTTP must be byte-identical to the committed golden.
curl -sf -X POST --data-binary @tests/fixtures/resume_clean.html "$base/convert" -o "$smoke_dir/got.xml"
diff -u tests/fixtures/resume_clean.expected.xml "$smoke_dir/got.xml" \
    || { echo "FAIL: served XML diverges from golden fixture" >&2; exit 1; }
# A repeat must be answered from the cache; /metrics proves it.
curl -sf -X POST --data-binary @tests/fixtures/resume_clean.html "$base/convert" -o /dev/null
curl -sf "$base/metrics" > "$smoke_dir/metrics.txt"
grep -q '^cache_hits_total [1-9]' "$smoke_dir/metrics.txt" \
    || { echo "FAIL: no cache hit recorded in /metrics" >&2; cat "$smoke_dir/metrics.txt" >&2; exit 1; }
grep -q '^requests_total{endpoint="convert"} 2' "$smoke_dir/metrics.txt" \
    || { echo "FAIL: convert request count wrong in /metrics" >&2; exit 1; }
# Mapping as a service: before any corpus, /map must 404; after accreting
# the golden fixture, POST /map must return exactly the bytes the batch
# planner (`webre map --json`) produces over the same one-document corpus.
map_status=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    --data-binary @tests/fixtures/resume_clean.html "$base/map")
[ "$map_status" = "404" ] \
    || { echo "FAIL: /map before any schema answered $map_status (expected 404)" >&2; exit 1; }
curl -sf -X POST --data-binary @tests/fixtures/resume_clean.html "$base/corpus/docs" > /dev/null
curl -sf -X POST --data-binary @tests/fixtures/resume_clean.html "$base/map" -o "$smoke_dir/served-map.json"
./target/release/webre map tests/fixtures/resume_clean.html --json > "$smoke_dir/batch-map.json"
diff -u "$smoke_dir/batch-map.json" "$smoke_dir/served-map.json" \
    || { echo "FAIL: served /map diverges from the batch planner" >&2; exit 1; }
# Graceful drain: /shutdown must cause a clean exit.
curl -sf -X POST "$base/shutdown" > /dev/null
wait "$serve_pid" || { echo "FAIL: serve exited non-zero after /shutdown" >&2; exit 1; }
trap - EXIT
rm -rf "$smoke_dir"
echo "    serve round-trip, cache hit and graceful drain all verified"

echo "==> load smoke gate (readiness loop, admission control, loris reaping)"
# `webre load` spawns its own serve child and drives mixed hot / cold /
# slow-loris / oversized / abruptly-closed traffic at it, then enforces
# its liveness postconditions itself (exit 1 on any failure): zero hung
# workers, every loris reaped within 2x the read budget, shed/reject
# accounting exact, every oversized upload refused with 413, and a
# /convert response byte-identical to the batch engine. A short soak is
# enough here — the full C10k shape runs in scripts/bench.sh and its
# committed record is held by the regression guard.
ulimit -n 20000 2>/dev/null || true
./target/release/webre load --connections 500 --loris 50 --duration 2
echo "    load soak postconditions all held (see table above)"

echo "==> loris-liveness oracle gate (server stays honest while under loris attack)"
./target/release/webre check --only loris-liveness --iters 10 --seed 1

echo "==> trace smoke gate (--trace-out emits valid chrome://tracing JSON)"
trace_dir=$(mktemp -d)
trap 'rm -rf "$trace_dir"' EXIT
./target/release/webre generate --count 4 --seed 11 --out-dir "$trace_dir/docs"
./target/release/webre run "$trace_dir"/docs/*.html \
    --out-dir "$trace_dir/out" --trace-out "$trace_dir/trace.json" > /dev/null
# The trace must parse as JSON and cover every pipeline stage the run
# exercises: all four restructuring rules plus mining and DTD derivation.
python3 - "$trace_dir/trace.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
names = {event["name"] for event in doc["traceEvents"]}
required = {"tokenization-rule", "concept-instance-rule", "grouping-rule",
            "consolidation-rule", "mine-frequent-paths", "derive-dtd"}
missing = required - names
assert not missing, f"trace missing stages: {sorted(missing)}"
PY
# Captured to a file, not piped into `grep -q`: an early-exiting grep
# closes the pipe and the binary dies on SIGPIPE mid-print.
./target/release/webre stats "$trace_dir/trace.json" > "$trace_dir/stats.txt"
grep -q 'mine-frequent-paths' "$trace_dir/stats.txt" \
    || { echo "FAIL: webre stats did not summarize the trace" >&2; exit 1; }
# Tracing must be provably non-perturbing: the dedicated differential
# oracle re-runs the pipeline traced vs untraced and compares bytes.
./target/release/webre check --only trace-noop --iters 50 --seed 1
trap - EXIT
rm -rf "$trace_dir"
echo "    trace export, stats summary and trace-noop oracle all verified"

echo "==> dependency guard (Cargo.lock must contain only workspace crates)"
# Registry/git dependencies carry a `source = ...` line in Cargo.lock;
# path-only workspace members never do.
if grep -n '^source = ' Cargo.lock; then
    echo "FAIL: Cargo.lock contains non-workspace dependencies (see above)" >&2
    exit 1
fi
# Belt and braces: every [[package]] name must be a workspace crate.
bad=$(grep '^name = ' Cargo.lock | grep -v '^name = "webre' || true)
if [ -n "$bad" ]; then
    echo "FAIL: non-workspace package(s) in Cargo.lock:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "OK: build, tests and dependency guard all passed"
