#!/usr/bin/env bash
# Tier-1 verification: hermetic build + full test suite + dependency guard.
#
# The workspace must build and test offline with zero registry crates; the
# guard fails if any non-workspace dependency reappears in Cargo.lock (for
# example, someone adding `rand` back instead of using webre-substrate).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> webre check (bounded differential/fuzz oracle smoke run)"
./target/release/webre check --iters 50 --seed 1

echo "==> dependency guard (Cargo.lock must contain only workspace crates)"
# Registry/git dependencies carry a `source = ...` line in Cargo.lock;
# path-only workspace members never do.
if grep -n '^source = ' Cargo.lock; then
    echo "FAIL: Cargo.lock contains non-workspace dependencies (see above)" >&2
    exit 1
fi
# Belt and braces: every [[package]] name must be a workspace crate.
bad=$(grep '^name = ' Cargo.lock | grep -v '^name = "webre' || true)
if [ -n "$bad" ]; then
    echo "FAIL: non-workspace package(s) in Cargo.lock:" >&2
    echo "$bad" >&2
    exit 1
fi

echo "OK: build, tests and dependency guard all passed"
