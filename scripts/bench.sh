#!/usr/bin/env bash
# Runs the micro-benchmarks and rewrites BENCH_pipeline.json from scratch.
#
# Each bench binary appends JSON-lines records (one object per benchmark:
# name, median/p95 ns per iteration, samples, throughput) to the file —
# append is required so several bench binaries in one `cargo bench` run
# can share the file, but it also means the file grows without bound
# across invocations. Truncating (not deleting) it at the start of every
# run keeps exactly one fresh snapshot per invocation while preserving
# the file's inode for anything tailing it.
# Knobs: WEBRE_BENCH_SAMPLES, WEBRE_BENCH_SAMPLE_MS (see webre-substrate's
# bench module docs).

set -euo pipefail
cd "$(dirname "$0")/.."

# Resolve to an absolute path: bench binaries run with the bench crate's
# directory as CWD, so a relative path would land inside crates/bench/.
out="${WEBRE_BENCH_OUT:-$PWD/BENCH_pipeline.json}"
case "$out" in
    /*) ;;
    *) out="$PWD/$out" ;;
esac
: > "$out"
WEBRE_BENCH_OUT="$out" cargo bench -p webre-bench "$@"
echo "==> $(wc -l <"$out") benchmark record(s) in $out"

# Serving throughput: a live webre-serve instance hammered over TCP by
# concurrent keep-alive clients; writes one JSON record per scenario.
serve_out="${WEBRE_BENCH_SERVE_OUT:-$PWD/BENCH_serve.json}"
case "$serve_out" in
    /*) ;;
    *) serve_out="$PWD/$serve_out" ;;
esac
WEBRE_BENCH_SERVE_OUT="$serve_out" cargo run --release -p webre-bench --bin serve_throughput
echo "==> serve benchmark record(s) in $serve_out"

# C10k load soak: `webre load` drives 10k mixed-fault connections (hot,
# cold, slow-loris, oversized, abrupt disconnects) against a spawned
# serve instance and APPENDS one serve_load record to the serve snapshot
# — the serve_throughput step above already truncated it, so the file
# ends up with exactly one fresh soak per run. The command exits
# non-zero if any liveness postcondition fails (hung worker, unreaped
# loris, accounting drift), so a broken serve core fails the bench run
# outright rather than committing a bad-looking number.
# WEBRE_BENCH_LOAD_CONNS trims the soak for quick local runs.
ulimit -n 20000 2>/dev/null || true
load_conns="${WEBRE_BENCH_LOAD_CONNS:-10000}"
cargo build --release -q -p webre
./target/release/webre load --connections "$load_conns" \
    --loris "$((load_conns / 5))" --duration 5 --bench-out "$serve_out"
echo "==> load soak record appended to $serve_out"

# Mapping throughput: the tiered planner over a mixed synthetic corpus
# at growing sizes, filter on vs off; one JSON record per scale with the
# measured speedup (the regression guard holds the 100x floor).
map_out="${WEBRE_BENCH_MAP_OUT:-$PWD/BENCH_map.json}"
case "$map_out" in
    /*) ;;
    *) map_out="$PWD/$map_out" ;;
esac
WEBRE_BENCH_MAP_OUT="$map_out" cargo run --release -p webre-bench --bin map_throughput
echo "==> map benchmark record(s) in $map_out"

# Lint throughput: the flow-sensitive lint engine over the workspace's
# own sources, all nine rules; one JSON record with the median wall
# time, files/s and the finding count (which must be zero — the same
# invariant verify.sh gates on).
lint_out="${WEBRE_BENCH_LINT_OUT:-$PWD/BENCH_lint.json}"
case "$lint_out" in
    /*) ;;
    *) lint_out="$PWD/$lint_out" ;;
esac
WEBRE_BENCH_LINT_OUT="$lint_out" cargo run --release -p webre-bench --bin lint_throughput
echo "==> lint benchmark record(s) in $lint_out"

# Observability overhead: full pipeline runs with tracing disabled vs the
# stats recorder vs the full trace recorder; the summary record holds the
# overhead percentages against the <3% target.
obs_out="${WEBRE_BENCH_OBS_OUT:-$PWD/BENCH_obs.json}"
case "$obs_out" in
    /*) ;;
    *) obs_out="$PWD/$obs_out" ;;
esac
WEBRE_BENCH_OBS_OUT="$obs_out" cargo run --release -p webre-bench --bin obs_overhead
echo "==> observability benchmark record(s) in $obs_out"

# Distributed ingest at scale: `webre scale` spawns several serve
# instances, streams synthetic XML documents through a consistent-hash
# router with checkpointed merged ≡ batch verification, and reports
# docs/s, time-to-fresh-schema and WAL replay time as one JSON record.
# WEBRE_BENCH_SCALE_DOCS trims the stream for quick local runs.
scale_out="${WEBRE_BENCH_SCALE_OUT:-$PWD/BENCH_scale.json}"
case "$scale_out" in
    /*) ;;
    *) scale_out="$PWD/$scale_out" ;;
esac
scale_docs="${WEBRE_BENCH_SCALE_DOCS:-1000000}"
scale_dir=$(mktemp -d)
cargo build --release -q -p webre
./target/release/webre scale --instances 2 --docs "$scale_docs" \
    --data-dir "$scale_dir/corpus" > "$scale_out"
rm -rf "$scale_dir"
echo "==> scale benchmark record(s) in $scale_out"

# Append the headline conversion numbers — convert/* throughput and cold
# /convert rps — to an append-only dated history, so trend lines across
# runs survive the snapshot files being rewritten from scratch. Unlike
# the snapshots this file is never truncated.
history="${WEBRE_BENCH_HISTORY:-$PWD/BENCH_history.jsonl}"
case "$history" in
    /*) ;;
    *) history="$PWD/$history" ;;
esac
stamp="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
{
    grep '"bench":"convert/' "$out" || true
    grep '"name":"serve_convert_cold"' "$serve_out" || true
    grep '"name":"map_throughput/100x"' "$map_out" || true
    grep '"name":"lint_throughput"' "$lint_out" || true
    grep '"bench":"corpus_scale"' "$scale_out" || true
} | sed "s/^{/{\"date\":\"$stamp\",/" >> "$history"
echo "==> $(wc -l <"$history") dated record(s) in $history"
