#!/usr/bin/env bash
# Runs the micro-benchmarks and rewrites BENCH_pipeline.json from scratch.
#
# Each bench binary appends JSON-lines records (one object per benchmark:
# name, median/p95 ns per iteration, samples, throughput) to the file —
# append is required so several bench binaries in one `cargo bench` run
# can share the file, but it also means the file grows without bound
# across invocations. Truncating (not deleting) it at the start of every
# run keeps exactly one fresh snapshot per invocation while preserving
# the file's inode for anything tailing it.
# Knobs: WEBRE_BENCH_SAMPLES, WEBRE_BENCH_SAMPLE_MS (see webre-substrate's
# bench module docs).

set -euo pipefail
cd "$(dirname "$0")/.."

# Resolve to an absolute path: bench binaries run with the bench crate's
# directory as CWD, so a relative path would land inside crates/bench/.
out="${WEBRE_BENCH_OUT:-$PWD/BENCH_pipeline.json}"
case "$out" in
    /*) ;;
    *) out="$PWD/$out" ;;
esac
: > "$out"
WEBRE_BENCH_OUT="$out" cargo bench -p webre-bench "$@"
echo "==> $(wc -l <"$out") benchmark record(s) in $out"
