#!/usr/bin/env bash
# Runs the micro-benchmarks and rewrites BENCH_pipeline.json from scratch.
#
# Each bench binary appends JSON-lines records (one object per benchmark:
# name, median/p95 ns per iteration, samples, throughput) to the file, so
# we clear it first to get exactly one fresh snapshot per invocation.
# Knobs: WEBRE_BENCH_SAMPLES, WEBRE_BENCH_SAMPLE_MS (see webre-substrate's
# bench module docs).

set -euo pipefail
cd "$(dirname "$0")/.."

# Resolve to an absolute path: bench binaries run with the bench crate's
# directory as CWD, so a relative path would land inside crates/bench/.
out="${WEBRE_BENCH_OUT:-$PWD/BENCH_pipeline.json}"
case "$out" in
    /*) ;;
    *) out="$PWD/$out" ;;
esac
rm -f "$out"
WEBRE_BENCH_OUT="$out" cargo bench -p webre-bench "$@"
echo "==> $(wc -l <"$out") benchmark record(s) in $out"
