//! End-to-end integration: generator → crawler → conversion → schema
//! discovery → DTD → document mapping, across crate boundaries.

use webre::Pipeline;
use webre_corpus::crawler::{crawl, PageKind, WebGraph};
use webre_corpus::CorpusGenerator;
use webre_schema::FrequentPathMiner;

fn paper_pipeline() -> Pipeline {
    Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(webre::concepts::resume::constraints()),
        max_len: None,
    })
}

#[test]
fn corpus_to_dtd_to_conformance() {
    let corpus = CorpusGenerator::new(7).generate(40);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = paper_pipeline();
    let (discovery, mapped) = pipeline.run(&htmls).unwrap();

    // The schema must recover the headline resume structure.
    assert_eq!(discovery.schema.root_label(), "resume");
    for path in [
        vec!["resume".to_owned(), "education".to_owned()],
        vec![
            "resume".to_owned(),
            "education".to_owned(),
            "institution".to_owned(),
        ],
        vec!["resume".to_owned(), "experience".to_owned()],
        vec![
            "resume".to_owned(),
            "experience".to_owned(),
            "employer".to_owned(),
        ],
        vec!["resume".to_owned(), "skills".to_owned()],
    ] {
        assert!(
            discovery.schema.contains(&path),
            "missing {path:?} in\n{}",
            discovery.schema.render()
        );
    }

    // Every mapped document must conform to the derived DTD.
    let conforming = mapped.iter().filter(|m| m.conforms).count();
    assert!(
        conforming as f64 >= mapped.len() as f64 * 0.95,
        "only {conforming}/{} mapped documents conform\n{}",
        mapped.len(),
        discovery.dtd.to_dtd_string()
    );
}

#[test]
fn discovered_dtd_round_trips_through_text() {
    let corpus = CorpusGenerator::new(13).generate(25);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = paper_pipeline();
    let docs = pipeline.convert_corpus(&htmls);
    let discovery = pipeline.discover_schema(&docs).unwrap();
    let text = discovery.dtd.to_dtd_string();
    let reparsed = webre::xml::dtd::parse_dtd(&text).unwrap();
    assert_eq!(discovery.dtd, reparsed);
}

#[test]
fn converted_documents_survive_xml_round_trip() {
    let corpus = CorpusGenerator::new(21).generate(10);
    let pipeline = paper_pipeline();
    for doc in &corpus {
        let (xml, _) = pipeline.convert_html(&doc.html);
        let serialized = webre::xml::to_xml(&xml);
        let reparsed = webre::xml::parse_xml(&serialized)
            .unwrap_or_else(|e| panic!("unparseable output: {e}\n{serialized}"));
        assert!(xml
            .tree
            .subtree_eq(xml.root(), &reparsed.tree, reparsed.root()));
    }
}

#[test]
fn crawler_harvest_feeds_pipeline() {
    let graph = WebGraph::build(5, 32, 40);
    let report = crawl(&graph, &webre::concepts::resume::concepts(), 5, 1);
    assert!(report.recall >= 0.9);
    let htmls: Vec<String> = report
        .harvested
        .iter()
        .filter(|id| graph.pages[**id].kind == PageKind::Resume)
        .map(|id| graph.pages[*id].html.clone())
        .collect();
    let pipeline = paper_pipeline();
    let docs = pipeline.convert_corpus(&htmls);
    let discovery = pipeline.discover_schema(&docs).unwrap();
    assert!(discovery.dtd.len() >= 8, "{}", discovery.dtd.to_dtd_string());
}

#[test]
fn schema_sizes_nest_between_bounds() {
    // lower bound ⊆ majority ⊆ DataGuide on a real heterogeneous corpus.
    let corpus = CorpusGenerator::new(33).generate(30);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = paper_pipeline();
    let docs = pipeline.convert_corpus(&htmls);
    let paths: Vec<_> = docs.iter().map(webre::schema::extract_paths).collect();
    let dg = webre::schema::baselines::dataguide(&paths).unwrap();
    let lb = webre::schema::baselines::lower_bound(&paths).unwrap();
    let majority = pipeline.discover_schema(&docs).unwrap().schema;
    assert!(lb.len() < majority.len(), "lb {} vs majority {}", lb.len(), majority.len());
    assert!(
        majority.len() < dg.len(),
        "majority {} vs dataguide {}",
        majority.len(),
        dg.len()
    );
    // Every lower-bound path is in the majority schema; every majority path
    // is in the DataGuide.
    for p in lb.paths() {
        assert!(majority.contains(&p), "{p:?} missing from majority");
    }
    for p in majority.paths() {
        assert!(dg.contains(&p), "{p:?} missing from dataguide");
    }
}

#[test]
fn mapping_is_idempotent() {
    let corpus = CorpusGenerator::new(44).generate(20);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = paper_pipeline();
    let docs = pipeline.convert_corpus(&htmls);
    let discovery = pipeline.discover_schema(&docs).unwrap();
    for doc in docs.iter().take(5) {
        let once = pipeline.map_document(doc, &discovery);
        if !once.conforms {
            continue;
        }
        let twice = pipeline.map_document(&once.document, &discovery);
        assert_eq!(twice.edit_distance, 0, "second mapping changed the doc");
        assert!(twice.conforms);
    }
}
