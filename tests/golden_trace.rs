//! Golden trace test: the `resume_clean` fixture is converted under a
//! trace recorder driven by a deterministic fake clock, and the resulting
//! span tree is compared byte-for-byte against a committed expectation.
//!
//! Because the fake clock ticks a fixed 1µs per reading and the pipeline
//! is deterministic, the exported tree — span names, nesting, counter
//! values, and every timestamp — is exactly reproducible. Any change to
//! the rule order, the spans a stage opens, or the counters it reports
//! shows up as a diff in `tests/fixtures/resume_clean.trace.json`.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! WEBRE_UPDATE_GOLDEN=1 cargo test -q --test golden_trace
//! ```

use std::fs;
use std::path::PathBuf;

use webre::obs::clock::FakeClock;
use webre::obs::trace::TraceRecorder;
use webre::obs::{stage, Ctx};
use webre::Pipeline;

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn update_golden() -> bool {
    std::env::var_os("WEBRE_UPDATE_GOLDEN").is_some_and(|v| !v.is_empty())
}

fn assert_golden(name: &str, actual: &str) {
    let path = fixture_dir().join(name);
    if update_golden() {
        fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot write {name}: {e}"));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {name} ({e}); run WEBRE_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; if intentional, regenerate with \
         WEBRE_UPDATE_GOLDEN=1 cargo test --test golden_trace"
    );
}

/// Converts the `resume_clean` fixture under a fake-clock trace recorder
/// and returns the recorder for inspection.
fn traced_conversion() -> TraceRecorder {
    let html = fs::read_to_string(fixture_dir().join("resume_clean.html"))
        .expect("resume_clean fixture exists");
    let recorder = TraceRecorder::new(Box::new(FakeClock::new(1_000)));
    let pipeline = Pipeline::resume_domain();
    pipeline.convert_html_obs(&html, Ctx::new(&recorder));
    recorder
}

#[test]
fn resume_clean_span_tree_matches_golden() {
    assert_golden("resume_clean.trace.json", &traced_conversion().span_tree_json());
}

#[test]
fn resume_clean_trace_is_reproducible_and_well_formed() {
    let (a, b) = (traced_conversion(), traced_conversion());
    assert_eq!(
        a.span_tree_json(),
        b.span_tree_json(),
        "fake-clock traces must be byte-identical across runs"
    );
    let spans = a.spans();
    // One conversion: a single root span with tidy and the four
    // restructuring rules nested directly under it, in rule order.
    assert_eq!(spans[0].name, stage::CONVERT);
    assert!(spans[0].parent.is_none());
    let children: Vec<&str> = spans
        .iter()
        .filter(|s| s.parent == Some(0))
        .map(|s| s.name)
        .collect();
    assert_eq!(
        children,
        vec![
            stage::TIDY,
            stage::TOKENIZATION,
            stage::CONCEPT_INSTANCE,
            stage::GROUPING,
            stage::CONSOLIDATION,
        ]
    );
    for span in &spans {
        assert!(span.end_ns.is_some(), "unclosed span {}", span.name);
        assert!(
            stage::index_of(span.name).is_some(),
            "uncatalogued stage {}",
            span.name
        );
    }
}
