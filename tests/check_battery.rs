//! Workspace-level acceptance test for the `webre-check` subsystem: the
//! full oracle battery at the documented default scale (200 cases per
//! oracle, seed 1) passes, is bit-for-bit deterministic across runs, and
//! covers every oracle family.

use webre_check::{run, CheckConfig, Kind};

#[test]
fn full_battery_at_default_scale_is_green_and_deterministic() {
    let config = CheckConfig {
        seed: 1,
        iters: 200,
        only: None,
    };
    let first = run(&config);
    assert!(first.passed(), "battery failed:\n{}", first.render());
    let second = run(&config);
    assert_eq!(
        first.render(),
        second.render(),
        "two identically-seeded runs diverged"
    );

    let count = |kind: Kind| first.oracles.iter().filter(|o| o.kind == kind).count();
    assert_eq!(count(Kind::Differential), 11, "eleven differential oracles");
    assert_eq!(count(Kind::Metamorphic), 3, "three metamorphic invariants");
    assert_eq!(count(Kind::Fuzz), 1, "one fuzz-totality oracle");
    assert_eq!(count(Kind::Hidden), 0, "hidden oracles never run by default");
    assert!(first.oracles.iter().all(|o| o.cases == 200));
}

#[test]
fn different_seeds_generate_different_cases() {
    // Sanity check that the seed actually steers generation: the tag-soup
    // generator must not collapse to one input stream.
    use webre_substrate::rand::rngs::StdRng;
    use webre_substrate::rand::SeedableRng;
    let soup = |seed: u64| webre_check::gen::soup_document(&mut StdRng::seed_from_u64(seed));
    assert_ne!(soup(1), soup(2));
    assert_eq!(soup(7), soup(7));
}
