//! Workspace-level property tests: the full conversion pipeline must be
//! total (never panic, always produce well-formed output) on arbitrary
//! input, and the parallel conversion must agree with the sequential one.

use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_substrate::prop::{self};
use webre_substrate::{prop_assert, prop_assert_eq};

/// The converter is a total function over arbitrary byte soup: no
/// panic, a well-formed XML document out, integrity intact.
#[test]
fn converter_is_total_on_arbitrary_input() {
    prop::check("converter_is_total_on_arbitrary_input", |g| {
        let html = g.arbitrary_text(0, 512);
        let pipeline = Pipeline::resume_domain();
        let (doc, stats) = pipeline.convert_html(&html);
        prop_assert!(doc.tree.check_integrity().is_ok());
        prop_assert_eq!(doc.root_name(), "resume");
        prop_assert!(
            stats.tokens_identified + stats.tokens_unidentified
                <= stats.tokens_total + stats.tokens_decomposed
        );
        // Output must be reparseable XML.
        let xml = webre::xml::to_xml(&doc);
        let reparsed = webre::xml::parse_xml(&xml);
        prop_assert!(reparsed.is_ok(), "unparseable output for {html:?}: {xml}");
        Ok(())
    });
}

/// Conversion output only ever contains concept names from the domain
/// (plus the root) as element names.
#[test]
fn output_elements_are_concept_names() {
    prop::check("output_elements_are_concept_names", |g| {
        let html = g.printable_ascii(0, 256);
        let pipeline = Pipeline::resume_domain();
        let concepts = webre::concepts::resume::concepts();
        let (doc, _) = pipeline.convert_html(&html);
        for id in doc.tree.descendants(doc.root()) {
            if let Some(name) = doc.tree.value(id).name() {
                prop_assert!(
                    name == "resume" || concepts.contains(name),
                    "foreign element {name:?}"
                );
            }
        }
        Ok(())
    });
}

/// Tag-soup mutations of a valid page must not panic and must keep the
/// root invariant.
#[test]
fn converter_survives_mutated_pages() {
    prop::check("converter_survives_mutated_pages", |g| {
        let seed = g.int(0u64..50);
        let cut = g.int(0usize..1000);
        let extra = g.chars_in("<>/abcdefghijklmnopqrstuvwxyz\"=", 0, 12);
        let mut html = CorpusGenerator::new(1).generate_one(seed as usize).html;
        let cut = cut.min(html.len());
        // Find a char boundary at or below `cut`, splice garbage in.
        let mut boundary = cut;
        while !html.is_char_boundary(boundary) {
            boundary -= 1;
        }
        html.insert_str(boundary, &extra);
        let pipeline = Pipeline::resume_domain();
        let (doc, _) = pipeline.convert_html(&html);
        prop_assert!(doc.tree.check_integrity().is_ok());
        Ok(())
    });
}

#[test]
fn parallel_conversion_matches_sequential() {
    let corpus = CorpusGenerator::new(64).generate(24);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = Pipeline::resume_domain();
    let sequential = pipeline.convert_corpus(&htmls);
    for threads in [1, 2, 4, 7, 24, 99] {
        let parallel = pipeline.convert_corpus_parallel(&htmls, threads);
        assert_eq!(parallel.len(), sequential.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert!(
                a.tree.subtree_eq(a.root(), &b.tree, b.root()),
                "parallel ({threads} threads) diverged"
            );
        }
    }
}

#[test]
fn parallel_conversion_handles_empty_and_single() {
    let pipeline = Pipeline::resume_domain();
    assert!(pipeline.convert_corpus_parallel(&[], 4).is_empty());
    let one = vec!["<p>Education</p>".to_owned()];
    assert_eq!(pipeline.convert_corpus_parallel(&one, 4).len(), 1);
}
