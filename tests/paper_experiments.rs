//! Integration tests pinning the paper's experimental claims (Section 4)
//! at reduced scale; the full-scale runs live in the `webre-bench`
//! experiment binaries.

use webre::concepts::resume;
use webre::convert::accuracy::logical_errors;
use webre::Pipeline;
use webre_corpus::CorpusGenerator;
use webre_schema::search_space::{
    constrained_enumeration, data_driven_exploration, exhaustive_size,
};
use webre_schema::{extract_paths, FrequentPathMiner};

/// Section 4.1 / Figure 4: extraction accuracy on 50 documents. The paper
/// reports 9.2% average error (90.8% accuracy); the synthetic corpus must
/// land in the same regime.
#[test]
fn fig4_accuracy_in_paper_regime() {
    let corpus = CorpusGenerator::new(2002).generate(50);
    let pipeline = Pipeline::resume_domain();
    let mut total_error_rate = 0.0;
    let mut total_errors = 0u64;
    let mut total_nodes = 0u64;
    for doc in &corpus {
        let (xml, _) = pipeline.convert_html(&doc.html);
        let report = logical_errors(&xml, &doc.truth);
        total_error_rate += report.error_rate();
        total_errors += report.errors;
        total_nodes += report.concept_nodes;
    }
    let avg_rate = total_error_rate / corpus.len() as f64;
    let avg_errors = total_errors as f64 / corpus.len() as f64;
    let avg_nodes = total_nodes as f64 / corpus.len() as f64;
    // Paper: 3.9 errors/doc over 53.7 concept nodes → 9.2%. Accept the
    // same order of magnitude: average error below 20%, not zero.
    assert!(avg_rate < 0.20, "avg error rate {avg_rate:.3}");
    assert!(avg_rate > 0.005, "errors suspiciously absent");
    assert!(avg_errors < 12.0, "avg errors {avg_errors:.1}");
    assert!(avg_nodes > 15.0, "avg concept nodes {avg_nodes:.1}");
}

/// Section 4.2: the search-space numbers. Exhaustive and constrained
/// counts are exact reproductions of the paper's arithmetic; the
/// data-driven count depends on the corpus but must stay tiny.
#[test]
fn section_4_2_search_space_counts() {
    assert_eq!(exhaustive_size(24, 4), 7_962_623);

    let concepts = resume::concepts();
    let constraints = resume::constraints();
    let result = constrained_enumeration(&concepts, &constraints, "resume", 4);
    assert_eq!(result.admissible, 1_871);

    // Data-driven exploration over a converted corpus: only prefixes with
    // non-zero support are extended. The paper reports 73; ours must be of
    // that order (tens, not thousands).
    let corpus = CorpusGenerator::new(5).generate(100);
    let pipeline = Pipeline::resume_domain();
    let paths: Vec<_> = corpus
        .iter()
        .map(|d| extract_paths(&pipeline.convert_html(&d.html).0))
        .collect();
    let explored = data_driven_exploration(&concepts, &constraints, &paths, "resume", 4);
    assert!(
        (10..400).contains(&explored),
        "data-driven exploration visited {explored} nodes"
    );
    assert!(explored < result.admissible / 4);
}

/// Section 4.3 / Figure 5: runtime scales linearly. We check the weaker,
/// machine-independent property: work (nodes processed) grows linearly and
/// per-document time does not blow up with corpus size.
#[test]
fn fig5_work_scales_linearly() {
    let generator = CorpusGenerator::new(8);
    let pipeline = Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(resume::constraints()),
        max_len: None,
    });
    let mut explored = Vec::new();
    for &n in &[20usize, 40, 80] {
        let corpus = generator.generate(n);
        let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
        let docs = pipeline.convert_corpus(&htmls);
        let discovery = pipeline.discover_schema(&docs).unwrap();
        explored.push(discovery.nodes_explored);
    }
    // Mining explores label paths, whose variety saturates: the explored
    // count must grow far slower than the corpus (sub-linear), while never
    // collapsing.
    assert!(explored[2] < explored[0] * 4, "{explored:?}");
    assert!(explored[2] >= explored[0] / 2, "{explored:?}");
}

/// Section 4.4: the sample-run DTD. The paper's fragment is
/// `resume → ((#PCDATA), contact+, objective, education+, ...)` with
/// education containing institute/date/degree structure. Ours must exhibit
/// the same shape.
#[test]
fn section_4_4_sample_dtd_shape() {
    let corpus = CorpusGenerator::new(1400).generate(140);
    let htmls: Vec<String> = corpus.iter().map(|d| d.html.clone()).collect();
    let pipeline = Pipeline::resume_domain().with_miner(FrequentPathMiner {
        sup_threshold: 0.5,
        ratio_threshold: 0.3,
        constraints: Some(resume::constraints()),
        max_len: None,
    });
    let docs = pipeline.convert_corpus(&htmls);
    let discovery = pipeline.discover_schema(&docs).unwrap();
    let dtd_text = discovery.dtd.to_dtd_string();

    // Root content mentions the resume sections in reading order.
    let root = discovery.dtd.elements.get("resume").unwrap().to_string();
    assert!(root.contains("(#PCDATA)"), "{root}");
    for section in ["contact", "objective", "education", "experience", "skills"] {
        assert!(root.contains(section), "{root}");
    }
    let contact = root.find("contact").unwrap();
    let education = root.find("education").unwrap();
    let experience = root.find("experience").unwrap();
    assert!(contact < education && education < experience, "{root}");

    // Education nests institution with degree/date detail, with repetition.
    let edu = discovery.dtd.elements.get("education").unwrap().to_string();
    assert!(edu.contains("institution+"), "{edu}");
    let inst = discovery.dtd.elements.get("institution").unwrap().to_string();
    assert!(inst.contains("degree") && inst.contains("date"), "{inst}");

    // Around 20 elements, like the paper's sample (20).
    assert!(
        (12..=26).contains(&discovery.dtd.len()),
        "{} elements:\n{dtd_text}",
        discovery.dtd.len()
    );
}

/// The paper's Figure 2/3 example reproduced verbatim through the public
/// API: three resume trees reduce to the label-path set of Figure 3.
#[test]
fn figure_2_label_paths() {
    let a = webre::xml::parse_xml(
        "<resume><objective/><education><degree><date/><institution/></degree>\
         <degree><date/><institution/></degree></education></resume>",
    )
    .unwrap();
    let paths = extract_paths(&a);
    let expected: Vec<Vec<String>> = [
        vec!["resume"],
        vec!["resume", "objective"],
        vec!["resume", "education"],
        vec!["resume", "education", "degree"],
        vec!["resume", "education", "degree", "date"],
        vec!["resume", "education", "degree", "institution"],
    ]
    .iter()
    .map(|p| p.iter().map(|s| (*s).to_owned()).collect())
    .collect();
    assert_eq!(paths.paths.len(), expected.len());
    for p in expected {
        assert!(paths.contains(&p), "{p:?} missing");
    }
    // Degree appears twice as a node but once as a label path, with
    // multiplicity 2 recorded for the repetition rule.
    let degree_path: Vec<String> = ["resume", "education", "degree"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    assert_eq!(paths.multiplicity_of(&degree_path), 2);
}
