//! Cross-substrate edge-case integration tests: inputs that historically
//! break wrappers — deeply nested markup, pathological attributes, unicode,
//! near-empty documents — must flow through the whole pipeline.

use webre::Pipeline;

fn convert(html: &str) -> webre::xml::XmlDocument {
    Pipeline::resume_domain().convert_html(html).0
}

#[test]
fn deeply_nested_markup() {
    let mut html = String::new();
    for _ in 0..200 {
        html.push_str("<div>");
    }
    html.push_str("Education");
    for _ in 0..200 {
        html.push_str("</div>");
    }
    let doc = convert(&html);
    assert!(doc.tree.check_integrity().is_ok());
    assert!(webre::xml::to_xml(&doc).contains("education"));
}

#[test]
fn enormous_flat_sibling_list() {
    let mut html = String::from("<ul>");
    for i in 0..500 {
        html.push_str(&format!("<li>item {i}</li>"));
    }
    html.push_str("</ul>");
    let doc = convert(&html);
    assert!(doc.tree.check_integrity().is_ok());
}

#[test]
fn unicode_heavy_content() {
    let doc = convert(
        "<h2>Education</h2><p>Universit\u{e9} de Montr\u{e9}al, Ma\u{ee}trise, juin 1996 — \u{1F393}</p>",
    );
    assert!(doc.tree.check_integrity().is_ok());
    let text = doc.all_text();
    assert!(text.contains("Montr\u{e9}al"), "{text}");
}

#[test]
fn attribute_soup() {
    let doc = convert(
        r#"<p class="a" class="b" style="x:y" onclick="alert('hi > there')" data-x>Education</p>"#,
    );
    assert!(webre::xml::to_xml(&doc).contains("education"));
}

#[test]
fn mixed_case_and_whitespace_tags() {
    let doc = convert("<H2 >Education</ H2><UL><LI>Stanford University</UL>");
    let xml = webre::xml::to_xml(&doc);
    assert!(xml.contains("education"), "{xml}");
    assert!(xml.contains("institution"), "{xml}");
}

#[test]
fn content_free_documents() {
    for html in ["", "   ", "<html></html>", "<!-- only a comment -->", "<br><br><hr>"] {
        let doc = convert(html);
        assert_eq!(webre::xml::to_xml(&doc), "<resume/>", "input {html:?}");
    }
}

#[test]
fn script_payload_never_leaks_into_concepts() {
    let doc = convert(
        "<script>var university = 'fake'; var degree = 'B.S.';</script>\
         <h2>Skills</h2><p>C++</p>",
    );
    let xml = webre::xml::to_xml(&doc);
    assert!(!xml.contains("institution"), "script text leaked: {xml}");
    assert!(xml.contains("skills"), "{xml}");
}

#[test]
fn entity_bombs_are_inert() {
    // Repeated entity references must decode linearly, not recursively.
    let payload = "&amp;".repeat(5_000);
    let doc = convert(&format!("<p>{payload}</p>"));
    assert!(doc.tree.check_integrity().is_ok());
    assert_eq!(doc.all_text().matches('&').count(), 5_000);
}

#[test]
fn null_and_control_characters() {
    let doc = convert("<p>Edu\u{0}cation\u{1} Stanford University</p>");
    assert!(doc.tree.check_integrity().is_ok());
    // The serialized output must still reparse.
    let xml = webre::xml::to_xml(&doc);
    assert!(webre::xml::parse_xml(&xml).is_ok(), "{xml}");
}

#[test]
fn select_queries_work_on_converted_output() {
    let doc = convert(
        "<h2>Education</h2><ul>\
         <li>Stanford University, M.S., June 1996</li>\
         <li>Boston College, B.A., May 1992</li></ul>",
    );
    let institutions = webre::xml::select::select_vals(&doc, "//institution");
    assert_eq!(institutions.len(), 2, "{institutions:?}");
    assert!(institutions[0].contains("Stanford"));
    let degrees = webre::xml::select::select(&doc, "resume/education/institution/degree");
    assert_eq!(degrees.len(), 2);
}
