//! Golden-file integration tests: four fixture HTML resumes are pushed
//! end-to-end through [`webre::Pipeline`] and the produced XML plus the
//! discovered frequent-path set are compared byte-for-byte against
//! committed expectations.
//!
//! To regenerate the expectations after an intentional behavior change:
//!
//! ```text
//! WEBRE_UPDATE_GOLDEN=1 cargo test -q --test golden_fixtures
//! ```
//!
//! then review the diff under `tests/fixtures/` before committing.

use std::fs;
use std::path::PathBuf;

use webre::Pipeline;

const FIXTURES: &[&str] = &["resume_clean", "resume_table", "resume_soup", "resume_nested"];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn update_golden() -> bool {
    std::env::var_os("WEBRE_UPDATE_GOLDEN").is_some_and(|v| !v.is_empty())
}

/// Compares (or rewrites, under `WEBRE_UPDATE_GOLDEN`) one expectation file.
fn assert_golden(name: &str, actual: &str) {
    let path = fixture_dir().join(name);
    if update_golden() {
        fs::write(&path, actual).unwrap_or_else(|e| panic!("cannot write {name}: {e}"));
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden file {name} ({e}); run WEBRE_UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        actual, expected,
        "golden mismatch for {name}; if intentional, regenerate with \
         WEBRE_UPDATE_GOLDEN=1 cargo test --test golden_fixtures"
    );
}

fn convert_fixtures() -> Vec<webre::xml::XmlDocument> {
    let pipeline = Pipeline::resume_domain();
    FIXTURES
        .iter()
        .map(|stem| {
            let html = fs::read_to_string(fixture_dir().join(format!("{stem}.html")))
                .unwrap_or_else(|e| panic!("missing fixture {stem}.html: {e}"));
            pipeline.convert_html(&html).0
        })
        .collect()
}

#[test]
fn fixture_conversions_match_golden_xml() {
    for (stem, doc) in FIXTURES.iter().zip(convert_fixtures()) {
        assert!(doc.tree.check_integrity().is_ok());
        assert_eq!(doc.root_name(), "resume");
        assert_golden(
            &format!("{stem}.expected.xml"),
            &webre::xml::to_xml_pretty(&doc),
        );
    }
}

#[test]
fn fixture_corpus_frequent_paths_match_golden() {
    let docs = convert_fixtures();
    let pipeline = Pipeline::resume_domain();
    let discovery = pipeline
        .discover_schema(&docs)
        .expect("four documents discover a schema");

    // Render the frequent-path set one slash-joined path per line, sorted,
    // so the expectation file is diff-friendly and order-independent.
    let mut lines: Vec<String> = discovery
        .schema
        .paths()
        .iter()
        .map(|p| p.join("/"))
        .collect();
    lines.sort();
    let mut rendered = lines.join("\n");
    rendered.push('\n');
    assert_golden("frequent_paths.expected.txt", &rendered);

    // The discovered schema must admit the resume-domain constraints and
    // every frequent path must actually occur in some converted document.
    let constraints = pipeline.constraints().expect("resume domain constrains");
    for path in discovery.schema.paths() {
        let as_refs: Vec<&str> = path.iter().map(String::as_str).collect();
        assert!(
            constraints.admits_path(&as_refs),
            "schema contains inadmissible path {path:?}"
        );
        assert!(
            discovery.paths.iter().any(|d| d.contains(&path)),
            "frequent path {path:?} occurs in no document"
        );
    }
}

#[test]
fn fixture_documents_conform_to_discovered_dtd() {
    let docs = convert_fixtures();
    let pipeline = Pipeline::resume_domain();
    let discovery = pipeline.discover_schema(&docs).expect("schema discovered");
    // Mapping each fixture onto the discovered DTD must succeed and yield a
    // valid document (the end-to-end contract of Section 3.4).
    for (stem, doc) in FIXTURES.iter().zip(&docs) {
        let outcome = pipeline.map_document(doc, &discovery);
        let errors = webre::xml::validate::validate(&outcome.document, &discovery.dtd);
        assert!(
            errors.is_empty(),
            "{stem} does not conform after mapping: {errors:?}"
        );
    }
}
