//! Workspace umbrella package for the `webre` reproduction.
//!
//! The actual library lives in the `webre` facade crate (`crates/core`);
//! this package only hosts the workspace-level integration tests in
//! `tests/` and the runnable examples in `examples/`.
pub use webre;
